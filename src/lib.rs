//! # modsoc — modular SOC testing, reproduced in Rust
//!
//! Facade crate for the `modsoc` workspace, a from-scratch reproduction of
//! *"Analysis of The Test Data Volume Reduction Benefit of Modular SOC
//! Testing"* (Sinanoglu & Marinissen, DATE 2008).
//!
//! The workspace is organised in layers; this crate re-exports each layer
//! under a stable module name:
//!
//! * [`netlist`] — gate-level circuits, full-scan models, logic cones,
//!   wrapper cells, `.bench` I/O.
//! * [`atpg`] — a complete combinational stuck-at ATPG (PODEM), fault
//!   simulation, and pattern compaction.
//! * [`circuitgen`] — deterministic synthetic core generation with
//!   ISCAS'89-lookalike profiles, and SOC netlist stitching.
//! * [`soc`] — the SOC/core/wrapper data model, the ITC'02 benchmark data
//!   (embedded + reconstructed), and the `.soc`-style text format.
//! * [`analysis`] — the paper's contribution: the TDV equations, the
//!   monolithic-vs-modular comparison engine, and table renderers.
//! * [`tam`] — wrapper chain design, TAM architectures and test
//!   scheduling (the paper's cited context, refs 12, 13 and 21).
//! * [`store`] — content-addressed on-disk result store and campaign
//!   journals (`--store`, `modsoc campaign`).
//!
//! # Quickstart
//!
//! Compute the paper's Figure 1/2 worked example (three cones, 25%
//! reduction):
//!
//! ```
//! use modsoc::soc::{CoreSpec, Soc};
//! use modsoc::analysis::{SocTdvAnalysis, TdvOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut soc = Soc::new("fig1");
//! for (name, ffs, patterns) in [("A", 20, 200), ("B", 10, 300), ("C", 20, 400)] {
//!     soc.add_core(CoreSpec::leaf(name, 0, 0, 0, ffs, patterns))?;
//! }
//! let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::default())?;
//! assert_eq!(analysis.monolithic_optimistic().stimulus, 20_000);
//! assert_eq!(analysis.modular().stimulus, 15_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use modsoc_atpg as atpg;
pub use modsoc_circuitgen as circuitgen;
pub use modsoc_core as analysis;
pub use modsoc_metrics as metrics;
pub use modsoc_netlist as netlist;
pub use modsoc_soc as soc;
pub use modsoc_store as store;
pub use modsoc_tam as tam;
