//! The `modsoc` command-line tool.
//!
//! ```text
//! modsoc analyze <file.soc> [--measured-tmono N] [--exclude-chip-pins] [--reuse F] [--keep-going]
//!                           [--jobs N] [--metrics FILE]
//! modsoc experiment <mini|soc1|soc2> [--seed S] [--jobs N] [--fail-fast] [--skip-monolithic]
//!                                    [--timeout-ms N] [--max-patterns N] [--max-backtracks N]
//!                                    [--metrics FILE] [--store DIR] [--no-store-read]
//! modsoc campaign <spec.json> (--store DIR | --store-url URL) [--jobs N] [--keep-going]
//!                             [--no-store-read] [--owner NAME] [--claim-lease-ms N]
//!                             [--claim-wait-ms N] [--timeout-ms N] [--max-patterns N]
//!                             [--max-backtracks N]
//! modsoc store <gc|verify> <DIR> [--max-bytes N]
//! modsoc serve [--addr HOST:PORT] [--workers N] [--queue N] [--store DIR] [...]
//! modsoc loadgen --addr HOST:PORT [--requests N] [--concurrency N] [--flood N] [...]
//! modsoc atpg <file.bench> [--dynamic] [--timeout-ms N] [--max-patterns N] [--max-backtracks N]
//!                          [--patterns-out FILE] [--verilog-out FILE]
//! modsoc generate --inputs N --outputs N --scan N [--seed S] [--bench-out FILE] [--verilog-out FILE]
//! modsoc cones <file.bench>
//! modsoc tdf <file.bench> [--timeout-ms N] [--max-backtracks N]
//! modsoc demo <soc1|soc2|p34392|table4>
//! modsoc tam [SOC] [--width N] [--chains N] [--power-ceiling P] [--jobs N] [--json FILE] [--metrics FILE]
//! ```
//!
//! `--jobs N` fans independent per-core work across `N` pool workers
//! (`0` = all hardware threads); reports are identical at any value.
//! `--metrics FILE` writes a structured JSON run report (phase timings,
//! engine counters, per-core breakdown); every field except wall times,
//! `jobs` and the `sched` objects is identical at any `--jobs` value.
//! `--store DIR` caches every engine result content-addressed on disk:
//! a warm run fetches instead of recomputing (the report stays
//! byte-identical) and `modsoc campaign` journals per-unit completion
//! there, so an interrupted campaign resumes where it stopped.
//! `--no-store-read` skips lookups and recomputes (refreshing entries).
//!
//! Exit codes: `0` complete, `2` partial result on a tripped run budget
//! or a degraded (`--keep-going`) analysis, `1` error.
//!
//! Arguments are deliberately hand-parsed — the workspace's dependency
//! policy keeps the tree to the approved offline crates.

use std::process::ExitCode;
use std::time::Duration;

use std::sync::Arc;

use modsoc::analysis::campaign::{
    run_campaign, run_campaign_claimed, CampaignSpec, ClaimOptions, UnitStatus,
};
use modsoc::analysis::experiment::{run_soc_experiment_guarded, ExperimentOptions};
use modsoc::analysis::metrics::{
    analysis_run_metrics, run_soc_experiment_metered, Phase, PhaseTimer, RecordingSink, RunMetrics,
};
use modsoc::analysis::remote::HttpBackend;
use modsoc::analysis::report::{
    fmt_u64, render_analyze_report, render_core_table, render_metrics_table, render_outcome_table,
    render_survey,
};
use modsoc::analysis::runctl::analyze_soc_guarded_jobs_metered;
use modsoc::analysis::serve::{http_request, HttpClient, HttpResponse, ServeConfig, Server};
use modsoc::analysis::tdv::core_tdv_checked;
use modsoc::analysis::{RunBudget, SocTdvAnalysis, TdvOptions};
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::{generate, CoreProfile};
use modsoc::metrics::NullSink;
use modsoc::netlist::bench_format::{parse_bench, write_bench};
use modsoc::netlist::cone::extract_cones;
use modsoc::netlist::verilog::{dff_module, write_verilog};
use modsoc::netlist::CircuitStats;
use modsoc::soc::format::parse_soc;
use modsoc::soc::itc02;
use modsoc::store::ResultStore;

/// How a subcommand ended when it did not error.
enum RunStatus {
    /// Everything ran to completion.
    Complete,
    /// A budget tripped or a core degraded; partial output was produced.
    Partial,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(RunStatus::Complete) => ExitCode::SUCCESS,
        Ok(RunStatus::Partial) => ExitCode::from(2),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  modsoc analyze <file.soc> [--measured-tmono N] [--exclude-chip-pins] [--reuse F] [--keep-going]
                            [--jobs N] [--metrics FILE]
  modsoc experiment <mini|soc1|soc2> [--seed S] [--jobs N] [--fail-fast] [--skip-monolithic]
                                     [--timeout-ms N] [--max-patterns N] [--max-backtracks N]
                                     [--metrics FILE] [--store DIR] [--no-store-read]
  modsoc campaign <spec.json> (--store DIR | --store-url URL) [--jobs N] [--keep-going]
                              [--no-store-read] [--owner NAME] [--claim-lease-ms N]
                              [--claim-wait-ms N] [--timeout-ms N] [--max-patterns N]
                              [--max-backtracks N]
  modsoc store gc <DIR> --max-bytes N
  modsoc store verify <DIR>
  modsoc serve [--addr HOST:PORT] [--workers N] [--queue N] [--max-conns N]
               [--max-body-bytes N] [--request-timeout-ms N] [--read-timeout-ms N]
               [--write-timeout-ms N] [--retry-after-secs N] [--jobs N]
               [--keep-alive] [--keep-alive-max N] [--idle-timeout-ms N]
               [--batch-max N] [--batch-window-ms N] [--lane-weights L:H]
               [--store DIR] [--no-store-read]
  modsoc loadgen --addr HOST:PORT [--requests N] [--concurrency N] [--seed S]
                 [--keep-alive] [--bodies-out FILE] [--json FILE] [--check FILE]
                 [--label NAME] [--tolerance F]
                 [--flood N] [--analyze-file FILE.soc] [--shutdown] [--dump-metrics]
  modsoc atpg <file.bench> [--dynamic] [--timeout-ms N] [--max-patterns N] [--max-backtracks N]
                           [--patterns-out FILE] [--verilog-out FILE]
  modsoc generate --inputs N --outputs N --scan N [--seed S] [--bench-out FILE] [--verilog-out FILE]
  modsoc cones <file.bench>
  modsoc index <file.bench|file.soc>
  modsoc tdf <file.bench> [--timeout-ms N] [--max-backtracks N]
  modsoc demo <soc1|soc2|p34392|table4>
  modsoc tam [SOC] [--width N] [--chains N] [--power-ceiling P] [--jobs N] [--json FILE]
             [--metrics FILE]

--jobs N runs independent per-core work on N pool workers (0 = auto);
reports are identical at any value.
--metrics FILE writes a structured JSON run report; everything except
wall times, jobs and sched objects is identical at any --jobs value.
--store DIR caches engine results content-addressed on disk (warm runs
fetch instead of recomputing; reports stay byte-identical) and holds
campaign journals so interrupted campaigns resume where they stopped.
--store-url URL points campaign at a `modsoc serve --store` daemon
instead of a local directory; concurrent workers claim units through
the daemon so each unit's engine work runs exactly once.
modsoc store gc/verify sweep a local store directory: gc evicts
least-recently-used objects until the store fits --max-bytes, verify
reports corrupt entries (exit 1 when any are found).
exit codes: 0 complete, 2 partial (budget tripped / degraded cores), 1 error";

fn run(args: &[String]) -> Result<RunStatus, String> {
    match args.first().map(String::as_str) {
        Some("--version" | "-V") => {
            println!("modsoc {}", env!("CARGO_PKG_VERSION"));
            Ok(RunStatus::Complete)
        }
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("atpg") => cmd_atpg(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("cones") => cmd_cones(&args[1..]),
        Some("index") => cmd_index(&args[1..]),
        Some("tdf") => cmd_tdf(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("tam") => cmd_tam(&args[1..]),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("a subcommand is required".into()),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String]) -> Option<&str> {
    // First arg that is not a flag and not a flag's value.
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !matches!(
                a.as_str(),
                "--dynamic"
                    | "--exclude-chip-pins"
                    | "--keep-going"
                    | "--fail-fast"
                    | "--skip-monolithic"
                    | "--no-store-read"
                    | "--keep-alive"
                    | "--shutdown"
                    | "--dump-metrics"
            );
            continue;
        }
        return Some(a);
    }
    None
}

/// Reject unknown `--flags` and value flags with no following value, so
/// a typo'd or dangling flag is a hard error rather than a silently
/// unbudgeted run.
fn check_flags(args: &[String], bools: &[&str], values: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if values.contains(&a) {
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => i += 1,
                    _ => return Err(format!("{a} requires a value")),
                }
            } else if !bools.contains(&a) {
                return Err(format!("unknown flag `{a}`"));
            }
        }
        i += 1;
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{what} is not a valid number: `{s}`"))
}

/// Build a [`RunBudget`] from the shared `--timeout-ms`,
/// `--max-patterns` and `--max-backtracks` flags (absent flags leave
/// that axis unlimited).
fn budget_from_flags(args: &[String]) -> Result<RunBudget, String> {
    let mut budget = RunBudget::unlimited();
    if let Some(ms) = flag_value(args, "--timeout-ms") {
        let ms: u64 = parse_num(ms, "--timeout-ms")?;
        budget = budget.with_timeout(Duration::from_millis(ms));
    }
    if let Some(n) = flag_value(args, "--max-patterns") {
        budget = budget.with_max_patterns(parse_num(n, "--max-patterns")?);
    }
    if let Some(n) = flag_value(args, "--max-backtracks") {
        budget = budget.with_max_backtracks(parse_num(n, "--max-backtracks")?);
    }
    Ok(budget)
}

/// Parse the shared `--jobs` flag (`0` = auto; absent = 1, sequential).
fn jobs_from_flags(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--jobs") {
        Some(n) => parse_num(n, "--jobs"),
        None => Ok(1),
    }
}

/// Open the `--store` result store, if the flag was given.
fn open_store_from_flags(args: &[String]) -> Result<Option<Arc<ResultStore>>, String> {
    match flag_value(args, "--store") {
        Some(dir) => ResultStore::open(std::path::Path::new(dir))
            .map(|s| Some(Arc::new(s)))
            .map_err(|e| format!("opening store {dir}: {e}")),
        None => Ok(None),
    }
}

/// Write a `--metrics` report to `path`.
fn write_metrics(path: &str, metrics: &RunMetrics) -> Result<(), String> {
    std::fs::write(path, metrics.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote metrics to {path}");
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<RunStatus, String> {
    check_flags(
        args,
        &["--exclude-chip-pins", "--keep-going"],
        &["--measured-tmono", "--reuse", "--jobs", "--metrics"],
    )?;
    let started = std::time::Instant::now();
    let sink = RecordingSink::new();
    let path = positional(args).ok_or("analyze needs a .soc file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let soc = {
        let _t = PhaseTimer::start(&sink, Phase::Parse);
        parse_soc(&text).map_err(|e| e.to_string())?
    };
    let mut options = if has_flag(args, "--exclude-chip-pins") {
        TdvOptions::tables_1_2()
    } else {
        TdvOptions::tables_3_4()
    };
    if let Some(r) = flag_value(args, "--reuse") {
        let r: f64 = parse_num(r, "--reuse")?;
        if !(0.0..=1.0).contains(&r) {
            return Err("--reuse must be between 0 and 1".into());
        }
        options = options.with_functional_reuse(r);
    }
    let jobs = jobs_from_flags(args)?;
    if has_flag(args, "--keep-going") {
        // Degraded mode: poisoned cores become typed per-core outcomes;
        // healthy cores still get their rows and the outcome table shows
        // who failed and why. Per-core arithmetic fans across the pool;
        // the output is identical at any --jobs value.
        let completion = analyze_soc_guarded_jobs_metered(&soc, &options, jobs, &sink);
        println!("{soc}");
        for row in &completion.result {
            println!(
                "{:<16} ISOCOST {:>8}  TDV {:>15}",
                row.name,
                row.isocost,
                fmt_u64(row.volume.total())
            );
        }
        println!();
        println!("{}", render_outcome_table(&completion.per_core_outcomes));
        let status = if completion.is_complete() {
            // Every core is healthy, so the full analysis is valid too.
            let analysis = SocTdvAnalysis::compute(&soc, &options).map_err(|e| e.to_string())?;
            println!(
                "modular change vs optimistic monolithic: {:+.1}%",
                analysis.modular_change_pct()
            );
            RunStatus::Complete
        } else {
            eprintln!(
                "warning: {} of {} cores failed; SOC-level totals suppressed",
                completion.failed_cores().len(),
                completion.per_core_outcomes.len()
            );
            RunStatus::Partial
        };
        if let Some(out) = flag_value(args, "--metrics") {
            let metrics = analysis_run_metrics(
                "analyze",
                path,
                jobs,
                started.elapsed().as_secs_f64() * 1e3,
                &RunBudget::unlimited(),
                &sink,
                &completion.per_core_outcomes,
            );
            write_metrics(out, &metrics)?;
        }
        return Ok(status);
    }
    // Strict mode: a core whose parameters overflow the TDV equations is
    // a hard error (the saturating equations would silently flatten it).
    for (id, core) in soc.iter() {
        if core_tdv_checked(&soc, id, &options).is_none() {
            return Err(format!(
                "core `{}` overflows the TDV equations (corrupt counts?); \
                 rerun with --keep-going to analyze the remaining cores",
                core.name
            ));
        }
    }
    let analysis = {
        let _t = PhaseTimer::start(&sink, Phase::TdvAnalysis);
        match flag_value(args, "--measured-tmono") {
            Some(t) => {
                let t: u64 = parse_num(t, "--measured-tmono")?;
                SocTdvAnalysis::compute_with_measured_tmono(&soc, &options, t)
                    .map_err(|e| e.to_string())?
            }
            None => SocTdvAnalysis::compute(&soc, &options).map_err(|e| e.to_string())?,
        }
    };
    // One shared renderer with `modsoc serve`'s text mode, so the CI
    // serve gate can byte-diff a served report against this stdout.
    print!("{}", render_analyze_report(&soc, &analysis));
    if let Some(out) = flag_value(args, "--metrics") {
        let metrics = analysis_run_metrics(
            "analyze",
            path,
            jobs,
            started.elapsed().as_secs_f64() * 1e3,
            &RunBudget::unlimited(),
            &sink,
            &[],
        );
        write_metrics(out, &metrics)?;
    }
    Ok(RunStatus::Complete)
}

/// Run the live modular-vs-monolithic experiment on one of the built-in
/// SOC netlist constructions, guarded and budgeted, with the per-core
/// phase fanned across `--jobs` pool workers.
fn cmd_experiment(args: &[String]) -> Result<RunStatus, String> {
    check_flags(
        args,
        &["--fail-fast", "--skip-monolithic", "--no-store-read"],
        &[
            "--seed",
            "--jobs",
            "--timeout-ms",
            "--max-patterns",
            "--max-backtracks",
            "--metrics",
            "--store",
        ],
    )?;
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => parse_num(s, "--seed")?,
        None => 1,
    };
    let netlist = match positional(args) {
        Some("mini") => modsoc::circuitgen::soc::mini_soc(seed),
        Some("soc1") => modsoc::circuitgen::soc::soc1(seed),
        Some("soc2") => modsoc::circuitgen::soc::soc2(seed),
        other => {
            return Err(format!(
                "experiment needs one of mini|soc1|soc2, got {other:?}"
            ))
        }
    }
    .map_err(|e| e.to_string())?;

    let mut options = ExperimentOptions::paper_tables_1_2()
        .with_jobs(jobs_from_flags(args)?)
        .with_fail_fast(has_flag(args, "--fail-fast"));
    if has_flag(args, "--skip-monolithic") {
        options = options.modular_only();
    }
    let store = open_store_from_flags(args)?;
    if let Some(store) = &store {
        options = options
            .with_store(Arc::clone(store))
            .with_store_read(!has_flag(args, "--no-store-read"));
    }
    let budget = budget_from_flags(args)?;
    let (completion, metrics) = match flag_value(args, "--metrics") {
        Some(_) => {
            // Metered run: each core's engine (and the monolithic run)
            // reports into its own recording sink; results are
            // byte-identical to the unmetered path.
            let metered = run_soc_experiment_metered(&netlist, &options, &budget)
                .map_err(|e| e.to_string())?;
            (metered.completion, Some(metered.metrics))
        }
        None => (
            run_soc_experiment_guarded(&netlist, &options, &budget).map_err(|e| e.to_string())?,
            None,
        ),
    };

    let exp = &completion.result;
    println!("{}", render_core_table(&exp.soc, &exp.analysis));
    if options.monolithic {
        println!(
            "monolithic ATPG: T_mono = {} (max core {}), coverage {:.2}%, eq.2 strict: {}",
            exp.t_mono,
            exp.soc.max_core_patterns(),
            exp.mono_coverage * 100.0,
            exp.eq2_strict
        );
    } else {
        println!(
            "monolithic phase skipped: T_mono bounded below by max core = {}",
            exp.t_mono
        );
    }
    println!();
    println!("{}", render_outcome_table(&completion.per_core_outcomes));
    if let (Some(out), Some(metrics)) = (flag_value(args, "--metrics"), &metrics) {
        println!("{}", render_metrics_table(metrics));
        write_metrics(out, metrics)?;
    }
    if let Some(store) = &store {
        // Stderr, so warm and cold stdout reports diff clean.
        eprintln!("store: {}", store.traffic_summary());
    }
    if completion.is_complete() {
        return Ok(RunStatus::Complete);
    }
    if let Some(e) = &completion.exhausted {
        eprintln!("warning: partial result — {e}");
    }
    let failed = completion.failed_cores().len();
    if failed > 0 {
        eprintln!(
            "warning: {failed} of {} stages failed",
            completion.per_core_outcomes.len()
        );
    }
    Ok(RunStatus::Partial)
}

/// Best-effort SIGINT/SIGTERM hooks for the serve daemon's graceful
/// drain. The bin target carries the workspace's only `unsafe` block: a
/// single `signal(2)` registration (no libc crate under the offline
/// dependency policy). The handler just sets an atomic flag — the only
/// async-signal-safe thing worth doing — and a watcher thread turns the
/// flag into [`ServerHandle::shutdown`].
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Run the long-lived ATPG service daemon (see `DESIGN.md` §13).
///
/// Prints the bound address (`--addr 127.0.0.1:0` picks an ephemeral
/// port) on stdout and serves until SIGINT/SIGTERM or `POST /shutdown`,
/// then drains admitted requests and exits 0.
fn cmd_serve(args: &[String]) -> Result<RunStatus, String> {
    check_flags(
        args,
        &["--no-store-read", "--keep-alive"],
        &[
            "--addr",
            "--workers",
            "--queue",
            "--max-conns",
            "--max-body-bytes",
            "--request-timeout-ms",
            "--read-timeout-ms",
            "--write-timeout-ms",
            "--retry-after-secs",
            "--keep-alive-max",
            "--idle-timeout-ms",
            "--batch-max",
            "--batch-window-ms",
            "--lane-weights",
            "--jobs",
            "--store",
        ],
    )?;
    let mut config = ServeConfig {
        jobs: jobs_from_flags(args)?,
        store: open_store_from_flags(args)?,
        store_read: !has_flag(args, "--no-store-read"),
        ..ServeConfig::default()
    };
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(n) = flag_value(args, "--workers") {
        config.workers = parse_num(n, "--workers")?;
    }
    if let Some(n) = flag_value(args, "--queue") {
        config.queue_capacity = parse_num(n, "--queue")?;
    }
    if let Some(n) = flag_value(args, "--max-conns") {
        config.max_connections = parse_num(n, "--max-conns")?;
    }
    if let Some(n) = flag_value(args, "--max-body-bytes") {
        config.max_body_bytes = parse_num(n, "--max-body-bytes")?;
    }
    if let Some(n) = flag_value(args, "--request-timeout-ms") {
        config.max_request_ms = parse_num(n, "--request-timeout-ms")?;
    }
    if let Some(n) = flag_value(args, "--read-timeout-ms") {
        config.read_timeout = Duration::from_millis(parse_num(n, "--read-timeout-ms")?);
    }
    if let Some(n) = flag_value(args, "--write-timeout-ms") {
        config.write_timeout = Duration::from_millis(parse_num(n, "--write-timeout-ms")?);
    }
    if let Some(n) = flag_value(args, "--retry-after-secs") {
        config.retry_after_secs = parse_num(n, "--retry-after-secs")?;
    }
    config.keep_alive = has_flag(args, "--keep-alive");
    if let Some(n) = flag_value(args, "--keep-alive-max") {
        config.keep_alive_max_requests = parse_num(n, "--keep-alive-max")?;
    }
    if let Some(n) = flag_value(args, "--idle-timeout-ms") {
        config.idle_timeout = Duration::from_millis(parse_num(n, "--idle-timeout-ms")?);
    }
    if let Some(n) = flag_value(args, "--batch-max") {
        config.batch_max = parse_num(n, "--batch-max")?;
    }
    if let Some(n) = flag_value(args, "--batch-window-ms") {
        config.batch_window = Duration::from_millis(parse_num(n, "--batch-window-ms")?);
    }
    if let Some(w) = flag_value(args, "--lane-weights") {
        let (light, heavy) = w
            .split_once(':')
            .ok_or("--lane-weights wants LIGHT:HEAVY, e.g. 4:1")?;
        config.lane_weights = (
            parse_num(light, "--lane-weights")?,
            parse_num(heavy, "--lane-weights")?,
        );
        if config.lane_weights.0 == 0 || config.lane_weights.1 == 0 {
            return Err("--lane-weights must both be >= 1".into());
        }
    }
    let requested = config.addr.clone();
    let server = Server::bind(config).map_err(|e| format!("binding {requested}: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts (the CI serve gate) parse this line for the ephemeral
    // port, so flush it before blocking in the accept loop.
    println!("modsoc serve listening on http://{addr}");
    {
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    let handle = server.handle();
    #[cfg(unix)]
    {
        sig::install();
        let handle = handle.clone();
        std::thread::spawn(move || loop {
            if sig::SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst) {
                handle.shutdown();
                return;
            }
            if handle.is_shutdown() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
    let snapshot = server.run().map_err(|e| e.to_string())?;
    use modsoc::metrics::Counter;
    eprintln!(
        "serve: drained after {} requests ({} shed, {} coalesce hits, {} deadline trips, {} panics)",
        snapshot.counter(Counter::ServeRequests),
        snapshot.counter(Counter::ServeShed),
        snapshot.counter(Counter::ServeCoalesceHits),
        snapshot.counter(Counter::ServeDeadlineTrips),
        snapshot.counter(Counter::ServePanics),
    );
    eprintln!(
        "serve: {} keep-alive reuses, {} batches covering {} units, lanes light/heavy {}/{}",
        snapshot.counter(Counter::ServeKeepAliveReuses),
        snapshot.counter(Counter::ServeBatches),
        snapshot.counter(Counter::ServeBatchedUnits),
        snapshot.counter(Counter::ServeLaneLight),
        snapshot.counter(Counter::ServeLaneHeavy),
    );
    Ok(RunStatus::Complete)
}

/// Advance an xorshift64 state (the workload mix generator; seeded,
/// reproducible).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// One loadgen request outcome.
struct LoadgenOutcome {
    /// Workload index — recovers deterministic ordering after the
    /// work-stealing workers scramble completion order.
    index: usize,
    status: u16,
    latency: Duration,
    class: &'static str,
    /// Response body for `hot` requests — all of these must be
    /// byte-identical (one engine run fanned out by coalescing/store).
    hot_body: Option<String>,
    /// Whether a 503 carried the mandatory `Retry-After` header.
    retry_after_ok: bool,
    /// 503 retries spent before this outcome settled.
    retries: u64,
    /// SHA-256 of the response body (`io-error` on transport failure) —
    /// the keep-alive parity smoke diffs these across transport modes.
    body_sha: String,
}

/// The loadgen client side of one worker: either a persistent
/// keep-alive [`HttpClient`] or the PR 7 one-connection-per-request
/// path, so the same workload can measure both.
struct Transport {
    addr: String,
    client: Option<HttpClient>,
}

impl Transport {
    fn new(addr: &str, keep_alive: bool) -> Result<Transport, String> {
        let client = if keep_alive {
            Some(HttpClient::new(addr, Duration::from_secs(60)).map_err(|e| e.to_string())?)
        } else {
            None
        };
        Ok(Transport {
            addr: addr.to_string(),
            client,
        })
    }

    fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        match &mut self.client {
            Some(c) => c.request(method, path, body),
            None => http_request(&self.addr, method, path, body, Duration::from_secs(60)),
        }
    }

    /// (requests, connects, reused) for the keep-alive client; zeros in
    /// one-shot mode.
    fn stats(&self) -> (u64, u64, u64) {
        self.client.as_ref().map_or((0, 0, 0), HttpClient::stats)
    }
}

/// Attempts per request: the first send plus up to four seeded-backoff
/// retries when the server sheds with `503` + `Retry-After`.
const LOADGEN_MAX_ATTEMPTS: u64 = 5;

fn loadgen_request(transport: &mut Transport, seed: u64, i: usize, salt: u64) -> LoadgenOutcome {
    let mut rng = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64 + 1);
    let roll = xorshift(&mut rng) % 100;
    // Mix: 40% hot (identical unit: store hits + coalescing), 25% cold
    // (unique seeds), 15% duplicate-burst (identical within the run but
    // distinct from `hot`), 10% oversized (413), 10% analyze text.
    let (class, method, path, body) = if roll < 40 {
        (
            "hot",
            "POST",
            "/experiment",
            format!("{{\"soc\": \"mini\", \"seed\": {seed}, \"timeout_ms\": 20000}}"),
        )
    } else if roll < 65 {
        let unique = seed
            .wrapping_add(1000)
            .wrapping_add(xorshift(&mut rng) % 32);
        (
            "cold",
            "POST",
            "/experiment",
            format!("{{\"soc\": \"mini\", \"seed\": {unique}, \"timeout_ms\": 20000}}"),
        )
    } else if roll < 80 {
        (
            "dup",
            "POST",
            "/experiment",
            format!(
                "{{\"soc\": \"mini\", \"seed\": {}, \"timeout_ms\": 20000}}",
                seed.wrapping_add(salt)
            ),
        )
    } else if roll < 90 {
        ("oversized", "POST", "/analyze", "x".repeat(2 * 1024 * 1024))
    } else {
        (
            "analyze",
            "POST",
            "/analyze",
            "{\"soc\": \"soc demo\\ncore a i=4 o=3 b=0 s=10 t=50\\ncore b i=2 o=2 b=0 s=8 t=30\\n\", \"format\": \"text\"}"
                .to_string(),
        )
    };
    let started = std::time::Instant::now();
    let mut retries = 0u64;
    let resp = loop {
        let resp = transport.send(method, path, Some(&body));
        match resp {
            // A tagged shed is advice, not failure: honor Retry-After
            // with seeded jitter so the retry herd spreads out, then
            // re-submit. Untagged 503s stay terminal (and flagged).
            Ok(r)
                if r.status == 503
                    && retries + 1 < LOADGEN_MAX_ATTEMPTS
                    && r.header("retry-after").is_some() =>
            {
                let after_ms = r
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map_or(100, |s| (s * 1000).min(400));
                retries += 1;
                std::thread::sleep(Duration::from_millis(after_ms + xorshift(&mut rng) % 200));
            }
            other => break other,
        }
    };
    let latency = started.elapsed();
    let sha = |bytes: &[u8]| modsoc::store::sha256::hex(&modsoc::store::sha256::digest(bytes));
    match resp {
        Ok(r) => LoadgenOutcome {
            index: i,
            status: r.status,
            latency,
            class,
            hot_body: (class == "hot" && r.status == 200).then(|| r.body_text()),
            retry_after_ok: r.status != 503 || r.header("retry-after").is_some(),
            retries,
            body_sha: sha(&r.body),
        },
        Err(_) => LoadgenOutcome {
            index: i,
            status: 0,
            latency,
            class,
            hot_body: None,
            retry_after_ok: true,
            retries,
            body_sha: "io-error".to_string(),
        },
    }
}

/// Nearest-rank percentile (milliseconds) over an ascending-sorted
/// sample: the smallest value with at least `ceil(p * n)` observations
/// at or below it. The previous interpolated-index rounding overshot on
/// small samples (p50 of a 2-sample set returned the *larger* value;
/// p99 of 99 samples skipped the true rank).
fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (p * n as f64).ceil().max(1.0) as usize;
    sorted[rank.min(n) - 1].as_secs_f64() * 1e3
}

/// Drive a running `modsoc serve` with a seeded mixed workload and
/// check the service-level invariants (identical requests get identical
/// bytes, sheds carry `Retry-After`, nothing hangs or corrupts).
fn cmd_loadgen(args: &[String]) -> Result<RunStatus, String> {
    check_flags(
        args,
        &["--shutdown", "--keep-alive", "--dump-metrics"],
        &[
            "--addr",
            "--requests",
            "--concurrency",
            "--seed",
            "--flood",
            "--analyze-file",
            "--bodies-out",
            "--json",
            "--label",
            "--check",
            "--tolerance",
        ],
    )?;
    let addr = flag_value(args, "--addr")
        .ok_or("loadgen needs --addr HOST:PORT of a running `modsoc serve`")?
        .to_string();
    // Single-shot text analyze: emit the served report verbatim so the
    // CI gate can byte-diff it against `modsoc analyze` stdout.
    if let Some(path) = flag_value(args, "--analyze-file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let body = modsoc::metrics::json::JsonValue::Object(vec![
            (
                "soc".to_string(),
                modsoc::metrics::json::JsonValue::String(text),
            ),
            (
                "format".to_string(),
                modsoc::metrics::json::JsonValue::String("text".to_string()),
            ),
        ])
        .to_compact();
        let resp = http_request(
            &addr,
            "POST",
            "/analyze",
            Some(&body),
            Duration::from_secs(30),
        )
        .map_err(|e| format!("POST /analyze: {e}"))?;
        if resp.status != 200 {
            return Err(format!(
                "served analyze failed with {}: {}",
                resp.status,
                resp.body_text()
            ));
        }
        print!("{}", resp.body_text());
        return Ok(RunStatus::Complete);
    }
    if has_flag(args, "--shutdown") {
        let resp = http_request(&addr, "POST", "/shutdown", None, Duration::from_secs(10))
            .map_err(|e| format!("POST /shutdown: {e}"))?;
        println!("shutdown: {} {}", resp.status, resp.body_text());
        return Ok(RunStatus::Complete);
    }
    // Single-shot metrics scrape: print the server's /metrics document
    // verbatim so scripts (the CI distributed gate) can read counters
    // like store_writes without an HTTP client of their own.
    if has_flag(args, "--dump-metrics") {
        let resp = http_request(&addr, "GET", "/metrics", None, Duration::from_secs(10))
            .map_err(|e| format!("GET /metrics: {e}"))?;
        if resp.status != 200 {
            return Err(format!("GET /metrics failed with {}", resp.status));
        }
        println!("{}", resp.body_text());
        return Ok(RunStatus::Complete);
    }
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => parse_num(s, "--seed")?,
        None => 1,
    };
    // Flood mode: hammer the daemon with more concurrent requests than
    // its queue can hold and report the shed behavior. Distinct seeds
    // defeat coalescing so every request wants a worker.
    if let Some(n) = flag_value(args, "--flood") {
        let n: usize = parse_num(n, "--flood")?;
        let outcomes: Vec<HttpResponse> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let addr = addr.clone();
                    s.spawn(move || {
                        let body = format!(
                            "{{\"soc\": \"mini\", \"seed\": {}, \"timeout_ms\": 20000}}",
                            seed.wrapping_add(5000 + i as u64)
                        );
                        http_request(
                            &addr,
                            "POST",
                            "/experiment",
                            Some(&body),
                            Duration::from_secs(60),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().ok().and_then(Result::ok))
                .collect()
        });
        let ok = outcomes.iter().filter(|r| r.status == 200).count();
        let shed = outcomes.iter().filter(|r| r.status == 503).count();
        let shed_with_header = outcomes
            .iter()
            .filter(|r| r.status == 503 && r.header("retry-after").is_some())
            .count();
        println!(
            "flood: {n} fired, {} answered, {ok} ok, {shed} shed with 503",
            outcomes.len()
        );
        println!(
            "retry-after on all 503s: {}",
            if shed_with_header == shed {
                "PASS"
            } else {
                "FAIL"
            }
        );
        // Every fired request must get *some* answer — shedding means
        // refusing loudly, never hanging or dropping admitted work.
        if outcomes.len() == n && shed_with_header == shed {
            return Ok(RunStatus::Complete);
        }
        return Err("flood outcomes violated the shed contract".into());
    }
    // Mixed-workload mode.
    let requests: usize = match flag_value(args, "--requests") {
        Some(n) => parse_num(n, "--requests")?,
        None => 64,
    };
    let concurrency: usize = match flag_value(args, "--concurrency") {
        Some(n) => parse_num(n, "--concurrency")?,
        None => 8,
    };
    let keep_alive = has_flag(args, "--keep-alive");
    let next = std::sync::atomic::AtomicUsize::new(0);
    let started = std::time::Instant::now();
    let per_worker: Vec<(Vec<LoadgenOutcome>, (u64, u64, u64))> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency.max(1))
            .map(|_| {
                let addr = addr.clone();
                let next = &next;
                s.spawn(move || {
                    let mut transport = Transport::new(&addr, keep_alive)?;
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        if i >= requests {
                            return Ok((mine, transport.stats()));
                        }
                        mine.push(loadgen_request(&mut transport, seed, i, 100));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect::<Result<_, String>>()
    })?;
    let wall = started.elapsed().as_secs_f64();
    let (mut ka_requests, mut ka_connects, mut ka_reused) = (0u64, 0u64, 0u64);
    let mut outcomes: Vec<LoadgenOutcome> = Vec::with_capacity(requests);
    for (mine, (rq, co, re)) in per_worker {
        outcomes.extend(mine);
        ka_requests += rq;
        ka_connects += co;
        ka_reused += re;
    }
    outcomes.sort_unstable_by_key(|o| o.index);
    let mut by_status: Vec<(u16, usize)> = Vec::new();
    for o in &outcomes {
        match by_status.iter_mut().find(|(s, _)| *s == o.status) {
            Some((_, c)) => *c += 1,
            None => by_status.push((o.status, 1)),
        }
    }
    by_status.sort_unstable();
    let mut latencies: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
    latencies.sort_unstable();
    println!(
        "loadgen: {} requests, {concurrency} workers, {wall:.2}s wall, {:.1} req/s",
        outcomes.len(),
        outcomes.len() as f64 / wall.max(1e-9)
    );
    let histogram: Vec<String> = by_status
        .iter()
        .map(|(s, c)| {
            if *s == 0 {
                format!("io-error: {c}")
            } else {
                format!("{s}: {c}")
            }
        })
        .collect();
    println!("status {}", histogram.join("  "));
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    println!(
        "latency ms: p50 {p50:.1}  p90 {:.1}  p99 {p99:.1}",
        percentile(&latencies, 0.90),
    );
    let mut analyze_lat: Vec<Duration> = outcomes
        .iter()
        .filter(|o| o.class == "analyze")
        .map(|o| o.latency)
        .collect();
    analyze_lat.sort_unstable();
    let analyze_p99 = percentile(&analyze_lat, 0.99);
    if !analyze_lat.is_empty() {
        println!(
            "analyze latency ms: p50 {:.1}  p99 {analyze_p99:.1} ({} requests)",
            percentile(&analyze_lat, 0.50),
            analyze_lat.len()
        );
    }
    let total_retries: u64 = outcomes.iter().map(|o| o.retries).sum();
    println!("retries after 503: {total_retries}");
    if keep_alive {
        println!(
            "keep-alive: {ka_requests} requests over {ka_connects} connections ({ka_reused} reused)"
        );
    }
    if let Some(path) = flag_value(args, "--bodies-out") {
        let mut lines = String::new();
        for o in &outcomes {
            use std::fmt::Write as _;
            let _ = writeln!(lines, "{} {} {} {}", o.index, o.class, o.status, o.body_sha);
        }
        std::fs::write(path, lines).map_err(|e| format!("writing {path}: {e}"))?;
    }
    let req_per_s = outcomes.len() as f64 / wall.max(1e-9);
    let label =
        flag_value(args, "--label").unwrap_or(if keep_alive { "keepalive" } else { "baseline" });
    if let Some(path) = flag_value(args, "--json") {
        write_serve_bench(
            path,
            label,
            requests,
            concurrency,
            seed,
            req_per_s,
            p50,
            p99,
            analyze_p99,
        )?;
        println!("bench: wrote entry \"{label}\" to {path}");
    }
    let mut gate_failures = Vec::new();
    if let Some(path) = flag_value(args, "--check") {
        let tolerance: f64 = match flag_value(args, "--tolerance") {
            Some(t) => t.parse().map_err(|e| format!("--tolerance {t}: {e}"))?,
            None => 0.5,
        };
        gate_failures =
            check_serve_bench(path, label, tolerance, req_per_s, p50, p99, analyze_p99)?;
        println!(
            "bench gate vs \"{label}\" in {path} (tolerance {tolerance}): {}",
            if gate_failures.is_empty() {
                "PASS"
            } else {
                "FAIL"
            }
        );
        for f in &gate_failures {
            println!("  {f}");
        }
    }
    // Invariants behind the corruption check:
    //  * every identical "hot" request answered 200 with identical
    //    bytes (one engine result fanned out, never a torn mix);
    //  * oversized bodies always 413 (the cap held);
    //  * every 503 carried Retry-After;
    //  * no request ended in an I/O error or hung past its timeout.
    let hot_bodies: Vec<&String> = outcomes
        .iter()
        .filter_map(|o| o.hot_body.as_ref())
        .collect();
    let hot_consistent = hot_bodies.windows(2).all(|w| w[0] == w[1]);
    let hot_all_ok = outcomes
        .iter()
        .filter(|o| o.class == "hot")
        .all(|o| o.status == 200);
    let oversized_ok = outcomes
        .iter()
        .filter(|o| o.class == "oversized")
        .all(|o| o.status == 413);
    let sheds_tagged = outcomes.iter().all(|o| o.retry_after_ok);
    let no_io_errors = outcomes.iter().all(|o| o.status != 0);
    let pass = hot_consistent && hot_all_ok && oversized_ok && sheds_tagged && no_io_errors;
    println!(
        "zero-corruption check: {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        return Err(format!(
            "corruption check failed (hot consistent: {hot_consistent}, hot ok: {hot_all_ok}, \
             oversized 413: {oversized_ok}, sheds tagged: {sheds_tagged}, no io errors: {no_io_errors})"
        ));
    }
    if !gate_failures.is_empty() {
        return Err(format!(
            "serve bench gate failed: {}",
            gate_failures.join("; ")
        ));
    }
    Ok(RunStatus::Complete)
}

/// Write (or update) one labelled entry in a `BENCH_serve.json`
/// baseline. Entries under other labels are preserved so the baseline
/// can hold the keep-alive and close-per-request numbers side by side.
#[allow(clippy::too_many_arguments)]
fn write_serve_bench(
    path: &str,
    label: &str,
    requests: usize,
    concurrency: usize,
    seed: u64,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    analyze_p99_ms: f64,
) -> Result<(), String> {
    use modsoc::metrics::json::JsonValue;
    let round = |v: f64| (v * 1000.0).round() / 1000.0;
    let mut entries: Vec<(String, JsonValue)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| modsoc::metrics::json::parse(&text).ok())
        .and_then(|doc| match doc.get("entries") {
            Some(JsonValue::Object(pairs)) => Some(pairs.clone()),
            _ => None,
        })
        .unwrap_or_default();
    let entry = JsonValue::Object(vec![
        ("req_per_s".to_string(), JsonValue::Number(round(req_per_s))),
        ("p50_ms".to_string(), JsonValue::Number(round(p50_ms))),
        ("p99_ms".to_string(), JsonValue::Number(round(p99_ms))),
        (
            "analyze_p99_ms".to_string(),
            JsonValue::Number(round(analyze_p99_ms)),
        ),
    ]);
    match entries.iter_mut().find(|(k, _)| k == label) {
        Some((_, v)) => *v = entry,
        None => entries.push((label.to_string(), entry)),
    }
    let doc = JsonValue::Object(vec![
        (
            "schema".to_string(),
            JsonValue::String("modsoc-serve-bench/v1".to_string()),
        ),
        (
            "workload".to_string(),
            JsonValue::Object(vec![
                ("requests".to_string(), JsonValue::Number(requests as f64)),
                (
                    "concurrency".to_string(),
                    JsonValue::Number(concurrency as f64),
                ),
                ("seed".to_string(), JsonValue::Number(seed as f64)),
            ]),
        ),
        ("entries".to_string(), JsonValue::Object(entries)),
    ]);
    let mut text = doc.to_compact();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}

/// Compare a run against the labelled `BENCH_serve.json` entry.
/// Throughput may regress at most `tolerance` (fractional); latency
/// percentiles may exceed baseline by `tolerance` plus a small absolute
/// slack that keeps millisecond-scale baselines from tripping on
/// scheduler noise. Returns human-readable failures (empty = pass).
fn check_serve_bench(
    path: &str,
    label: &str,
    tolerance: f64,
    req_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    analyze_p99_ms: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = modsoc::metrics::json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let entry = doc
        .get("entries")
        .and_then(|e| e.get(label))
        .ok_or_else(|| format!("{path} has no entry labelled \"{label}\""))?;
    let base = |field: &str| -> Result<f64, String> {
        entry
            .get(field)
            .and_then(modsoc::metrics::json::JsonValue::as_f64)
            .ok_or_else(|| format!("{path} entry \"{label}\" lacks numeric {field}"))
    };
    let mut failures = Vec::new();
    let base_rps = base("req_per_s")?;
    if req_per_s < base_rps * (1.0 - tolerance) {
        failures.push(format!(
            "req/s {req_per_s:.1} fell below baseline {base_rps:.1} - {:.0}%",
            tolerance * 100.0
        ));
    }
    for (name, now, slack_ms) in [
        ("p50_ms", p50_ms, 5.0),
        ("p99_ms", p99_ms, 25.0),
        ("analyze_p99_ms", analyze_p99_ms, 25.0),
    ] {
        let baseline = base(name)?;
        let cap = baseline * (1.0 + tolerance) + slack_ms;
        if now > cap {
            failures.push(format!(
                "{name} {now:.1} exceeded baseline {baseline:.1} + {:.0}% + {slack_ms}ms slack",
                tolerance * 100.0
            ));
        }
    }
    Ok(failures)
}

/// Run a resumable campaign of SOC experiments from a JSON spec,
/// journaling per-unit completion into the `--store` directory so a
/// re-invocation skips everything that already finished.
fn cmd_campaign(args: &[String]) -> Result<RunStatus, String> {
    check_flags(
        args,
        &["--keep-going", "--no-store-read"],
        &[
            "--store",
            "--store-url",
            "--owner",
            "--claim-lease-ms",
            "--claim-wait-ms",
            "--jobs",
            "--timeout-ms",
            "--max-patterns",
            "--max-backtracks",
        ],
    )?;
    let path = positional(args).ok_or("campaign needs a spec.json file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec = CampaignSpec::from_json(&text).map_err(|e| e.to_string())?;
    // The journal lives in the store, so a store is not optional here:
    // either a local directory or the URL of a `modsoc serve --store`
    // daemon shared by concurrent workers.
    let local = open_store_from_flags(args)?;
    let store = match (local, flag_value(args, "--store-url")) {
        (Some(_), Some(_)) => {
            return Err("give either --store DIR or --store-url URL, not both".into())
        }
        (Some(store), None) => store,
        (None, Some(url)) => {
            let backend = HttpBackend::connect(url, Duration::from_secs(10))
                .map_err(|e| format!("connecting to store daemon: {e}"))?;
            Arc::new(ResultStore::with_backend(Arc::new(backend)))
        }
        (None, None) => {
            return Err(
                "campaign requires --store DIR or --store-url URL (the journal lives there)".into(),
            )
        }
    };
    let options = ExperimentOptions::paper_tables_1_2()
        .with_jobs(jobs_from_flags(args)?)
        .with_store(Arc::clone(&store))
        .with_store_read(!has_flag(args, "--no-store-read"));
    let budget = budget_from_flags(args)?;
    let keep_going = has_flag(args, "--keep-going");
    let report = if flag_value(args, "--store-url").is_some() {
        // Remote store: claim units through the daemon so concurrent
        // workers over the same spec partition the work.
        let mut claims = ClaimOptions::new(
            flag_value(args, "--owner").map_or_else(ClaimOptions::default_owner, String::from),
        );
        if let Some(ms) = flag_value(args, "--claim-lease-ms") {
            claims = claims.with_lease(Duration::from_millis(parse_num(ms, "--claim-lease-ms")?));
        }
        if let Some(ms) = flag_value(args, "--claim-wait-ms") {
            claims = claims.with_wait(Duration::from_millis(parse_num(ms, "--claim-wait-ms")?));
        }
        run_campaign_claimed(
            &spec, &options, &budget, &store, keep_going, &claims, &NullSink,
        )
    } else {
        run_campaign(&spec, &options, &budget, &store, keep_going, &NullSink)
    }
    .map_err(|e| e.to_string())?;

    println!("campaign {} ({} units)", report.name, report.units.len());
    println!(
        "{:<16} {:<8} {:>8} {:>15} {:>15} {:>7}",
        "unit", "status", "T_mono", "TDV modular", "TDV monolithic", "ratio"
    );
    let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), fmt_u64);
    for row in &report.units {
        println!(
            "{:<16} {:<8} {:>8} {:>15} {:>15} {:>7}{}",
            row.unit,
            row.status.label(),
            row.t_mono
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            opt(row.tdv_modular),
            opt(row.tdv_monolithic),
            row.reduction_ratio
                .map_or_else(|| "-".to_string(), |r| format!("{r:.2}")),
            if row.note.is_empty() {
                String::new()
            } else {
                format!("  ({})", row.note)
            }
        );
    }
    eprintln!("store: {}", store.traffic_summary());
    if report.is_complete() {
        Ok(RunStatus::Complete)
    } else {
        let skipped = report.count(&UnitStatus::Skipped);
        let done = report.count(&UnitStatus::Complete);
        eprintln!(
            "warning: campaign incomplete ({} of {} units done); re-run to resume",
            skipped + done,
            report.units.len()
        );
        Ok(RunStatus::Partial)
    }
}

/// `modsoc store <gc|verify> <DIR>` — maintenance sweeps over a local
/// store directory. These run where the bytes live: to bound or audit
/// the store behind a `modsoc serve --store` daemon, run them on the
/// daemon's directory (entries are advisory-locked per key, so a sweep
/// is safe next to a live server).
fn cmd_store(args: &[String]) -> Result<RunStatus, String> {
    let open = |rest: &[String]| -> Result<ResultStore, String> {
        let dir = positional(rest).ok_or("store needs a store DIR")?;
        ResultStore::open(std::path::Path::new(dir))
            .map_err(|e| format!("opening store {dir}: {e}"))
    };
    match args.first().map(String::as_str) {
        Some("gc") => {
            check_flags(&args[1..], &[], &["--max-bytes"])?;
            let max_bytes: u64 = parse_num(
                flag_value(&args[1..], "--max-bytes").ok_or("store gc requires --max-bytes N")?,
                "--max-bytes",
            )?;
            let store = open(&args[1..])?;
            let report = store.gc(max_bytes, &NullSink).map_err(|e| e.to_string())?;
            println!(
                "store gc: scanned {}, evicted {} ({} bytes), kept {} ({} bytes, bound {})",
                report.scanned,
                report.evicted.len(),
                report.evicted_bytes,
                report.kept,
                report.kept_bytes,
                max_bytes
            );
            Ok(RunStatus::Complete)
        }
        Some("verify") => {
            check_flags(&args[1..], &[], &[])?;
            let store = open(&args[1..])?;
            let (valid, corrupt) = store.verify_all().map_err(|e| e.to_string())?;
            println!("store verify: {valid} valid, {corrupt} corrupt");
            if corrupt == 0 {
                Ok(RunStatus::Complete)
            } else {
                Err(format!("{corrupt} corrupt store entries"))
            }
        }
        Some(other) => Err(format!("unknown store action `{other}` (gc|verify)")),
        None => Err("store needs an action: gc or verify".into()),
    }
}

fn cmd_atpg(args: &[String]) -> Result<RunStatus, String> {
    check_flags(
        args,
        &["--dynamic"],
        &[
            "--timeout-ms",
            "--max-patterns",
            "--max-backtracks",
            "--patterns-out",
            "--verilog-out",
        ],
    )?;
    let path = positional(args).ok_or("atpg needs a .bench file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    let circuit = parse_bench(name, &text).map_err(|e| e.to_string())?;
    println!("{}", CircuitStats::of(&circuit).map_err(|e| e.to_string())?);

    let budget = budget_from_flags(args)?;
    let options = AtpgOptions {
        dynamic_compaction: has_flag(args, "--dynamic"),
        ..AtpgOptions::default()
    };
    let result = Atpg::new(options)
        .run_budgeted(&circuit, &budget)
        .map_err(|e| e.to_string())?;
    println!(
        "{} patterns, {:.2}% fault coverage ({} classes: {} detected, {} redundant, {} aborted)",
        result.pattern_count(),
        result.fault_coverage() * 100.0,
        result.stats.collapsed_faults,
        result.stats.detected,
        result.stats.redundant,
        result.stats.aborted
    );
    if let Some(out) = flag_value(args, "--patterns-out") {
        std::fs::write(out, result.patterns.to_text())
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote patterns to {out}");
    }
    if let Some(out) = flag_value(args, "--verilog-out") {
        let mut v = write_verilog(&circuit).map_err(|e| e.to_string())?;
        if circuit.dff_count() > 0 {
            v.push('\n');
            v.push_str(dff_module());
        }
        std::fs::write(out, v).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote verilog to {out}");
    }
    if let Some(e) = &result.exhausted {
        eprintln!("warning: partial result — {e}");
        return Ok(RunStatus::Partial);
    }
    Ok(RunStatus::Complete)
}

fn cmd_generate(args: &[String]) -> Result<RunStatus, String> {
    check_flags(
        args,
        &[],
        &[
            "--inputs",
            "--outputs",
            "--scan",
            "--seed",
            "--bench-out",
            "--verilog-out",
        ],
    )?;
    let inputs: usize = parse_num(
        flag_value(args, "--inputs").ok_or("--inputs is required")?,
        "--inputs",
    )?;
    let outputs: usize = parse_num(
        flag_value(args, "--outputs").ok_or("--outputs is required")?,
        "--outputs",
    )?;
    let scan: usize = parse_num(
        flag_value(args, "--scan").ok_or("--scan is required")?,
        "--scan",
    )?;
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => parse_num(s, "--seed")?,
        None => 1,
    };
    let profile = CoreProfile::new("generated", inputs, outputs, scan).with_seed(seed);
    let circuit = generate(&profile).map_err(|e| e.to_string())?;
    println!("{}", CircuitStats::of(&circuit).map_err(|e| e.to_string())?);
    if let Some(out) = flag_value(args, "--bench-out") {
        std::fs::write(out, write_bench(&circuit)).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote bench to {out}");
    }
    if let Some(out) = flag_value(args, "--verilog-out") {
        let mut v = write_verilog(&circuit).map_err(|e| e.to_string())?;
        if circuit.dff_count() > 0 {
            v.push('\n');
            v.push_str(dff_module());
        }
        std::fs::write(out, v).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote verilog to {out}");
    }
    Ok(RunStatus::Complete)
}

fn cmd_cones(args: &[String]) -> Result<RunStatus, String> {
    check_flags(args, &[], &[])?;
    let path = positional(args).ok_or("cones needs a .bench file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let circuit = parse_bench("c", &text).map_err(|e| e.to_string())?;
    let model = if circuit.is_combinational() {
        circuit
    } else {
        circuit.to_test_model().map_err(|e| e.to_string())?.circuit
    };
    let cones = extract_cones(&model).map_err(|e| e.to_string())?;
    println!(
        "{} cones | widths: min {} max {} mean {:.1} | overlapping pairs {} | overlap fraction {:.3}",
        cones.cones().len(),
        cones.cones().iter().map(|c| c.width()).min().unwrap_or(0),
        cones.max_width(),
        cones.mean_width(),
        cones.overlapping_pairs(),
        cones.overlap_fraction()
    );
    Ok(RunStatus::Complete)
}

fn cmd_index(args: &[String]) -> Result<RunStatus, String> {
    check_flags(args, &[], &[])?;
    let path = positional(args).ok_or("index needs a .bench or .soc file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if path.ends_with(".soc") {
        // SOC parameter files have no gate-level netlist to index;
        // summarize the core hierarchy instead.
        let soc = parse_soc(&text).map_err(|e| e.to_string())?;
        let leaves = soc.iter().filter(|(_, c)| c.children.is_empty()).count();
        let scan: u64 = soc.iter().map(|(_, c)| c.scan_cells).sum();
        let patterns: u64 = soc.iter().map(|(_, c)| c.patterns).sum();
        println!(
            "{} cores ({} leaves) | {} scan cells | {} total patterns | max core T {}",
            soc.core_count(),
            leaves,
            fmt_u64(scan),
            fmt_u64(patterns),
            fmt_u64(soc.max_core_patterns())
        );
        return Ok(RunStatus::Complete);
    }
    let circuit = parse_bench("c", &text).map_err(|e| e.to_string())?;
    let model = if circuit.is_combinational() {
        circuit
    } else {
        circuit.to_test_model().map_err(|e| e.to_string())?.circuit
    };
    let index = modsoc::netlist::StructuralIndex::build(&model).map_err(|e| e.to_string())?;
    let n = index.node_count();
    let edges = (0..n)
        .map(|i| index.fanout_degree(modsoc::netlist::NodeId::from_index(i)))
        .sum::<usize>();
    let max_level = (0..n)
        .map(|i| index.level(modsoc::netlist::NodeId::from_index(i)))
        .max()
        .unwrap_or(0);
    let dead = (0..n)
        .filter(|&i| !index.reaches_any_output(modsoc::netlist::NodeId::from_index(i)))
        .count();
    let mean_cone = if n == 0 {
        0.0
    } else {
        (0..n)
            .map(|i| {
                index
                    .fanout_cone(modsoc::netlist::NodeId::from_index(i))
                    .len()
            })
            .sum::<usize>() as f64
            / n as f64
    };
    println!(
        "{n} nodes | {edges} fanout edges | depth {max_level} | {dead} dead nodes | mean fanout cone {mean_cone:.1}"
    );
    Ok(RunStatus::Complete)
}

fn cmd_tdf(args: &[String]) -> Result<RunStatus, String> {
    check_flags(
        args,
        &[],
        &["--timeout-ms", "--max-backtracks", "--patterns-out"],
    )?;
    let path = positional(args).ok_or("tdf needs a .bench file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let circuit = parse_bench("circuit", &text).map_err(|e| e.to_string())?;
    let budget = budget_from_flags(args)?;
    let result = modsoc::atpg::tdf::run_tdf_atpg_budgeted(
        &circuit,
        400,
        modsoc::atpg::tdf::LaunchScheme::Capture,
        &budget,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "transition faults: {} total, {} detected, {} LOC-untestable, {} aborted",
        result.total, result.detected, result.untestable, result.aborted
    );
    println!(
        "{} launch-on-capture patterns, {:.2}% coverage over LOC-testable faults",
        result.patterns.len(),
        result.coverage() * 100.0
    );
    if let Some(out) = flag_value(args, "--patterns-out") {
        std::fs::write(out, result.patterns.to_text())
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote patterns to {out}");
    }
    if let Some(e) = &result.exhausted {
        eprintln!("warning: partial result — {e}");
        return Ok(RunStatus::Partial);
    }
    Ok(RunStatus::Complete)
}

fn cmd_demo(args: &[String]) -> Result<RunStatus, String> {
    check_flags(args, &[], &[])?;
    match positional(args) {
        Some("soc1") => {
            let soc = itc02::soc1();
            let a = SocTdvAnalysis::compute_with_measured_tmono(
                &soc,
                &TdvOptions::tables_1_2(),
                itc02::SOC1_MEASURED_TMONO,
            )
            .map_err(|e| e.to_string())?;
            println!("{}", render_core_table(&soc, &a));
        }
        Some("soc2") => {
            let soc = itc02::soc2();
            let a = SocTdvAnalysis::compute_with_measured_tmono(
                &soc,
                &TdvOptions::tables_1_2(),
                itc02::SOC2_MEASURED_TMONO,
            )
            .map_err(|e| e.to_string())?;
            println!("{}", render_core_table(&soc, &a));
        }
        Some("p34392") => {
            let soc = itc02::p34392();
            let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4())
                .map_err(|e| e.to_string())?;
            println!("{}", render_core_table(&soc, &a));
            println!("modular TDV: {}", fmt_u64(a.modular().total()));
        }
        Some("table4") => {
            let opts = TdvOptions::tables_3_4();
            let mut analyses = Vec::new();
            for row in itc02::table4() {
                let soc = if row.name == "p34392" {
                    itc02::p34392()
                } else {
                    modsoc::analysis::reconstruct::reconstruct_table4(row)
                        .map_err(|e| e.to_string())?
                };
                analyses.push(SocTdvAnalysis::compute(&soc, &opts).map_err(|e| e.to_string())?);
            }
            println!("{}", render_survey(&analyses));
        }
        other => {
            return Err(format!(
                "demo needs one of soc1|soc2|p34392|table4, got {other:?}"
            ))
        }
    }
    Ok(RunStatus::Complete)
}

/// One `modsoc tam` comparison row.
struct TamRow {
    soc: String,
    cores: usize,
    pack_time: u64,
    utilization: f64,
    backfills: usize,
    best_arch: &'static str,
    best_time: u64,
    /// `Some(Ok((time, peak)))` when a `--power-ceiling` packing exists,
    /// `Some(Err(reason))` when it is infeasible, `None` when no ceiling
    /// was requested.
    constrained: Option<Result<(u64, u64), String>>,
}

fn tam_arch_label(arch: Option<modsoc::tam::TamArchitecture>) -> &'static str {
    use modsoc::tam::TamArchitecture;
    match arch {
        None => "rectangles",
        Some(TamArchitecture::Multiplexing) => "multiplexing",
        Some(TamArchitecture::Daisychain) => "daisychain",
        Some(TamArchitecture::Distribution) => "distribution",
    }
}

/// The `modsoc tam` sweep set: the builtin SOCs plus every Table 4
/// ITC'02 SOC (p34392 from the embedded Table 3 data, the other nine
/// analytically reconstructed). `only` restricts to one name.
fn tam_soc_list(only: Option<&str>) -> Result<Vec<(String, modsoc::soc::Soc)>, String> {
    let mut socs = vec![
        ("soc1".to_string(), itc02::soc1()),
        ("soc2".to_string(), itc02::soc2()),
    ];
    for row in itc02::table4() {
        let soc = if row.name == "p34392" {
            itc02::p34392()
        } else {
            modsoc::analysis::reconstruct::reconstruct_table4(row)
                .map_err(|e| format!("reconstructing {}: {e}", row.name))?
        };
        socs.push((row.name.to_string(), soc));
    }
    match only {
        None => Ok(socs),
        Some(name) => {
            socs.retain(|(n, _)| n == name);
            if socs.is_empty() {
                return Err(format!(
                    "unknown soc `{name}` (expected soc1, soc2, or a Table 4 name)"
                ));
            }
            Ok(socs)
        }
    }
}

/// Rectangle bin-packing wrapper/TAM co-optimization over the ITC'02
/// SOCs: pack each SOC's Pareto wrapper rectangles under a TAM width
/// budget (diagonal-length-first, idle-time backfill) and compare test
/// time and utilization against the existing architecture sweep's best.
fn cmd_tam(args: &[String]) -> Result<RunStatus, String> {
    use modsoc::tam::binpack::pack_metered;
    use modsoc::tam::constraints::{pack_constrained_metered, packed_peak_power, power_cores};
    use modsoc::tam::optimize::best_at_width;
    use modsoc::tam::wrapper::WrapperCore;
    use modsoc::tam::TamError;

    check_flags(
        args,
        &[],
        &[
            "--width",
            "--chains",
            "--power-ceiling",
            "--jobs",
            "--json",
            "--metrics",
        ],
    )?;
    let started = std::time::Instant::now();
    let width: usize = match flag_value(args, "--width") {
        Some(w) => parse_num(w, "--width")?,
        None => 16,
    };
    if width == 0 {
        return Err("--width must be at least one".into());
    }
    let chains: usize = match flag_value(args, "--chains") {
        Some(c) => parse_num(c, "--chains")?,
        None => 8,
    };
    if chains == 0 {
        return Err("--chains must be at least one".into());
    }
    let ceiling: Option<u64> = match flag_value(args, "--power-ceiling") {
        Some(c) => Some(parse_num(c, "--power-ceiling")?),
        None => None,
    };
    let jobs = jobs_from_flags(args)?;
    let socs = tam_soc_list(positional(args))?;

    // Per-SOC packing fans across the pool; each row is a pure function
    // of (SOC, width, chains, ceiling), so the table, JSON and every
    // non-wall-time metrics field are byte-identical at any --jobs.
    let sink = RecordingSink::new();
    let pool = modsoc::analysis::WorkerPool::new(jobs);
    let rows: Vec<Result<TamRow, String>> = pool.map_with_sink(&socs, &sink, |_, (name, soc)| {
        let cores: Vec<WrapperCore> = soc
            .iter()
            .filter(|(_, c)| c.patterns > 0)
            .map(|(_, c)| WrapperCore::from_core_spec(c, chains))
            .collect();
        if cores.is_empty() {
            return Err(format!("soc {name} has no cores with patterns"));
        }
        let _t = PhaseTimer::start(&sink, Phase::TamPack);
        let packed = pack_metered(&cores, width, &sink).map_err(|e| format!("{name}: {e}"))?;
        let best = best_at_width(&cores, width).map_err(|e| format!("{name}: {e}"))?;
        let constrained = ceiling.map(|ceiling| {
            let pcs = power_cores(&cores);
            match pack_constrained_metered(&pcs, width, ceiling, &sink) {
                Ok(s) => Ok((s.makespan(), packed_peak_power(&s, &pcs))),
                Err(e @ TamError::Infeasible { .. }) => Err(e.to_string()),
                Err(e) => Err(format!("{name}: {e}")),
            }
        });
        Ok(TamRow {
            soc: name.clone(),
            cores: cores.len(),
            pack_time: packed.makespan(),
            utilization: packed.utilization(),
            backfills: packed.backfills(),
            best_arch: tam_arch_label(best.architecture),
            best_time: best.time,
            constrained,
        })
    });
    let rows: Vec<TamRow> = rows.into_iter().collect::<Result<_, _>>()?;

    match ceiling {
        Some(c) => {
            println!("tam co-optimization: width {width}, {chains} chains/core, power ceiling {c}")
        }
        None => println!("tam co-optimization: width {width}, {chains} chains/core"),
    }
    println!(
        "{:<10} {:>5} {:>13} {:>6} {:>9}  {:<13} {:>13} {:>8}  verdict",
        "soc", "cores", "packed", "util%", "backfills", "best sweep", "time", "delta%"
    );
    let mut wins = 0usize;
    for r in &rows {
        let delta = if r.best_time == 0 {
            0.0
        } else {
            (r.pack_time as f64 - r.best_time as f64) / r.best_time as f64 * 100.0
        };
        let verdict = if r.pack_time < r.best_time {
            wins += 1;
            "wins"
        } else if r.pack_time == r.best_time {
            wins += 1;
            "ties"
        } else {
            // The acceptance contract: losses are explicit, not hidden.
            "LOSES"
        };
        print!(
            "{:<10} {:>5} {:>13} {:>6.1} {:>9}  {:<13} {:>13} {:>+8.1}  {}",
            r.soc,
            r.cores,
            fmt_u64(r.pack_time),
            r.utilization * 100.0,
            r.backfills,
            r.best_arch,
            fmt_u64(r.best_time),
            delta,
            verdict
        );
        match &r.constrained {
            None => println!(),
            Some(Ok((time, peak))) => println!("  | constrained {} peak {peak}", fmt_u64(*time)),
            Some(Err(reason)) => println!("  | constrained infeasible: {reason}"),
        }
    }
    println!("packed time <= best sweep on {wins} of {} SOCs", rows.len());

    if let Some(path) = flag_value(args, "--json") {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"command\": \"tam\",\n");
        use std::fmt::Write as _;
        let _ = writeln!(out, "  \"width\": {width},");
        let _ = writeln!(out, "  \"chains\": {chains},");
        match ceiling {
            Some(c) => {
                let _ = writeln!(out, "  \"power_ceiling\": {c},");
            }
            None => out.push_str("  \"power_ceiling\": null,\n"),
        }
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            let mut extra = String::new();
            match &r.constrained {
                None => {}
                Some(Ok((time, peak))) => {
                    let _ = write!(
                        extra,
                        ", \"constrained_time\": {time}, \"peak_power\": {peak}"
                    );
                }
                Some(Err(reason)) => {
                    let _ = write!(
                        extra,
                        ", \"infeasible\": \"{}\"",
                        reason.replace('\\', "\\\\").replace('"', "\\\"")
                    );
                }
            }
            let _ = writeln!(
                out,
                "    {{\"soc\": \"{}\", \"cores\": {}, \"pack_time\": {}, \
                 \"utilization\": {:.4}, \"backfills\": {}, \"best_arch\": \"{}\", \
                 \"best_time\": {}{extra}}}{sep}",
                r.soc, r.cores, r.pack_time, r.utilization, r.backfills, r.best_arch, r.best_time,
            );
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }

    if let Some(out) = flag_value(args, "--metrics") {
        let target = positional(args).unwrap_or("itc02");
        let metrics = analysis_run_metrics(
            "tam",
            target,
            jobs,
            started.elapsed().as_secs_f64() * 1e3,
            &RunBudget::unlimited(),
            &sink,
            &[],
        );
        write_metrics(out, &metrics)?;
    }
    Ok(RunStatus::Complete)
}

#[cfg(test)]
mod tests {
    use super::percentile;
    use std::time::Duration;

    fn ms(values: &[u64]) -> Vec<Duration> {
        values.iter().map(|&v| Duration::from_millis(v)).collect()
    }

    #[test]
    fn percentile_empty_is_zero() {
        assert_eq!(percentile(&[], 0.50), 0.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        let s = ms(&[7]);
        assert_eq!(percentile(&s, 0.50), 7.0);
        assert_eq!(percentile(&s, 0.90), 7.0);
        assert_eq!(percentile(&s, 0.99), 7.0);
    }

    #[test]
    fn percentile_two_samples_median_is_lower() {
        // Nearest rank: ceil(0.5 * 2) = 1 -> the first sample, not the
        // second (the old rounding picked index 1 here).
        let s = ms(&[10, 20]);
        assert_eq!(percentile(&s, 0.50), 10.0);
        assert_eq!(percentile(&s, 0.99), 20.0);
    }

    #[test]
    fn percentile_n99_hits_true_ranks() {
        let s = ms(&(1..=99).collect::<Vec<u64>>());
        // ceil(0.5 * 99) = 50 -> 50 ms; ceil(0.9 * 99) = 90;
        // ceil(0.99 * 99) = 99 -> the maximum (old code returned 98).
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.90), 90.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
    }

    #[test]
    fn percentile_n100_hits_true_ranks() {
        let s = ms(&(1..=100).collect::<Vec<u64>>());
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.90), 90.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 1.00), 100.0);
    }
}
