//! Robustness tests for the `.soc` text parser: arbitrary input never
//! panics, and structured-but-hostile inputs produce clean errors.

use proptest::prelude::*;

use modsoc_soc::format::{parse_soc, write_soc};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_text_never_panics(text in ".{0,400}") {
        let _ = parse_soc(&text);
    }

    #[test]
    fn structured_junk_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("soc x".to_string()),
                "core [a-z]{1,4}( [iobst]=[0-9]{1,6})*".prop_map(|s| s),
                "core [a-z]{1,4} children=[a-z]{1,4}(,[a-z]{1,4})*".prop_map(|s| s),
                Just("# comment".to_string()),
                Just(String::new()),
            ],
            0..12,
        )
    ) {
        let text = lines.join("\n");
        if let Ok(soc) = parse_soc(&text) {
            // Anything that parses must validate and round-trip.
            soc.validate().expect("parsed socs are valid");
            let again = parse_soc(&write_soc(&soc)).expect("round-trips");
            prop_assert_eq!(again.core_count(), soc.core_count());
        }
    }
}

#[test]
fn hostile_edge_cases_error_cleanly() {
    for text in [
        "soc",                           // missing name
        "soc a\nsoc b",                  // duplicate soc line
        "core a children=a",             // self-embedding
        "core a i=99999999999999999999", // overflow
        "core a children=",              // empty child name
        "soc x\ncore a i=3 q",           // stray token
    ] {
        let result = parse_soc(text);
        assert!(result.is_err(), "should reject: {text:?}");
        let message = result.unwrap_err().to_string();
        assert!(!message.is_empty());
    }
}

#[test]
fn self_embedding_is_cyclic() {
    let err = parse_soc("core a children=a").unwrap_err();
    assert!(
        matches!(err, modsoc_soc::SocError::CyclicHierarchy { .. }),
        "{err}"
    );
}
