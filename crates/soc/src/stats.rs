//! Pattern-count statistics.
//!
//! Table 4's third column correlates the TDV reduction of modular testing
//! with the *normalized standard deviation* of core pattern counts — the
//! sample standard deviation divided by the mean. (Using the published
//! g12710 pattern counts 852/1314/1223/1223, the paper's 0.18 is
//! reproduced only by the sample (n−1) estimator, so that is what this
//! module implements.)

use crate::soc::Soc;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampleStats {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stdev: f64,
}

impl SampleStats {
    /// Compute statistics of a sample.
    #[must_use]
    pub fn of(values: &[u64]) -> SampleStats {
        let n = values.len();
        if n == 0 {
            return SampleStats {
                n: 0,
                mean: 0.0,
                stdev: 0.0,
            };
        }
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let stdev = if n < 2 {
            0.0
        } else {
            let ss: f64 = values.iter().map(|&v| (v as f64 - mean).powi(2)).sum();
            (ss / (n - 1) as f64).sqrt()
        };
        SampleStats { n, mean, stdev }
    }

    /// Normalized standard deviation `stdev / mean` (0 if the mean is 0).
    #[must_use]
    pub fn normalized_stdev(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stdev / self.mean
        }
    }
}

/// Pattern-count statistics over a SOC's *module* cores — every core
/// except the top-level glue, matching Table 4's "Cores" column (e.g. 19
/// for p34392, whose Table 3 lists 20 rows including the top).
#[must_use]
pub fn pattern_count_stats(soc: &Soc) -> SampleStats {
    let top: std::collections::HashSet<_> = soc.top_level_cores().into_iter().collect();
    let counts: Vec<u64> = soc
        .iter()
        .filter(|(id, _)| !top.contains(id))
        .map(|(_, c)| c.patterns)
        .collect();
    if counts.is_empty() {
        // Flat SOC with no glue core: use all cores.
        let all: Vec<u64> = soc.iter().map(|(_, c)| c.patterns).collect();
        return SampleStats::of(&all);
    }
    SampleStats::of(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreSpec;

    #[test]
    fn g12710_published_counts_reproduce_paper_nstd() {
        // Paper §5.2: g12710 core pattern counts 852, 1314, 1223, 1223
        // give normalized stdev 0.18.
        let s = SampleStats::of(&[852, 1314, 1223, 1223]);
        assert!(
            (s.normalized_stdev() - 0.18).abs() < 0.005,
            "{}",
            s.normalized_stdev()
        );
    }

    #[test]
    fn constant_sample_has_zero_nstd() {
        let s = SampleStats::of(&[7, 7, 7]);
        assert_eq!(s.normalized_stdev(), 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(SampleStats::of(&[]).n, 0);
        let one = SampleStats::of(&[5]);
        assert_eq!(one.stdev, 0.0);
        assert_eq!(one.mean, 5.0);
    }

    #[test]
    fn soc_stats_exclude_top() {
        let mut soc = crate::Soc::new("s");
        let a = soc.add_core(CoreSpec::leaf("a", 0, 0, 0, 1, 100)).unwrap();
        let b = soc.add_core(CoreSpec::leaf("b", 0, 0, 0, 1, 300)).unwrap();
        soc.add_core(CoreSpec::parent("top", 0, 0, 0, 0, 9999, vec![a, b]))
            .unwrap();
        let st = pattern_count_stats(&soc);
        assert_eq!(st.n, 2);
        assert_eq!(st.mean, 200.0);
    }

    #[test]
    fn flat_soc_uses_all_cores() {
        let mut soc = crate::Soc::new("flat");
        soc.add_core(CoreSpec::leaf("a", 0, 0, 0, 1, 10)).unwrap();
        soc.add_core(CoreSpec::leaf("b", 0, 0, 0, 1, 30)).unwrap();
        let st = pattern_count_stats(&soc);
        assert_eq!(st.n, 2);
    }
}
