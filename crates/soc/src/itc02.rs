//! Embedded benchmark data from the paper.
//!
//! Three kinds of data, each transcribed from the published tables:
//!
//! * [`soc1`] / [`soc2`] — the ISCAS'89-based SOCs of Tables 1 and 2,
//!   including the measured monolithic pattern counts
//!   ([`SOC1_MEASURED_TMONO`], [`SOC2_MEASURED_TMONO`]);
//! * [`p34392`] — the full per-core table of the hierarchical ITC'02 SOC
//!   p34392 (Table 3), with two self-consistency corrections documented
//!   in `DESIGN.md`: core 0's embed list includes core 10 (as Figure 3
//!   shows), and core 10's output count is 107 (the printed 207 fails the
//!   row's own TDV check);
//! * [`table4`] — the paper-reported aggregates for all ten ITC'02
//!   benchmark SOCs (Table 4), used both as reconstruction targets and as
//!   the reference the regenerated experiments are compared against.

use crate::core::CoreSpec;
use crate::error::SocError;
use crate::soc::Soc;

/// Monolithic ATPG pattern count the paper measured for SOC1 (ATALANTA
/// on the flattened design).
pub const SOC1_MEASURED_TMONO: u64 = 216;

/// Monolithic ATPG pattern count the paper measured for SOC2.
pub const SOC2_MEASURED_TMONO: u64 = 945;

/// SOC1 of Table 1: s713 + s953 + 3×s1423 under a top-level glue core.
///
/// # Panics
///
/// Never panics; the embedded data is valid by construction.
#[must_use]
pub fn soc1() -> Soc {
    let mut soc = Soc::new("SOC1");
    let add = |soc: &mut Soc, spec| soc.add_core(spec).expect("embedded data is valid");
    let c1 = add(&mut soc, CoreSpec::leaf("core1_s713", 35, 23, 0, 19, 52));
    let c2 = add(&mut soc, CoreSpec::leaf("core2_s953", 16, 23, 0, 29, 85));
    let c3 = add(&mut soc, CoreSpec::leaf("core3_s1423", 17, 5, 0, 74, 62));
    let c4 = add(&mut soc, CoreSpec::leaf("core4_s1423", 17, 5, 0, 74, 62));
    let c5 = add(&mut soc, CoreSpec::leaf("core5_s1423", 17, 5, 0, 74, 62));
    add(
        &mut soc,
        CoreSpec::parent("top", 51, 10, 0, 0, 2, vec![c1, c2, c3, c4, c5]),
    );
    soc
}

/// SOC2 of Table 2: s953 + s5378 + s13207 + s15850 under a top-level
/// glue core.
#[must_use]
pub fn soc2() -> Soc {
    let mut soc = Soc::new("SOC2");
    let add = |soc: &mut Soc, spec| soc.add_core(spec).expect("embedded data is valid");
    let c1 = add(&mut soc, CoreSpec::leaf("core1_s953", 16, 23, 0, 29, 85));
    let c2 = add(&mut soc, CoreSpec::leaf("core2_s5378", 35, 49, 0, 179, 244));
    let c3 = add(
        &mut soc,
        CoreSpec::leaf("core3_s13207", 31, 121, 0, 669, 452),
    );
    let c4 = add(
        &mut soc,
        CoreSpec::leaf("core4_s15850", 14, 87, 0, 597, 428),
    );
    add(
        &mut soc,
        CoreSpec::parent("top", 14, 198, 0, 0, 2, vec![c1, c2, c3, c4]),
    );
    soc
}

/// The hierarchical ITC'02 SOC p34392 (Table 3 / Figure 3).
///
/// Hierarchy: the top core 0 embeds cores 1, 2, 10 and 18; core 2 embeds
/// 3–9; core 10 embeds 11–17; core 18 embeds 19.
#[must_use]
pub fn p34392() -> Soc {
    // (name, I, O, B, S, T); children attached below.
    const ROWS: [(&str, u64, u64, u64, u64, u64); 20] = [
        ("core0", 32, 27, 114, 0, 27),
        ("core1", 15, 94, 0, 806, 210),
        ("core2", 165, 263, 0, 8856, 514),
        ("core3", 37, 25, 0, 0, 3108),
        ("core4", 38, 25, 0, 0, 6180),
        ("core5", 62, 25, 0, 0, 12336),
        ("core6", 11, 8, 0, 0, 1965),
        ("core7", 9, 8, 0, 0, 512),
        ("core8", 46, 17, 0, 0, 9930),
        ("core9", 41, 33, 0, 0, 228),
        ("core10", 129, 107, 0, 4827, 454),
        ("core11", 23, 8, 0, 0, 9285),
        ("core12", 7, 4, 0, 0, 173),
        ("core13", 12, 16, 0, 0, 2560),
        ("core14", 11, 8, 0, 0, 432),
        ("core15", 22, 8, 0, 0, 4440),
        ("core16", 7, 7, 0, 0, 128),
        ("core17", 15, 4, 0, 0, 786),
        ("core18", 175, 212, 0, 6555, 745),
        ("core19", 62, 25, 0, 0, 12336),
    ];
    let children_of = |idx: usize| -> Vec<usize> {
        match idx {
            0 => vec![1, 2, 10, 18],
            2 => (3..=9).collect(),
            10 => (11..=17).collect(),
            18 => vec![19],
            _ => Vec::new(),
        }
    };
    // Add leaves-first so child ids exist: process indices in an order
    // where children precede parents (19, 11..17, 3..9, 1, then parents).
    let order: Vec<usize> = {
        let mut order = Vec::new();
        fn visit(
            idx: usize,
            children_of: &dyn Fn(usize) -> Vec<usize>,
            order: &mut Vec<usize>,
            seen: &mut [bool],
        ) {
            if seen[idx] {
                return;
            }
            seen[idx] = true;
            for ch in children_of(idx) {
                visit(ch, children_of, order, seen);
            }
            order.push(idx);
        }
        let mut seen = [false; 20];
        visit(0, &children_of, &mut order, &mut seen);
        order
    };
    let mut soc = Soc::new("p34392");
    let mut ids = [None; 20];
    for idx in order {
        let (name, i, o, b, s, t) = ROWS[idx];
        let children = children_of(idx)
            .into_iter()
            .map(|c| ids[c].expect("children added first"))
            .collect();
        let id = soc
            .add_core(CoreSpec::parent(name, i, o, b, s, t, children))
            .expect("embedded data is valid");
        ids[idx] = Some(id);
    }
    soc
}

/// Modular TDV of p34392 as printed in Table 3's final row.
pub const P34392_TDV_MODULAR: u64 = 28_538_030;

/// One row of the paper's Table 4.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table4Row {
    /// ITC'02 SOC name.
    pub name: &'static str,
    /// Number of module cores (excluding top-level glue).
    pub cores: usize,
    /// Normalized (sample) standard deviation of core pattern counts.
    pub norm_stdev: f64,
    /// Optimistic monolithic TDV (Equation 3), bits.
    pub tdv_opt_mono: u64,
    /// Isolation penalty (Equation 7), bits.
    pub penalty: u64,
    /// Modular-testing benefit (Equation 8 as tabulated), bits.
    pub benefit: u64,
    /// Modular TDV (Equation 6), bits.
    pub tdv_modular: u64,
    /// Penalty as a percentage of the optimistic monolithic TDV
    /// (Table 4 column 5, positive = cost).
    pub penalty_pct: f64,
    /// Benefit percentage (column 6, negative = saving).
    pub benefit_pct: f64,
    /// Modular TDV change vs optimistic monolithic (column 7; negative =
    /// reduction delivered by modular testing).
    pub modular_pct: f64,
}

impl Table4Row {
    /// The TDV reduction ratio `TDV_opt_mono / TDV_modular` (> 1 means
    /// modular wins).
    #[must_use]
    pub fn reduction_ratio(&self) -> f64 {
        self.tdv_opt_mono as f64 / self.tdv_modular as f64
    }
}

/// The paper's Table 4, verbatim.
#[must_use]
pub fn table4() -> &'static [Table4Row; 10] {
    const TABLE: [Table4Row; 10] = [
        Table4Row {
            name: "d695",
            cores: 10,
            norm_stdev: 0.70,
            tdv_opt_mono: 2_987_712,
            penalty: 164_894,
            benefit: 1_935_953,
            tdv_modular: 1_216_653,
            penalty_pct: 5.5,
            benefit_pct: -64.8,
            modular_pct: -59.3,
        },
        Table4Row {
            name: "h953",
            cores: 8,
            norm_stdev: 0.92,
            tdv_opt_mono: 3_176_074,
            penalty: 147_298,
            benefit: 1_121_480,
            tdv_modular: 2_201_892,
            penalty_pct: 4.6,
            benefit_pct: -35.3,
            modular_pct: -30.7,
        },
        Table4Row {
            name: "f2126",
            cores: 4,
            norm_stdev: 0.68,
            tdv_opt_mono: 11_812_624,
            penalty: 400_418,
            benefit: 1_982_992,
            tdv_modular: 10_230_050,
            penalty_pct: 3.4,
            benefit_pct: -16.8,
            modular_pct: -13.4,
        },
        Table4Row {
            name: "g1023",
            cores: 14,
            norm_stdev: 1.05,
            tdv_opt_mono: 828_120,
            penalty: 233_207,
            benefit: 479_124,
            tdv_modular: 582_203,
            penalty_pct: 28.2,
            benefit_pct: -57.9,
            modular_pct: -29.7,
        },
        Table4Row {
            name: "g12710",
            cores: 4,
            norm_stdev: 0.18,
            tdv_opt_mono: 34_140_348,
            penalty: 16_223_802,
            benefit: 3_036_376,
            tdv_modular: 47_327_774,
            penalty_pct: 47.5,
            benefit_pct: -8.9,
            modular_pct: 38.6,
        },
        Table4Row {
            name: "p22810",
            cores: 28,
            norm_stdev: 2.72,
            tdv_opt_mono: 612_736_956,
            penalty: 2_657_286,
            benefit: 601_177_672,
            tdv_modular: 13_616_570,
            penalty_pct: 0.4,
            benefit_pct: -98.1,
            modular_pct: -97.7,
        },
        Table4Row {
            name: "p34392",
            cores: 19,
            norm_stdev: 1.29,
            tdv_opt_mono: 522_738_000,
            penalty: 4_991_278,
            benefit: 499_191_248,
            tdv_modular: 28_538_030,
            penalty_pct: 9.5,
            benefit_pct: -95.5,
            modular_pct: -86.0,
        },
        Table4Row {
            name: "p93791",
            cores: 32,
            norm_stdev: 1.79,
            tdv_opt_mono: 1_101_977_712,
            penalty: 5_451_526,
            benefit: 1_060_719_663,
            tdv_modular: 46_709_575,
            penalty_pct: 0.5,
            benefit_pct: -96.3,
            modular_pct: -95.8,
        },
        Table4Row {
            name: "t512505",
            cores: 31,
            norm_stdev: 0.93,
            tdv_opt_mono: 459_196_200,
            penalty: 4_293_188,
            benefit: 136_793_570,
            tdv_modular: 326_695_818,
            penalty_pct: 0.9,
            benefit_pct: -29.8,
            modular_pct: -28.9,
        },
        Table4Row {
            name: "a586710",
            cores: 7,
            norm_stdev: 1.95,
            tdv_opt_mono: 144_302_301_808,
            penalty: 728_526_992,
            benefit: 144_080_555_088,
            tdv_modular: 950_273_712,
            penalty_pct: 0.5,
            benefit_pct: -99.8,
            modular_pct: -99.3,
        },
    ];
    &TABLE
}

/// Look up a Table 4 row by SOC name.
#[must_use]
pub fn table4_row(name: &str) -> Option<&'static Table4Row> {
    table4().iter().find(|r| r.name == name)
}

/// g12710's published per-core pattern counts (§5.2), the paper's example
/// of insignificant variation.
pub const G12710_PATTERN_COUNTS: [u64; 4] = [852, 1314, 1223, 1223];

/// Pattern counts the paper attributes to its pessimism discussion:
/// measured monolithic vs maximum core pattern counts for SOC1 and SOC2,
/// giving pessimism factors of about 2.5x and 2.1x.
#[must_use]
pub fn pessimism_factors() -> [(&'static str, u64, u64); 2] {
    [
        ("SOC1", SOC1_MEASURED_TMONO, 85),
        ("SOC2", SOC2_MEASURED_TMONO, 452),
    ]
}

/// Parse error shim so downstream code can treat the embedded data as
/// any other data source.
///
/// # Errors
///
/// Never fails for the embedded names; returns [`SocError::UnknownCore`]
/// for names without embedded per-core data (only `p34392`, `SOC1` and
/// `SOC2` have exact tables; the other nine Table 4 SOCs must be
/// reconstructed via `modsoc-core::reconstruct`).
pub fn embedded(name: &str) -> Result<Soc, SocError> {
    match name {
        "p34392" => Ok(p34392()),
        "SOC1" | "soc1" => Ok(soc1()),
        "SOC2" | "soc2" => Ok(soc2()),
        other => Err(SocError::UnknownCore {
            name: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pattern_count_stats;

    #[test]
    fn soc1_matches_table1_interface() {
        let s = soc1();
        s.validate().unwrap();
        assert_eq!(s.core_count(), 6);
        assert_eq!(s.chip_pins(), (51, 10, 0));
        assert_eq!(s.total_scan_cells(), 270);
        assert_eq!(s.max_core_patterns(), 85);
    }

    #[test]
    fn soc2_matches_table2_interface() {
        let s = soc2();
        s.validate().unwrap();
        assert_eq!(s.chip_pins(), (14, 198, 0));
        assert_eq!(s.total_scan_cells(), 1474);
        assert_eq!(s.max_core_patterns(), 452);
    }

    #[test]
    fn p34392_hierarchy() {
        let s = p34392();
        s.validate().unwrap();
        assert_eq!(s.core_count(), 20);
        let top = s.find("core0").unwrap();
        assert_eq!(s.top_level_cores(), vec![top]);
        assert_eq!(s.core(top).children.len(), 4);
        assert_eq!(s.chip_pins(), (32, 27, 114));
        assert_eq!(s.total_scan_cells(), 806 + 8856 + 4827 + 6555);
        assert_eq!(s.max_core_patterns(), 12336);
    }

    #[test]
    fn p34392_nstd_close_to_table4() {
        let st = pattern_count_stats(&p34392());
        assert_eq!(st.n, 19);
        let row = table4_row("p34392").unwrap();
        assert!(
            (st.normalized_stdev() - row.norm_stdev).abs() < 0.06,
            "nstd {} vs paper {}",
            st.normalized_stdev(),
            row.norm_stdev
        );
    }

    #[test]
    fn table4_is_complete_and_consistent() {
        let t = table4();
        assert_eq!(t.len(), 10);
        for row in t {
            // Equation 6 should balance in the printed data. It does for
            // nine rows; p22810 is off by exactly 600,000 in the paper
            // itself (a typo in one of its bit columns — the percentage
            // columns confirm all three printed values), so tolerate a
            // residual of up to 0.2% of the monolithic TDV.
            let lhs = row.tdv_opt_mono as i128 + row.penalty as i128 - row.benefit as i128;
            let residual = (lhs - row.tdv_modular as i128).unsigned_abs();
            assert!(
                residual as f64 <= 0.002 * row.tdv_opt_mono as f64,
                "{}: residual {residual}",
                row.name
            );
            if row.name != "p22810" {
                assert_eq!(lhs, row.tdv_modular as i128, "{}", row.name);
            }
            // The paper computes the modular percentage as the sum of the
            // penalty and benefit percentages; every printed row obeys
            // that identity.
            assert!(
                (row.penalty_pct + row.benefit_pct - row.modular_pct).abs() < 0.11,
                "{}",
                row.name
            );
            // Percentage columns consistent with the bit columns (±0.1pp)
            // — except p34392's penalty, where the paper prints +9.5% for
            // a ratio of 0.95% (misplaced decimal; the bit columns and
            // Table 3 confirm 4,991,278 / 522,738,000).
            let ben = -(row.benefit as f64) / row.tdv_opt_mono as f64 * 100.0;
            assert!((ben - row.benefit_pct).abs() < 0.11, "{}: {ben}", row.name);
            let pen = row.penalty as f64 / row.tdv_opt_mono as f64 * 100.0;
            if row.name == "p34392" {
                assert!(
                    (pen - row.penalty_pct / 10.0).abs() < 0.011,
                    "{}: {pen}",
                    row.name
                );
            } else {
                assert!((pen - row.penalty_pct).abs() < 0.11, "{}: {pen}", row.name);
            }
        }
    }

    #[test]
    fn table4_averages_match_paper() {
        let t = table4();
        let avg = |f: fn(&Table4Row) -> f64| t.iter().map(f).sum::<f64>() / t.len() as f64;
        assert!((avg(|r| r.penalty_pct) - 10.1).abs() < 0.15);
        assert!((avg(|r| r.benefit_pct) + 60.3).abs() < 0.15);
        assert!((avg(|r| r.modular_pct) + 50.2).abs() < 0.15);
    }

    #[test]
    fn g12710_counts_published() {
        let st = crate::stats::SampleStats::of(&G12710_PATTERN_COUNTS);
        assert!((st.normalized_stdev() - 0.18).abs() < 0.01);
    }

    #[test]
    fn embedded_lookup() {
        assert!(embedded("p34392").is_ok());
        assert!(embedded("SOC1").is_ok());
        assert!(embedded("d695").is_err());
    }

    #[test]
    fn pessimism_factors_about_paper_values() {
        let [(_, t1, m1), (_, t2, m2)] = pessimism_factors();
        assert!((t1 as f64 / m1 as f64 - 2.54).abs() < 0.01);
        assert!((t2 as f64 / m2 as f64 - 2.09).abs() < 0.01);
    }
}
