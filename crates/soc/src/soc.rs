//! The SOC container and hierarchy queries.

use std::collections::HashSet;
use std::fmt;

use crate::core::{CoreId, CoreSpec};
use crate::error::SocError;

/// A system-on-chip: cores plus their embedding hierarchy.
///
/// Cores are added bottom-up (children before parents, since a parent's
/// `children` list references existing [`CoreId`]s). Cores not embedded
/// anywhere are *top-level*; their terminals are the chip pins.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Soc {
    name: String,
    cores: Vec<CoreSpec>,
}

impl Soc {
    /// Create an empty SOC.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Soc {
        Soc {
            name: name.into(),
            cores: Vec::new(),
        }
    }

    /// The SOC name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a core; children must already exist.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::DuplicateCore`] or [`SocError::UnknownCore`].
    pub fn add_core(&mut self, spec: CoreSpec) -> Result<CoreId, SocError> {
        if self.cores.iter().any(|c| c.name == spec.name) {
            return Err(SocError::DuplicateCore { name: spec.name });
        }
        for child in &spec.children {
            if child.index() >= self.cores.len() {
                return Err(SocError::UnknownCore {
                    name: child.to_string(),
                });
            }
        }
        self.cores.push(spec);
        Ok(CoreId::from_index(self.cores.len() - 1))
    }

    /// Access a core.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this SOC.
    #[must_use]
    pub fn core(&self, id: CoreId) -> &CoreSpec {
        &self.cores[id.index()]
    }

    /// Number of cores (including any top-level glue core).
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Iterate `(CoreId, &CoreSpec)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (CoreId, &CoreSpec)> {
        self.cores
            .iter()
            .enumerate()
            .map(|(i, c)| (CoreId::from_index(i), c))
    }

    /// Find a core by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<CoreId> {
        self.cores
            .iter()
            .position(|c| c.name == name)
            .map(CoreId::from_index)
    }

    /// Cores not embedded in any parent. Their terminals are chip pins.
    #[must_use]
    pub fn top_level_cores(&self) -> Vec<CoreId> {
        let embedded: HashSet<CoreId> = self
            .cores
            .iter()
            .flat_map(|c| c.children.iter().copied())
            .collect();
        (0..self.cores.len())
            .map(CoreId::from_index)
            .filter(|id| !embedded.contains(id))
            .collect()
    }

    /// Chip-level pin counts `(I, O, B)`: the summed terminals of the
    /// top-level cores.
    #[must_use]
    pub fn chip_pins(&self) -> (u64, u64, u64) {
        // Saturating: corrupted `.soc` files can carry near-`u64::MAX`
        // counts, and aggregate views must not panic on them (the
        // analysis layer flags such cores with its checked variants).
        self.top_level_cores()
            .into_iter()
            .map(|id| self.core(id))
            .fold((0, 0, 0), |(i, o, b), c| {
                (
                    i.saturating_add(c.inputs),
                    o.saturating_add(c.outputs),
                    b.saturating_add(c.bidirs),
                )
            })
    }

    /// Total scan cells over all cores — `S_chip` in Equation 1
    /// (saturating at `u64::MAX` on absurd inputs).
    #[must_use]
    pub fn total_scan_cells(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| c.scan_cells)
            .fold(0u64, u64::saturating_add)
    }

    /// Maximum per-core pattern count — the paper's lower bound on the
    /// monolithic pattern count (Equation 2) and the `T` of Equation 3.
    #[must_use]
    pub fn max_core_patterns(&self) -> u64 {
        self.cores.iter().map(|c| c.patterns).max().unwrap_or(0)
    }

    /// The flattened single-core view of this SOC: one core with the
    /// chip pins and the summed scan cells, tested with `t_mono`
    /// patterns — the "monolithic entity (with isolation logic ripped
    /// out)" of the paper's §3, as a [`CoreSpec`].
    ///
    /// Feeding the result back through the modular TDV equation
    /// reproduces Equation 1 exactly (a handy cross-check used in the
    /// test suite).
    #[must_use]
    pub fn flattened_spec(&self, t_mono: u64) -> CoreSpec {
        let (i, o, b) = self.chip_pins();
        CoreSpec::leaf(
            format!("{}.flat", self.name),
            i,
            o,
            b,
            self.total_scan_cells(),
            t_mono,
        )
    }

    /// Validate the hierarchy: at least one core, every core embedded at
    /// most once, and no cycles.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), SocError> {
        if self.cores.is_empty() {
            return Err(SocError::Empty);
        }
        let mut embed_count = vec![0usize; self.cores.len()];
        for c in &self.cores {
            for child in &c.children {
                if child.index() >= self.cores.len() {
                    return Err(SocError::UnknownCore {
                        name: child.to_string(),
                    });
                }
                embed_count[child.index()] += 1;
            }
        }
        if let Some(i) = embed_count.iter().position(|&k| k > 1) {
            return Err(SocError::MultiplyEmbedded {
                name: self.cores[i].name.clone(),
            });
        }
        // Cycle check: children always have smaller ids than parents when
        // built through `add_core`, but deserialized/hand-built SOCs could
        // violate that, so walk properly.
        let mut state = vec![0u8; self.cores.len()]; // 0 unvisited, 1 on stack, 2 done
        for start in 0..self.cores.len() {
            if state[start] != 0 {
                continue;
            }
            // Iterative DFS.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(frame) = stack.last_mut() {
                let node = frame.0;
                let children = &self.cores[node].children;
                if frame.1 < children.len() {
                    let ch = children[frame.1].index();
                    frame.1 += 1;
                    match state[ch] {
                        0 => {
                            state[ch] = 1;
                            stack.push((ch, 0));
                        }
                        1 => {
                            return Err(SocError::CyclicHierarchy {
                                name: self.cores[ch].name.clone(),
                            });
                        }
                        _ => {}
                    }
                } else {
                    state[node] = 2;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Soc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (i, o, b) = self.chip_pins();
        write!(
            f,
            "{}: {} cores, chip I={i} O={o} B={b}, S_total={}",
            self.name,
            self.core_count(),
            self.total_scan_cells()
        )
    }
}

impl<'a> IntoIterator for &'a Soc {
    type Item = (CoreId, &'a CoreSpec);
    type IntoIter = Box<dyn Iterator<Item = (CoreId, &'a CoreSpec)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Soc {
        let mut s = Soc::new("s");
        let a = s.add_core(CoreSpec::leaf("a", 10, 5, 0, 100, 50)).unwrap();
        let b = s.add_core(CoreSpec::leaf("b", 4, 4, 1, 20, 200)).unwrap();
        s.add_core(CoreSpec::parent("top", 30, 12, 0, 0, 3, vec![a, b]))
            .unwrap();
        s
    }

    #[test]
    fn hierarchy_queries() {
        let s = sample();
        s.validate().unwrap();
        assert_eq!(s.core_count(), 3);
        assert_eq!(s.top_level_cores(), vec![CoreId::from_index(2)]);
        assert_eq!(s.chip_pins(), (30, 12, 0));
        assert_eq!(s.total_scan_cells(), 120);
        assert_eq!(s.max_core_patterns(), 200);
        assert_eq!(s.find("b"), Some(CoreId::from_index(1)));
        assert_eq!(s.find("zz"), None);
    }

    #[test]
    fn multiple_top_level_cores_sum_pins() {
        let mut s = Soc::new("flat");
        s.add_core(CoreSpec::leaf("a", 3, 1, 0, 5, 10)).unwrap();
        s.add_core(CoreSpec::leaf("b", 4, 2, 1, 5, 20)).unwrap();
        assert_eq!(s.chip_pins(), (7, 3, 1));
        assert_eq!(s.top_level_cores().len(), 2);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut s = Soc::new("d");
        s.add_core(CoreSpec::leaf("a", 1, 1, 0, 0, 1)).unwrap();
        let err = s.add_core(CoreSpec::leaf("a", 1, 1, 0, 0, 1)).unwrap_err();
        assert!(matches!(err, SocError::DuplicateCore { .. }));
    }

    #[test]
    fn unknown_child_rejected() {
        let mut s = Soc::new("u");
        let err = s
            .add_core(CoreSpec::parent(
                "p",
                1,
                1,
                0,
                0,
                1,
                vec![CoreId::from_index(7)],
            ))
            .unwrap_err();
        assert!(matches!(err, SocError::UnknownCore { .. }));
    }

    #[test]
    fn double_embedding_rejected() {
        let mut s = Soc::new("m");
        let a = s.add_core(CoreSpec::leaf("a", 1, 1, 0, 0, 1)).unwrap();
        s.add_core(CoreSpec::parent("p1", 1, 1, 0, 0, 1, vec![a]))
            .unwrap();
        s.add_core(CoreSpec::parent("p2", 1, 1, 0, 0, 1, vec![a]))
            .unwrap();
        assert!(matches!(
            s.validate(),
            Err(SocError::MultiplyEmbedded { .. })
        ));
    }

    #[test]
    fn empty_soc_invalid() {
        assert!(matches!(Soc::new("e").validate(), Err(SocError::Empty)));
    }

    #[test]
    fn display_summarizes() {
        let s = sample();
        assert!(s.to_string().contains("3 cores"));
    }

    #[test]
    fn flattened_spec_sums_the_chip() {
        let s = sample();
        let flat = s.flattened_spec(500);
        assert_eq!(flat.inputs, 30);
        assert_eq!(flat.outputs, 12);
        assert_eq!(flat.scan_cells, 120);
        assert_eq!(flat.patterns, 500);
        assert!(!flat.is_hierarchical());
    }
}
