//! A `.soc`-style text format.
//!
//! The real ITC'02 benchmark files use a richer format (per-module scan
//! chains, multiple test sets, TAM hookup); this module implements the
//! subset the TDV analysis consumes, in a line-oriented form:
//!
//! ```text
//! # comment
//! soc p34392
//! core core3 i=37 o=25 b=0 s=0 t=3108
//! core core2 i=165 o=263 b=0 s=8856 t=514 children=core3
//! ```
//!
//! Children may be listed before or after their definition; the file is
//! resolved in two phases. Cores are instantiated in an order where
//! children precede parents, as [`crate::Soc::add_core`] requires.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::core::{CoreId, CoreSpec};
use crate::error::SocError;
use crate::soc::Soc;

/// Parse a `.soc`-style document.
///
/// # Errors
///
/// Returns [`SocError::ParseSoc`] with a line number for syntax problems,
/// and hierarchy errors ([`SocError::UnknownCore`],
/// [`SocError::CyclicHierarchy`], …) for structural ones.
///
/// # Example
///
/// ```
/// let soc = modsoc_soc::format::parse_soc("
/// soc demo
/// core a i=4 o=2 b=0 s=16 t=40
/// core top i=8 o=4 b=0 s=0 t=2 children=a
/// ")?;
/// assert_eq!(soc.core_count(), 2);
/// assert_eq!(soc.name(), "demo");
/// # Ok::<(), modsoc_soc::SocError>(())
/// ```
pub fn parse_soc(source: &str) -> Result<Soc, SocError> {
    struct Line {
        name: String,
        i: u64,
        o: u64,
        b: u64,
        s: u64,
        t: u64,
        children: Vec<String>,
        lineno: usize,
    }
    let mut soc_name: Option<String> = None;
    let mut lines: Vec<Line> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut tokens = text.split_whitespace();
        match tokens.next() {
            Some("soc") => {
                let name = tokens.next().ok_or(SocError::ParseSoc {
                    line: lineno,
                    message: "expected a name after `soc`".into(),
                })?;
                if soc_name.is_some() {
                    return Err(SocError::ParseSoc {
                        line: lineno,
                        message: "duplicate `soc` line".into(),
                    });
                }
                soc_name = Some(name.to_string());
            }
            Some("core") => {
                let name = tokens
                    .next()
                    .ok_or(SocError::ParseSoc {
                        line: lineno,
                        message: "expected a name after `core`".into(),
                    })?
                    .to_string();
                let mut fields: HashMap<&str, &str> = HashMap::new();
                for tok in tokens {
                    let (k, v) = tok.split_once('=').ok_or_else(|| SocError::ParseSoc {
                        line: lineno,
                        message: format!("expected key=value, got `{tok}`"),
                    })?;
                    fields.insert(k, v);
                }
                let get_num = |key: &str| -> Result<u64, SocError> {
                    match fields.get(key) {
                        None => Ok(0),
                        Some(v) => v.parse().map_err(|_| SocError::ParseSoc {
                            line: lineno,
                            message: format!("field `{key}` is not a number: `{v}`"),
                        }),
                    }
                };
                let children = fields
                    .get("children")
                    .map(|v| v.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
                for key in fields.keys() {
                    if !matches!(*key, "i" | "o" | "b" | "s" | "t" | "children") {
                        return Err(SocError::ParseSoc {
                            line: lineno,
                            message: format!("unknown field `{key}`"),
                        });
                    }
                }
                lines.push(Line {
                    name,
                    i: get_num("i")?,
                    o: get_num("o")?,
                    b: get_num("b")?,
                    s: get_num("s")?,
                    t: get_num("t")?,
                    children,
                    lineno,
                });
            }
            Some(other) => {
                return Err(SocError::ParseSoc {
                    line: lineno,
                    message: format!("unrecognized directive `{other}`"),
                });
            }
            None => unreachable!("empty lines filtered"),
        }
    }

    if soc_name.is_none() && lines.is_empty() {
        return Err(SocError::EmptySource);
    }

    // Order: children before parents (Kahn over the child edges).
    let index: HashMap<&str, usize> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| (l.name.as_str(), i))
        .collect();
    if index.len() != lines.len() {
        // find the dup for a good message
        let mut seen = HashMap::new();
        for l in &lines {
            if seen.insert(l.name.as_str(), l.lineno).is_some() {
                return Err(SocError::DuplicateCore {
                    name: l.name.clone(),
                });
            }
        }
    }
    let mut indegree = vec![0usize; lines.len()];
    let mut parents_of: Vec<Vec<usize>> = vec![Vec::new(); lines.len()];
    for (pi, l) in lines.iter().enumerate() {
        for ch in &l.children {
            let ci = *index.get(ch.as_str()).ok_or_else(|| SocError::ParseSoc {
                line: l.lineno,
                message: format!("child `{ch}` is never defined"),
            })?;
            parents_of[ci].push(pi);
            indegree[pi] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..lines.len()).filter(|&i| indegree[i] == 0).collect();
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &p in &parents_of[v] {
            indegree[p] -= 1;
            if indegree[p] == 0 {
                queue.push(p);
            }
        }
    }
    if queue.len() != lines.len() {
        let stuck = indegree.iter().position(|&d| d > 0).expect("cycle member");
        return Err(SocError::CyclicHierarchy {
            name: lines[stuck].name.clone(),
        });
    }

    let mut soc = Soc::new(soc_name.unwrap_or_else(|| "unnamed".to_string()));
    let mut ids: HashMap<&str, CoreId> = HashMap::new();
    for &li in &queue {
        let l = &lines[li];
        let children: Vec<CoreId> = l.children.iter().map(|ch| ids[ch.as_str()]).collect();
        let id = soc.add_core(CoreSpec::parent(
            l.name.clone(),
            l.i,
            l.o,
            l.b,
            l.s,
            l.t,
            children,
        ))?;
        ids.insert(l.name.as_str(), id);
    }
    soc.validate()?;
    Ok(soc)
}

/// Serialize a SOC to the `.soc`-style text form. Round-trips with
/// [`parse_soc`] (up to core ordering, which is normalized to
/// children-first).
#[must_use]
pub fn write_soc(soc: &Soc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "soc {}", soc.name());
    for (_, c) in soc.iter() {
        let _ = write!(
            out,
            "core {} i={} o={} b={} s={} t={}",
            c.name, c.inputs, c.outputs, c.bidirs, c.scan_cells, c.patterns
        );
        if !c.children.is_empty() {
            let names: Vec<&str> = c
                .children
                .iter()
                .map(|id| soc.core(*id).name.as_str())
                .collect();
            let _ = write!(out, " children={}", names.join(","));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# sample soc
soc demo
core top i=8 o=4 b=1 s=0 t=2 children=a,b
core a i=4 o=2 b=0 s=16 t=40
core b i=2 o=2 b=0 s=8 t=90
";

    #[test]
    fn parses_forward_children() {
        let soc = parse_soc(SAMPLE).unwrap();
        assert_eq!(soc.name(), "demo");
        assert_eq!(soc.core_count(), 3);
        let top = soc.find("top").unwrap();
        assert_eq!(soc.core(top).children.len(), 2);
        assert_eq!(soc.top_level_cores(), vec![top]);
        assert_eq!(soc.chip_pins(), (8, 4, 1));
    }

    #[test]
    fn round_trip() {
        let s1 = parse_soc(SAMPLE).unwrap();
        let text = write_soc(&s1);
        let s2 = parse_soc(&text).unwrap();
        assert_eq!(s1.core_count(), s2.core_count());
        for (_, c) in s1.iter() {
            let id2 = s2.find(&c.name).expect("core preserved");
            let c2 = s2.core(id2);
            assert_eq!(
                (c.inputs, c.outputs, c.bidirs, c.scan_cells, c.patterns),
                (c2.inputs, c2.outputs, c2.bidirs, c2.scan_cells, c2.patterns)
            );
            let ch1: Vec<&str> = c
                .children
                .iter()
                .map(|i| s1.core(*i).name.as_str())
                .collect();
            let ch2: Vec<&str> = c2
                .children
                .iter()
                .map(|i| s2.core(*i).name.as_str())
                .collect();
            assert_eq!(ch1, ch2);
        }
    }

    #[test]
    fn missing_fields_default_to_zero() {
        let soc = parse_soc("soc x\ncore a t=5\n").unwrap();
        let a = soc.core(soc.find("a").unwrap());
        assert_eq!((a.inputs, a.scan_cells, a.patterns), (0, 0, 5));
    }

    #[test]
    fn bad_number_rejected() {
        let err = parse_soc("soc x\ncore a i=zz\n").unwrap_err();
        assert!(matches!(err, SocError::ParseSoc { line: 2, .. }));
    }

    #[test]
    fn unknown_field_rejected() {
        let err = parse_soc("soc x\ncore a q=1\n").unwrap_err();
        assert!(matches!(err, SocError::ParseSoc { .. }));
    }

    #[test]
    fn unknown_child_rejected() {
        let err = parse_soc("soc x\ncore a children=zz\n").unwrap_err();
        assert!(matches!(err, SocError::ParseSoc { .. }));
    }

    #[test]
    fn cyclic_children_rejected() {
        let err = parse_soc("soc x\ncore a children=b\ncore b children=a\n").unwrap_err();
        assert!(matches!(err, SocError::CyclicHierarchy { .. }));
    }

    #[test]
    fn duplicate_core_rejected() {
        let err = parse_soc("soc x\ncore a\ncore a\n").unwrap_err();
        assert!(matches!(err, SocError::DuplicateCore { .. }));
    }

    #[test]
    fn p34392_round_trips_through_text() {
        // The embedded hierarchical benchmark must survive the text
        // format with its full hierarchy and every parameter intact.
        let original = crate::itc02::p34392();
        let text = write_soc(&original);
        let back = parse_soc(&text).unwrap();
        assert_eq!(back.core_count(), 20);
        assert_eq!(back.chip_pins(), original.chip_pins());
        assert_eq!(back.total_scan_cells(), original.total_scan_cells());
        assert_eq!(back.max_core_patterns(), original.max_core_patterns());
        let top = back.find("core0").unwrap();
        assert_eq!(back.core(top).children.len(), 4);
        assert_eq!(back.top_level_cores(), vec![top]);
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse_soc("module x\n").unwrap_err();
        assert!(matches!(err, SocError::ParseSoc { line: 1, .. }));
    }

    #[test]
    fn empty_source_rejected() {
        for src in ["", "\n", "# comment only\n\n"] {
            let err = parse_soc(src).unwrap_err();
            assert!(matches!(err, SocError::EmptySource), "{src:?}");
        }
    }

    #[test]
    fn soc_line_without_cores_is_empty() {
        // A `soc` header with no cores is structurally empty, which is a
        // different diagnostic from an entirely empty source.
        let err = parse_soc("soc lonely\n").unwrap_err();
        assert!(matches!(err, SocError::Empty));
    }
}
