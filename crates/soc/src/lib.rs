//! SOC data model for modular test analysis.
//!
//! A [`Soc`] is a set of [`CoreSpec`]s — each carrying the interface and
//! pattern-count parameters the DATE 2008 paper's TDV equations consume
//! (inputs `I`, outputs `O`, bidirectionals `B`, scan cells `S`, test
//! patterns `T`) — plus the embedding hierarchy (which cores are children
//! of which). The crate also ships:
//!
//! * [`itc02`] — the benchmark data the paper evaluates on: the exact
//!   p34392 core table (Table 3), the SOC1/SOC2 tables (Tables 1–2), and
//!   the paper-reported Table 4 aggregates for all ten ITC'02 SOCs
//!   (the analytic reconstruction of the nine SOCs whose `.soc` files are
//!   not available here lives in `modsoc-core::reconstruct`, next to the
//!   TDV equations it inverts);
//! * [`mod@format`] — a `.soc`-style text format so users with real benchmark
//!   data can load their own SOCs;
//! * [`stats`] — pattern-count statistics (the normalized standard
//!   deviation of Table 4, column 3).
//!
//! # Example
//!
//! ```
//! use modsoc_soc::{CoreSpec, Soc};
//!
//! # fn main() -> Result<(), modsoc_soc::SocError> {
//! let mut soc = Soc::new("demo");
//! let a = soc.add_core(CoreSpec::leaf("a", 16, 8, 0, 120, 90))?;
//! let b = soc.add_core(CoreSpec::leaf("b", 8, 8, 0, 40, 300))?;
//! soc.add_core(CoreSpec::parent("top", 32, 16, 0, 0, 4, vec![a, b]))?;
//! soc.validate()?;
//! assert_eq!(soc.max_core_patterns(), 300);
//! assert_eq!(soc.total_scan_cells(), 160);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod error;
pub mod format;
pub mod itc02;
pub mod soc;
pub mod stats;

pub use crate::core::{CoreId, CoreSpec};
pub use crate::error::SocError;
pub use crate::soc::Soc;
