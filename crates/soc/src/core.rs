//! Core descriptors.

use std::fmt;

/// Identifier of a core within a [`crate::Soc`], assigned in insertion
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreId(pub(crate) u32);

impl CoreId {
    /// The dense index of this core.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index (for tables indexed by
    /// [`CoreId::index`]).
    #[must_use]
    pub fn from_index(i: usize) -> CoreId {
        CoreId(u32::try_from(i).expect("core index fits in u32"))
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// The test-relevant description of one core: exactly the parameters the
/// paper's Equations 1–8 consume.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreSpec {
    /// Core name (unique within its SOC).
    pub name: String,
    /// Functional input terminals `I`.
    pub inputs: u64,
    /// Functional output terminals `O`.
    pub outputs: u64,
    /// Bidirectional terminals `B` (each needs a stimulus and a response
    /// bit per pattern).
    pub bidirs: u64,
    /// Internal scan cells `S`.
    pub scan_cells: u64,
    /// Test pattern count `T` for this core's stand-alone test.
    pub patterns: u64,
    /// Direct children (cores embedded inside this one); their wrappers
    /// go to ExTest while this core is tested.
    pub children: Vec<CoreId>,
}

impl CoreSpec {
    /// A leaf core (no embedded children).
    #[must_use]
    pub fn leaf(
        name: impl Into<String>,
        inputs: u64,
        outputs: u64,
        bidirs: u64,
        scan_cells: u64,
        patterns: u64,
    ) -> CoreSpec {
        CoreSpec {
            name: name.into(),
            inputs,
            outputs,
            bidirs,
            scan_cells,
            patterns,
            children: Vec::new(),
        }
    }

    /// A hierarchical core embedding `children`.
    #[must_use]
    pub fn parent(
        name: impl Into<String>,
        inputs: u64,
        outputs: u64,
        bidirs: u64,
        scan_cells: u64,
        patterns: u64,
        children: Vec<CoreId>,
    ) -> CoreSpec {
        CoreSpec {
            name: name.into(),
            inputs,
            outputs,
            bidirs,
            scan_cells,
            patterns,
            children,
        }
    }

    /// Terminal count `I + O + 2B` — this core's contribution to a
    /// *parent's* `ISOCOST` when wrapped in ExTest, and part of its own
    /// when tested.
    #[must_use]
    pub fn terminal_count(&self) -> u64 {
        self.inputs + self.outputs + 2 * self.bidirs
    }

    /// Whether this core embeds others.
    #[must_use]
    pub fn is_hierarchical(&self) -> bool {
        !self.children.is_empty()
    }
}

impl fmt::Display for CoreSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: I={} O={} B={} S={} T={}",
            self.name, self.inputs, self.outputs, self.bidirs, self.scan_cells, self.patterns
        )?;
        if self.is_hierarchical() {
            write!(f, " ({} children)", self.children.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_parent() {
        let l = CoreSpec::leaf("l", 3, 4, 2, 10, 7);
        assert_eq!(l.terminal_count(), 3 + 4 + 4);
        assert!(!l.is_hierarchical());
        let p = CoreSpec::parent("p", 1, 1, 0, 0, 1, vec![CoreId::from_index(0)]);
        assert!(p.is_hierarchical());
        assert!(p.to_string().contains("children"));
    }

    #[test]
    fn core_id_round_trip() {
        let id = CoreId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "core5");
    }
}
