//! Error type for the SOC data model.

use std::fmt;

/// Errors from SOC construction, validation, and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SocError {
    /// A core name was used twice.
    DuplicateCore {
        /// The offending name.
        name: String,
    },
    /// A child reference points at a core that does not exist.
    UnknownCore {
        /// The missing name or index rendering.
        name: String,
    },
    /// A core is embedded in more than one parent.
    MultiplyEmbedded {
        /// The doubly-embedded core.
        name: String,
    },
    /// The embedding hierarchy contains a cycle.
    CyclicHierarchy {
        /// A core on the cycle.
        name: String,
    },
    /// The SOC has no cores.
    Empty,
    /// The source contained no directives at all (empty file, or only
    /// comments and blank lines).
    EmptySource,
    /// A `.soc`-style file could not be parsed.
    ParseSoc {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The reconstruction targets are infeasible (e.g. benefit smaller
    /// than the chip-pin term, or a normalized standard deviation beyond
    /// what the core count permits).
    Infeasible {
        /// Explanation of the violated constraint.
        message: String,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::DuplicateCore { name } => write!(f, "duplicate core name `{name}`"),
            SocError::UnknownCore { name } => write!(f, "unknown core `{name}`"),
            SocError::MultiplyEmbedded { name } => {
                write!(f, "core `{name}` is embedded in more than one parent")
            }
            SocError::CyclicHierarchy { name } => {
                write!(f, "embedding hierarchy is cyclic at core `{name}`")
            }
            SocError::Empty => write!(f, "soc has no cores"),
            SocError::EmptySource => write!(f, "source contains no soc directives"),
            SocError::ParseSoc { line, message } => {
                write!(f, "soc parse error at line {line}: {message}")
            }
            SocError::Infeasible { message } => {
                write!(f, "reconstruction targets are infeasible: {message}")
            }
        }
    }
}

impl std::error::Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        for e in [
            SocError::DuplicateCore { name: "x".into() },
            SocError::UnknownCore { name: "y".into() },
            SocError::MultiplyEmbedded { name: "z".into() },
            SocError::CyclicHierarchy { name: "w".into() },
            SocError::Empty,
            SocError::EmptySource,
            SocError::ParseSoc {
                line: 2,
                message: "bad".into(),
            },
            SocError::Infeasible {
                message: "benefit too small".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SocError>();
    }
}
