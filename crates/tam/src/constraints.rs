//! Power-constrained rectangle packing.
//!
//! The second half of the co-optimization family (arXiv 1008.4446):
//! parallel core tests multiply scan switching activity, so a realistic
//! strip packing must keep the *concurrent power sum* under a chip-wide
//! ceiling at every instant. This module runs the same diagonal-length
//! packer as [`crate::binpack`] with that extra feasibility term — a
//! placement whose interval would push the summed ratings of all
//! simultaneously-running tests over the ceiling is rejected, and the
//! core slides to a later event point (or a narrower rectangle) instead.
//!
//! Power ratings ride on [`PowerCore`] from [`crate::power`]. For cores
//! that carry no measured rating, [`scan_power_model`] derives one from
//! the wrapper view: switching power during scan shift scales with the
//! number of cells toggling per cycle, so the rating is the core's total
//! wrapper cell count. The units are arbitrary but consistent — ceilings
//! are expressed on the same scale.

use modsoc_metrics::{MetricsSink, NullSink};

use crate::binpack::{pack_impl, PackedSchedule};
use crate::error::TamError;
use crate::power::PowerCore;
use crate::wrapper::WrapperCore;

/// Default power model: scan switching activity scales with the cells a
/// wrapper moves per pattern, so a core's rating is its total cell count
/// (`I + O + Σ scan`).
#[must_use]
pub fn scan_power_model(core: &WrapperCore) -> u64 {
    core.total_cells() as u64
}

/// Pair every core with its [`scan_power_model`] rating.
#[must_use]
pub fn power_cores(cores: &[WrapperCore]) -> Vec<PowerCore> {
    cores
        .iter()
        .map(|c| PowerCore::new(c.clone(), scan_power_model(c)))
        .collect()
}

/// Pack under both a TAM width budget and a concurrent-power ceiling.
///
/// # Errors
///
/// Returns [`TamError::ZeroWidth`] / [`TamError::NoCores`], or
/// [`TamError::Infeasible`] naming the first core (in placement order)
/// for which no wrapper configuration fits — in practice a core whose
/// own rating already exceeds the ceiling, since an empty strip always
/// has the wires.
pub fn pack_constrained(
    cores: &[PowerCore],
    width: usize,
    ceiling: u64,
) -> Result<PackedSchedule, TamError> {
    pack_constrained_metered(cores, width, ceiling, &NullSink)
}

/// [`pack_constrained`] with counters reported through `sink`
/// (adds `tam_pack_power_rejects` to the unconstrained set).
///
/// # Errors
///
/// As [`pack_constrained`].
pub fn pack_constrained_metered(
    cores: &[PowerCore],
    width: usize,
    ceiling: u64,
    sink: &dyn MetricsSink,
) -> Result<PackedSchedule, TamError> {
    let wrappers: Vec<WrapperCore> = cores.iter().map(|c| c.core.clone()).collect();
    let powers: Vec<u64> = cores.iter().map(|c| c.test_power).collect();
    pack_impl(&wrappers, Some(&powers), width, ceiling, sink)
}

/// Peak concurrent power of a packed schedule.
#[must_use]
pub fn packed_peak_power(schedule: &PackedSchedule, cores: &[PowerCore]) -> u64 {
    crate::power::peak_power(&schedule.to_schedule(), cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{soc_test_time, TamArchitecture};
    use crate::binpack::pack;
    use modsoc_metrics::{Counter, RecordingSink};

    fn cores() -> Vec<PowerCore> {
        vec![
            PowerCore::new(
                WrapperCore::new("a", 8, 8, vec![64, 64]).with_patterns(100),
                40,
            ),
            PowerCore::new(WrapperCore::new("b", 4, 4, vec![32]).with_patterns(300), 30),
            PowerCore::new(
                WrapperCore::new("c", 16, 2, vec![128, 16]).with_patterns(50),
                50,
            ),
            PowerCore::new(
                WrapperCore::new("d", 2, 6, vec![48, 48]).with_patterns(80),
                25,
            ),
        ]
    }

    #[test]
    fn ceiling_is_never_exceeded() {
        let cs = cores();
        for ceiling in [50u64, 70, 95, 1_000] {
            let s = pack_constrained(&cs, 8, ceiling).unwrap();
            assert_eq!(s.placements.len(), cs.len());
            assert!(
                packed_peak_power(&s, &cs) <= ceiling,
                "ceiling {ceiling} exceeded: {}",
                packed_peak_power(&s, &cs)
            );
        }
    }

    #[test]
    fn tighter_ceiling_never_packs_faster() {
        let cs = cores();
        let loose = pack_constrained(&cs, 8, 1_000).unwrap();
        let tight = pack_constrained(&cs, 8, 55).unwrap();
        assert!(tight.makespan() >= loose.makespan());
        // And even the tight packing stays within the serial bound.
        let wrappers: Vec<WrapperCore> = cs.iter().map(|c| c.core.clone()).collect();
        let serial = soc_test_time(TamArchitecture::Multiplexing, &wrappers, 8)
            .unwrap()
            .total_time;
        assert!(tight.makespan() <= serial);
    }

    #[test]
    fn unconstrained_ceiling_matches_plain_pack() {
        let cs = cores();
        let wrappers: Vec<WrapperCore> = cs.iter().map(|c| c.core.clone()).collect();
        let constrained = pack_constrained(&cs, 8, u64::MAX).unwrap();
        let plain = pack(&wrappers, 8).unwrap();
        assert_eq!(constrained, plain);
    }

    #[test]
    fn core_over_ceiling_is_infeasible_with_details() {
        let cs = cores();
        let err = pack_constrained(&cs, 8, 45).unwrap_err();
        match err {
            TamError::Infeasible {
                core,
                width,
                ceiling,
            } => {
                assert_eq!(core, "c", "core `c` draws 50 > 45");
                assert_eq!(width, 8);
                assert_eq!(ceiling, 45);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn power_rejects_are_counted() {
        let cs = cores();
        let sink = RecordingSink::new();
        let s = pack_constrained_metered(&cs, 8, 55, &sink).unwrap();
        assert_eq!(s, pack_constrained(&cs, 8, 55).unwrap());
        // A 55 ceiling forces serialization of the 40/30/50 cores, so
        // the packer must have bounced off the power check.
        assert!(sink.snapshot().counter(Counter::TamPackPowerRejects) > 0);
    }

    #[test]
    fn scan_power_model_counts_cells() {
        let c = WrapperCore::new("x", 3, 2, vec![10, 5]);
        assert_eq!(scan_power_model(&c), 20);
        let pcs = power_cores(&[c]);
        assert_eq!(pcs[0].test_power, 20);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(pack_constrained(&[], 4, 100).is_err());
        assert!(pack_constrained(&cores(), 0, 100).is_err());
    }
}
