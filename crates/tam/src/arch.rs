//! TAM architectures and SOC test time.
//!
//! The three classic architectures from Aerts & Marinissen (the paper's
//! reference 12):
//!
//! * **Multiplexing** — all cores share the full TAM width; tests run
//!   one after another.
//! * **Distribution** — the TAM width is partitioned over cores; all
//!   tests run in parallel and the slowest core dominates.
//! * **Daisychain** — one TAM threads through every core; with bypass
//!   flip-flops, shifting through `k` inactive cores costs one cycle
//!   each per scan operation.

use crate::error::TamError;
use crate::wrapper::{design_wrapper, WrapperCore};

/// Which TAM architecture to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TamArchitecture {
    /// All cores on one full-width TAM, tested sequentially.
    Multiplexing,
    /// One full-width TAM threaded through all cores with 1-bit
    /// bypasses.
    Daisychain,
    /// Width partitioned over cores; all tested in parallel.
    Distribution,
}

/// Per-core outcome of an SOC-level TAM evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreTamAssignment {
    /// Core name.
    pub name: String,
    /// TAM wires given to this core.
    pub width: usize,
    /// Core test time in cycles (excluding bypass overhead).
    pub time: u64,
}

/// SOC-level TAM evaluation result.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TamEvaluation {
    /// The architecture evaluated.
    pub architecture: TamArchitecture,
    /// Total TAM width used.
    pub width: usize,
    /// Per-core assignments.
    pub cores: Vec<CoreTamAssignment>,
    /// SOC test completion time in cycles.
    pub total_time: u64,
}

/// Evaluate an architecture over a set of cores at TAM width `width`.
///
/// # Errors
///
/// Returns [`TamError::ZeroWidth`] or [`TamError::NoCores`]; for
/// [`TamArchitecture::Distribution`],
/// [`TamError::WidthBelowCoreCount`] when each core cannot get a wire.
pub fn soc_test_time(
    arch: TamArchitecture,
    cores: &[WrapperCore],
    width: usize,
) -> Result<TamEvaluation, TamError> {
    if width == 0 {
        return Err(TamError::ZeroWidth);
    }
    if cores.is_empty() {
        return Err(TamError::NoCores);
    }
    match arch {
        TamArchitecture::Multiplexing => {
            let assignments: Vec<CoreTamAssignment> = cores
                .iter()
                .map(|c| CoreTamAssignment {
                    name: c.name.clone(),
                    width,
                    time: design_wrapper(c, width).test_time_self(),
                })
                .collect();
            let total_time = assignments.iter().map(|a| a.time).sum();
            Ok(TamEvaluation {
                architecture: arch,
                width,
                cores: assignments,
                total_time,
            })
        }
        TamArchitecture::Daisychain => {
            // Sequential like multiplexing, plus one bypass cycle per
            // inactive core per scan shift (each of the other cores'
            // bypass flip-flops sits on the path).
            let times: Vec<u64> = cores
                .iter()
                .map(|c| design_wrapper(c, width).test_time_self())
                .collect();
            let bypass_per_core = cores.len() as u64 - 1;
            let assignments: Vec<CoreTamAssignment> = cores
                .iter()
                .zip(&times)
                .map(|(c, &t)| CoreTamAssignment {
                    name: c.name.clone(),
                    width,
                    time: t + bypass_per_core * c.patterns,
                })
                .collect();
            let total_time = assignments.iter().map(|a| a.time).sum();
            Ok(TamEvaluation {
                architecture: arch,
                width,
                cores: assignments,
                total_time,
            })
        }
        TamArchitecture::Distribution => {
            if width < cores.len() {
                return Err(TamError::WidthBelowCoreCount {
                    width,
                    cores: cores.len(),
                });
            }
            // Start with one wire each; repeatedly give a wire to the
            // currently slowest core (greedy makespan reduction).
            let mut widths = vec![1usize; cores.len()];
            let time_of = |c: &WrapperCore, w: usize| design_wrapper(c, w).test_time_self();
            let mut times: Vec<u64> = cores
                .iter()
                .zip(&widths)
                .map(|(c, &w)| time_of(c, w))
                .collect();
            for _ in 0..(width - cores.len()) {
                let slowest = (0..cores.len())
                    .max_by_key(|&i| times[i])
                    .expect("nonempty");
                widths[slowest] += 1;
                times[slowest] = time_of(&cores[slowest], widths[slowest]);
            }
            let assignments: Vec<CoreTamAssignment> = cores
                .iter()
                .zip(widths.iter().zip(&times))
                .map(|(c, (&w, &t))| CoreTamAssignment {
                    name: c.name.clone(),
                    width: w,
                    time: t,
                })
                .collect();
            let total_time = times.iter().copied().max().unwrap_or(0);
            Ok(TamEvaluation {
                architecture: arch,
                width,
                cores: assignments,
                total_time,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores() -> Vec<WrapperCore> {
        vec![
            WrapperCore::new("a", 8, 8, vec![64, 64]).with_patterns(100),
            WrapperCore::new("b", 4, 4, vec![32]).with_patterns(300),
            WrapperCore::new("c", 16, 2, vec![128, 16, 16]).with_patterns(50),
        ]
    }

    #[test]
    fn multiplexing_sums_times() {
        let e = soc_test_time(TamArchitecture::Multiplexing, &cores(), 4).unwrap();
        let sum: u64 = e.cores.iter().map(|c| c.time).sum();
        assert_eq!(e.total_time, sum);
        assert!(e.cores.iter().all(|c| c.width == 4));
    }

    #[test]
    fn distribution_is_makespan() {
        let e = soc_test_time(TamArchitecture::Distribution, &cores(), 8).unwrap();
        let max = e.cores.iter().map(|c| c.time).max().unwrap();
        assert_eq!(e.total_time, max);
        let widths: usize = e.cores.iter().map(|c| c.width).sum();
        assert_eq!(widths, 8);
        assert!(e.cores.iter().all(|c| c.width >= 1));
    }

    #[test]
    fn daisychain_slower_than_multiplexing() {
        let m = soc_test_time(TamArchitecture::Multiplexing, &cores(), 4).unwrap();
        let d = soc_test_time(TamArchitecture::Daisychain, &cores(), 4).unwrap();
        assert!(d.total_time > m.total_time);
    }

    #[test]
    fn wider_tam_never_slower() {
        for arch in [TamArchitecture::Multiplexing, TamArchitecture::Distribution] {
            let mut last = u64::MAX;
            for w in 3..10 {
                let t = soc_test_time(arch, &cores(), w).unwrap().total_time;
                assert!(t <= last, "{arch:?} width {w}");
                last = t;
            }
        }
    }

    #[test]
    fn distribution_beats_multiplexing_at_same_width() {
        // With enough width to parallelize, distribution wins on this
        // workload.
        let m = soc_test_time(TamArchitecture::Multiplexing, &cores(), 9).unwrap();
        let d = soc_test_time(TamArchitecture::Distribution, &cores(), 9).unwrap();
        assert!(d.total_time < m.total_time);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            soc_test_time(TamArchitecture::Multiplexing, &cores(), 0),
            Err(TamError::ZeroWidth)
        ));
        assert!(matches!(
            soc_test_time(TamArchitecture::Multiplexing, &[], 4),
            Err(TamError::NoCores)
        ));
        assert!(matches!(
            soc_test_time(TamArchitecture::Distribution, &cores(), 2),
            Err(TamError::WidthBelowCoreCount { .. })
        ));
    }
}
