//! IEEE 1500 wrapper chain design (best-fit-decreasing balancing).
//!
//! A wrapped core exposes `w` *wrapper chains* to the TAM. Each chain
//! concatenates wrapper input cells, internal scan chains, and wrapper
//! output cells. Test time is driven by the longest scan-in and scan-out
//! chains, so the design goal is balance — the classic heuristic (from
//! Marinissen et al.'s wrapper design work) assigns internal scan chains
//! by best-fit-decreasing and then pads with wrapper cells.

use modsoc_soc::CoreSpec;

/// The wrapper-design view of a core: terminal counts plus internal scan
/// chain lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WrapperCore {
    /// Core name.
    pub name: String,
    /// Functional inputs (each gets a wrapper input cell).
    pub inputs: usize,
    /// Functional outputs (each gets a wrapper output cell).
    pub outputs: usize,
    /// Internal scan chain lengths.
    pub scan_chains: Vec<usize>,
    /// Stand-alone test pattern count.
    pub patterns: u64,
}

impl WrapperCore {
    /// Create a wrapper-design view.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        scan_chains: Vec<usize>,
    ) -> WrapperCore {
        WrapperCore {
            name: name.into(),
            inputs,
            outputs,
            scan_chains,
            patterns: 0,
        }
    }

    /// Builder-style pattern count.
    #[must_use]
    pub fn with_patterns(mut self, patterns: u64) -> WrapperCore {
        self.patterns = patterns;
        self
    }

    /// Derive a wrapper view from a [`CoreSpec`], splitting its scan
    /// cells into `chains` balanced internal chains (the "perfectly
    /// balanced scan chains" assumption of the paper's §3).
    #[must_use]
    pub fn from_core_spec(spec: &CoreSpec, chains: usize) -> WrapperCore {
        let chains = chains.max(1);
        let total = spec.scan_cells as usize;
        let base = total / chains;
        let extra = total % chains;
        let scan_chains: Vec<usize> = (0..chains)
            .map(|i| base + usize::from(i < extra))
            .filter(|&l| l > 0)
            .collect();
        WrapperCore {
            name: spec.name.clone(),
            inputs: spec.inputs as usize,
            outputs: spec.outputs as usize,
            scan_chains,
            patterns: spec.patterns,
        }
    }

    /// Total cells a wrapper must move per pattern:
    /// `I + O + Σ scan` (cf. `2S + ISOCOST` counts stimulus and response
    /// separately; here a scan cell is loaded and unloaded through the
    /// same chain).
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.inputs + self.outputs + self.scan_chains.iter().sum::<usize>()
    }
}

/// One wrapper chain of a design.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WrapperChain {
    /// Indices of the internal scan chains assigned here.
    pub scan_chain_indices: Vec<usize>,
    /// Internal scan cells on this chain.
    pub scan_cells: usize,
    /// Wrapper input cells on this chain.
    pub input_cells: usize,
    /// Wrapper output cells on this chain.
    pub output_cells: usize,
}

impl WrapperChain {
    /// Scan-in length: cells shifted in per pattern
    /// (input cells + scan cells).
    #[must_use]
    pub fn scan_in_len(&self) -> usize {
        self.input_cells + self.scan_cells
    }

    /// Scan-out length: cells shifted out per pattern
    /// (scan cells + output cells).
    #[must_use]
    pub fn scan_out_len(&self) -> usize {
        self.scan_cells + self.output_cells
    }
}

/// A wrapper design: the core's cells distributed over `w` chains.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WrapperDesign {
    chains: Vec<WrapperChain>,
    patterns: u64,
}

impl WrapperDesign {
    /// The wrapper chains.
    #[must_use]
    pub fn chains(&self) -> &[WrapperChain] {
        &self.chains
    }

    /// Longest scan-in chain.
    #[must_use]
    pub fn max_scan_in(&self) -> usize {
        self.chains
            .iter()
            .map(WrapperChain::scan_in_len)
            .max()
            .unwrap_or(0)
    }

    /// Longest scan-out chain.
    #[must_use]
    pub fn max_scan_out(&self) -> usize {
        self.chains
            .iter()
            .map(WrapperChain::scan_out_len)
            .max()
            .unwrap_or(0)
    }

    /// Core test time in TAM clock cycles for `p` patterns (the classic
    /// formula): `(1 + max(si, so)) · p + min(si, so)` — shift-in of the
    /// next pattern overlaps shift-out of the previous.
    #[must_use]
    pub fn test_time(&self, patterns: u64) -> u64 {
        let si = self.max_scan_in() as u64;
        let so = self.max_scan_out() as u64;
        (1 + si.max(so)) * patterns + si.min(so)
    }

    /// Test time using the design's own pattern count.
    #[must_use]
    pub fn test_time_self(&self) -> u64 {
        self.test_time(self.patterns)
    }

    /// Idle (padding) bits per load: every chain shorter than the
    /// longest still occupies its TAM wire for the full shift — the
    /// imbalance cost the paper's "useful bits only" analysis excludes.
    #[must_use]
    pub fn idle_bits_per_pattern(&self) -> u64 {
        let si = self.max_scan_in() as u64;
        let so = self.max_scan_out() as u64;
        self.chains
            .iter()
            .map(|c| (si - c.scan_in_len() as u64) + (so - c.scan_out_len() as u64))
            .sum()
    }
}

/// Design a wrapper with `width` chains using best-fit-decreasing.
///
/// Internal scan chains are assigned longest-first to the currently
/// shortest wrapper chain; wrapper input cells then pad the shortest
/// scan-in sides and output cells the shortest scan-out sides (both are
/// individually placeable, so they balance near-perfectly).
///
/// A `width` of zero is treated as one; a width larger than needed
/// leaves empty chains in place so the TAM sees the requested interface.
#[must_use]
pub fn design_wrapper(core: &WrapperCore, width: usize) -> WrapperDesign {
    let width = width.max(1);
    let mut chains = vec![WrapperChain::default(); width];

    // Best-fit-decreasing over internal scan chains.
    let mut order: Vec<usize> = (0..core.scan_chains.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(core.scan_chains[i]));
    for i in order {
        let target = (0..width)
            .min_by_key(|&c| chains[c].scan_cells)
            .expect("width >= 1");
        chains[target].scan_chain_indices.push(i);
        chains[target].scan_cells += core.scan_chains[i];
    }

    // Input cells pad the scan-in side one at a time.
    for _ in 0..core.inputs {
        let target = (0..width)
            .min_by_key(|&c| chains[c].scan_in_len())
            .expect("width >= 1");
        chains[target].input_cells += 1;
    }
    // Output cells pad the scan-out side.
    for _ in 0..core.outputs {
        let target = (0..width)
            .min_by_key(|&c| chains[c].scan_out_len())
            .expect("width >= 1");
        chains[target].output_cells += 1;
    }

    WrapperDesign {
        chains,
        patterns: core.patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chain_concatenates_everything() {
        let core = WrapperCore::new("c", 3, 2, vec![10, 5]);
        let d = design_wrapper(&core, 1);
        assert_eq!(d.chains().len(), 1);
        assert_eq!(d.max_scan_in(), 3 + 15);
        assert_eq!(d.max_scan_out(), 15 + 2);
        assert_eq!(d.idle_bits_per_pattern(), 0);
    }

    #[test]
    fn bfd_balances_scan_chains() {
        let core = WrapperCore::new("c", 0, 0, vec![30, 20, 20, 10, 10, 10]);
        let d = design_wrapper(&core, 3);
        // Total 100 over 3 chains: best-fit-decreasing gives 30/40/30 or
        // similar; max must be at most 40.
        assert!(d.max_scan_in() <= 40, "{}", d.max_scan_in());
        let total: usize = d.chains().iter().map(|c| c.scan_cells).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn io_cells_fill_valleys() {
        let core = WrapperCore::new("c", 12, 12, vec![10]);
        let d = design_wrapper(&core, 2);
        // The empty second chain should absorb most I/O cells.
        let si: Vec<usize> = d.chains().iter().map(WrapperChain::scan_in_len).collect();
        assert!((si[0] as i64 - si[1] as i64).abs() <= 11);
    }

    #[test]
    fn test_time_formula() {
        let core = WrapperCore::new("c", 0, 0, vec![100]).with_patterns(10);
        let d = design_wrapper(&core, 1);
        // (1 + 100) * 10 + 100 = 1110.
        assert_eq!(d.test_time_self(), 1_110);
    }

    #[test]
    fn wider_wrapper_is_never_slower() {
        let core = WrapperCore::new("c", 20, 10, vec![64, 32, 32, 16, 8]).with_patterns(50);
        let mut last = u64::MAX;
        for w in 1..=6 {
            let t = design_wrapper(&core, w).test_time_self();
            assert!(t <= last, "width {w}: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn from_core_spec_balances_cells() {
        let spec = CoreSpec::leaf("x", 8, 4, 0, 100, 25);
        let core = WrapperCore::from_core_spec(&spec, 3);
        assert_eq!(core.scan_chains, vec![34, 33, 33]);
        assert_eq!(core.patterns, 25);
        assert_eq!(core.total_cells(), 112);
    }

    #[test]
    fn from_core_spec_zero_scan() {
        let spec = CoreSpec::leaf("x", 8, 4, 0, 0, 25);
        let core = WrapperCore::from_core_spec(&spec, 4);
        assert!(core.scan_chains.is_empty());
        let d = design_wrapper(&core, 2);
        assert_eq!(d.max_scan_in() + d.max_scan_out(), 6);
    }

    #[test]
    fn zero_width_clamps_to_one() {
        let core = WrapperCore::new("c", 1, 1, vec![4]);
        let d = design_wrapper(&core, 0);
        assert_eq!(d.chains().len(), 1);
    }

    #[test]
    fn idle_bits_counted() {
        // Unbalanceable: one chain of 100 + one of 10 over 2 wires.
        let core = WrapperCore::new("c", 0, 0, vec![100, 10]);
        let d = design_wrapper(&core, 2);
        assert_eq!(d.max_scan_in(), 100);
        assert_eq!(d.idle_bits_per_pattern(), 2 * 90);
    }
}
