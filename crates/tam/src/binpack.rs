//! Rectangle bin-packing wrapper/TAM co-optimization.
//!
//! The co-optimization family this module reproduces (Islam/Karim et
//! al., arXiv 1008.3320 / 1008.4446 — the rectangle-packing line the
//! paper's ref 14 opened) models each core as a set of *rectangles*: one
//! per Pareto-optimal wrapper configuration, with the TAM width on one
//! axis and the resulting core test time on the other. SOC test
//! scheduling then becomes strip packing: place one rectangle per core
//! inside a strip of height `width` (the total TAM budget) so the strip
//! length — the SOC test time — is minimized.
//!
//! The heuristic implemented here is the *diagonal-length-first* packer
//! of arXiv 1008.4446:
//!
//! 1. **Pareto candidates** ([`pareto_candidates`]): sweep each core's
//!    wrapper design over `1..=width` and keep only the widths that
//!    strictly reduce test time. Wrapper design is best-fit-decreasing
//!    ([`design_wrapper`]), so wider never means slower and the kept set
//!    is a staircase of genuinely distinct rectangles.
//! 2. **Diagonal order**: cores are placed in decreasing diagonal length
//!    of their widest (fastest) rectangle — `time² + width²` compared in
//!    integer arithmetic — so the rectangles that dominate either axis
//!    land first. Ties break on ascending core index; the order (and
//!    everything downstream) is fully deterministic.
//! 3. **Best-fit width with idle-time backfill**: each core tries every
//!    candidate width at every schedule event point (time zero and each
//!    placed end), taking the earliest feasible start per width and the
//!    placement with the smallest end time overall; ties prefer the
//!    narrower rectangle (leaving wires free), then the earlier start.
//!    Because *every* event point is a candidate start, a small
//!    late-placed rectangle slides backwards into idle windows left
//!    between earlier placements instead of growing the strip.
//! 4. **Wire assignment**: placements are mapped onto concrete TAM wire
//!    indices afterwards (lowest-free-index first). Feasibility at every
//!    event point guarantees enough simultaneously-free wires exist —
//!    the interval-graph argument: a `w`-wire test is `w` unit tasks
//!    with identical intervals, and greedy coloring by start time needs
//!    no more colors than the maximum concurrent demand.
//!
//! The power-constrained variant lives in [`crate::constraints`]; it
//! funnels into the same packer with a concurrent-power feasibility
//! term. Packing is single-threaded per SOC and free of iteration-order
//! ambiguity, so results are byte-stable across runs and `--jobs`
//! values (the repo-wide determinism contract).

use modsoc_metrics::{Counter, MetricsSink, NullSink};

use crate::error::TamError;
use crate::schedule::{Schedule, ScheduleEntry};
use crate::wrapper::{design_wrapper, WrapperCore};

/// One Pareto-optimal wrapper configuration of a core: a rectangle of
/// `width` TAM wires by `time` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RectCandidate {
    /// Wrapper chain count / TAM wires consumed.
    pub width: usize,
    /// Core test time at this width, in TAM cycles.
    pub time: u64,
}

/// The Pareto rectangle set of one core.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreRectangles {
    /// Index of the core in the input slice (the deterministic
    /// tie-break key).
    pub core: usize,
    /// Core name.
    pub name: String,
    /// Pareto candidates in ascending width order; the last entry is the
    /// widest and fastest rectangle.
    pub candidates: Vec<RectCandidate>,
}

impl CoreRectangles {
    /// Squared diagonal length of the widest rectangle — the placement
    /// priority of arXiv 1008.4446, kept in integer arithmetic so the
    /// ordering is exact.
    #[must_use]
    pub fn diagonal_sq(&self) -> u128 {
        self.candidates.last().map_or(0, |c| {
            (c.time as u128) * (c.time as u128) + (c.width as u128) * (c.width as u128)
        })
    }
}

/// Pareto-optimal wrapper configurations of `core` up to `max_width`
/// wires: the widths where the test time strictly improves.
#[must_use]
pub fn pareto_candidates(core: &WrapperCore, max_width: usize) -> Vec<RectCandidate> {
    let mut out = Vec::new();
    let mut best = u64::MAX;
    for width in 1..=max_width {
        let time = design_wrapper(core, width).test_time_self();
        if time < best {
            best = time;
            out.push(RectCandidate { width, time });
        }
    }
    out
}

/// One packed rectangle: a core's chosen wrapper configuration mapped to
/// a start time and a concrete set of TAM wires.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    /// Index of the core in the input slice.
    pub core: usize,
    /// Core name.
    pub name: String,
    /// Start time (cycles).
    pub start: u64,
    /// End time (cycles).
    pub end: u64,
    /// TAM wires consumed (the chosen rectangle width).
    pub width: usize,
    /// The concrete wire indices occupied over `[start, end)`.
    pub wires: Vec<usize>,
    /// Whether this placement fit entirely inside the strip as it
    /// already stood — an idle-time backfill that cost zero makespan.
    pub backfilled: bool,
}

/// A complete packed SOC test schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PackedSchedule {
    /// Total TAM width budget of the strip.
    pub width: usize,
    /// Placements sorted by `(start, core)`.
    pub placements: Vec<Placement>,
}

impl PackedSchedule {
    /// Completion time: the latest placement end.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.placements.iter().map(|p| p.end).max().unwrap_or(0)
    }

    /// TAM utilization in `[0, 1]` (cf. [`Schedule::utilization`]).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.to_schedule().utilization()
    }

    /// Number of placements that backfilled idle windows.
    #[must_use]
    pub fn backfills(&self) -> usize {
        self.placements.iter().filter(|p| p.backfilled).count()
    }

    /// View the packing as a plain [`Schedule`] (for Gantt rendering and
    /// the existing utilization/idle accounting).
    #[must_use]
    pub fn to_schedule(&self) -> Schedule {
        Schedule {
            entries: self
                .placements
                .iter()
                .map(|p| ScheduleEntry {
                    name: p.name.clone(),
                    start: p.start,
                    end: p.end,
                    width: p.width,
                })
                .collect(),
            width: self.width,
        }
    }
}

/// Pack every core's best rectangle under a total TAM width budget.
///
/// # Errors
///
/// Returns [`TamError::ZeroWidth`] / [`TamError::NoCores`].
pub fn pack(cores: &[WrapperCore], width: usize) -> Result<PackedSchedule, TamError> {
    pack_metered(cores, width, &NullSink)
}

/// [`pack`] with engine counters reported through `sink`
/// (`tam_pack_cores`, `tam_pack_candidates`, `tam_pack_backfills`).
///
/// # Errors
///
/// Returns [`TamError::ZeroWidth`] / [`TamError::NoCores`].
pub fn pack_metered(
    cores: &[WrapperCore],
    width: usize,
    sink: &dyn MetricsSink,
) -> Result<PackedSchedule, TamError> {
    pack_impl(cores, None, width, u64::MAX, sink)
}

/// How a candidate placement failed (drives the reject counters).
enum Fit {
    Ok,
    Wires,
    Power,
}

/// The shared packer behind [`pack`] and
/// [`crate::constraints::pack_constrained`]. `powers`, when present, is
/// one per-core power rating parallel to `cores`, and every instant of
/// the schedule keeps the concurrent power sum at or under `ceiling`.
pub(crate) fn pack_impl(
    cores: &[WrapperCore],
    powers: Option<&[u64]>,
    width: usize,
    ceiling: u64,
    sink: &dyn MetricsSink,
) -> Result<PackedSchedule, TamError> {
    if width == 0 {
        return Err(TamError::ZeroWidth);
    }
    if cores.is_empty() {
        return Err(TamError::NoCores);
    }

    // 1. Pareto rectangle sets.
    let rects: Vec<CoreRectangles> = cores
        .iter()
        .enumerate()
        .map(|(core, c)| CoreRectangles {
            core,
            name: c.name.clone(),
            candidates: pareto_candidates(c, width),
        })
        .collect();
    sink.add(Counter::TamPackCores, cores.len() as u64);
    sink.add(
        Counter::TamPackCandidates,
        rects.iter().map(|r| r.candidates.len() as u64).sum(),
    );

    // 2. Diagonal-length-first order, tie-broken on core index.
    let mut order: Vec<usize> = (0..rects.len()).collect();
    order.sort_by(|&a, &b| {
        rects[b]
            .diagonal_sq()
            .cmp(&rects[a].diagonal_sq())
            .then(a.cmp(&b))
    });

    // 3. Place each core: best-fit width over every event-point start.
    // `placed_power[k]` is the power rating of `placed[k]` (zero when
    // unconstrained), kept parallel so `fits` can sum concurrent power.
    let mut placed: Vec<Placement> = Vec::with_capacity(cores.len());
    let mut placed_power: Vec<u64> = Vec::with_capacity(cores.len());
    let mut power_rejects = 0u64;
    let mut backfills = 0u64;
    for &i in &order {
        let rect = &rects[i];
        let power = powers.map_or(0, |p| p[i]);
        let makespan_before = placed.iter().map(|p| p.end).max().unwrap_or(0);
        // Candidate starts: time zero plus every placed end, ascending,
        // so "earliest feasible start" per width is a forward scan. The
        // list includes the current makespan, where the strip is empty —
        // which is why only a power ceiling can make a core unplaceable.
        let mut starts: Vec<u64> = std::iter::once(0)
            .chain(placed.iter().map(|p| p.end))
            .collect();
        starts.sort_unstable();
        starts.dedup();
        // (end, width, start): minimize end, then prefer narrower
        // rectangles, then earlier starts.
        let mut best: Option<(u64, usize, u64)> = None;
        for cand in &rect.candidates {
            for &start in &starts {
                let end = start + cand.time;
                match fits(
                    &placed,
                    &placed_power,
                    start,
                    end,
                    cand.width,
                    power,
                    width,
                    ceiling,
                ) {
                    Fit::Ok => {
                        let key = (end, cand.width, start);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                        break; // earliest feasible start for this width
                    }
                    Fit::Wires => {}
                    Fit::Power => power_rejects += 1,
                }
            }
        }
        let Some((end, w, start)) = best else {
            return Err(TamError::Infeasible {
                core: rect.name.clone(),
                width,
                ceiling,
            });
        };
        let backfilled = !placed.is_empty() && end <= makespan_before;
        backfills += u64::from(backfilled);
        placed.push(Placement {
            core: i,
            name: rect.name.clone(),
            start,
            end,
            width: w,
            wires: Vec::new(),
            backfilled,
        });
        placed_power.push(power);
    }
    sink.add(Counter::TamPackBackfills, backfills);
    sink.add(Counter::TamPackPowerRejects, power_rejects);

    // 4. Concrete wire assignment: lowest free indices, by start time.
    placed.sort_by_key(|p| (p.start, p.core));
    let mut busy_until = vec![0u64; width];
    for p in &mut placed {
        let wires: Vec<usize> = (0..width)
            .filter(|&k| busy_until[k] <= p.start)
            .take(p.width)
            .collect();
        debug_assert_eq!(wires.len(), p.width, "event-point feasibility");
        if wires.len() < p.width {
            // Unreachable by construction (see the module doc's
            // interval-graph argument); fail loudly rather than emit an
            // oversubscribed schedule if the invariant is ever broken.
            return Err(TamError::Infeasible {
                core: p.name.clone(),
                width,
                ceiling,
            });
        }
        for &k in &wires {
            busy_until[k] = p.end;
        }
        p.wires = wires;
    }

    Ok(PackedSchedule {
        width,
        placements: placed,
    })
}

/// Check a candidate placement against the wire budget and power
/// ceiling at every event point inside `[start, end)`. Resource usage is
/// piecewise-constant and only rises at placement starts, so checking
/// `start` plus each placed start inside the interval is exhaustive.
/// `placed_power` is parallel to `placed`.
#[allow(clippy::too_many_arguments)] // internal; the tuple would obscure more
fn fits(
    placed: &[Placement],
    placed_power: &[u64],
    start: u64,
    end: u64,
    w: usize,
    power: u64,
    width: usize,
    ceiling: u64,
) -> Fit {
    let mut points: Vec<u64> = vec![start];
    for p in placed {
        if p.start > start && p.start < end {
            points.push(p.start);
        }
    }
    for &t in &points {
        let mut wires = w;
        let mut pw = power;
        for (p, &pp) in placed.iter().zip(placed_power) {
            if p.start <= t && t < p.end {
                wires += p.width;
                pw = pw.saturating_add(pp);
            }
        }
        if wires > width {
            return Fit::Wires;
        }
        if pw > ceiling {
            return Fit::Power;
        }
    }
    Fit::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::soc_test_time;
    use crate::arch::TamArchitecture;
    use crate::optimize::best_at_width;
    use modsoc_metrics::RecordingSink;

    fn cores() -> Vec<WrapperCore> {
        vec![
            WrapperCore::new("a", 8, 8, vec![64, 64]).with_patterns(100),
            WrapperCore::new("b", 4, 4, vec![32]).with_patterns(300),
            WrapperCore::new("c", 16, 2, vec![128, 16, 16]).with_patterns(50),
            WrapperCore::new("d", 2, 6, vec![48, 48]).with_patterns(80),
        ]
    }

    fn assert_wires_exclusive(s: &PackedSchedule) {
        for a in &s.placements {
            assert_eq!(a.wires.len(), a.width, "{}", a.name);
            assert!(a.wires.iter().all(|&w| w < s.width));
            for b in &s.placements {
                if a.core != b.core && a.start < b.end && b.start < a.end {
                    for w in &a.wires {
                        assert!(!b.wires.contains(w), "wire {w}: {} vs {}", a.name, b.name);
                    }
                }
            }
        }
    }

    #[test]
    fn pareto_set_is_a_strict_staircase() {
        let core = &cores()[0];
        let cands = pareto_candidates(core, 16);
        assert!(!cands.is_empty());
        assert_eq!(cands[0].width, 1, "width 1 is always kept");
        for pair in cands.windows(2) {
            assert!(pair[0].width < pair[1].width);
            assert!(pair[0].time > pair[1].time, "strict improvement only");
        }
    }

    #[test]
    fn pack_places_every_core_without_overlap() {
        let cs = cores();
        for width in [1usize, 3, 8, 16] {
            let s = pack(&cs, width).unwrap();
            assert_eq!(s.placements.len(), cs.len(), "width {width}");
            assert_wires_exclusive(&s);
        }
    }

    #[test]
    fn pack_never_loses_to_serial() {
        let cs = cores();
        for width in [1usize, 4, 8, 16, 24] {
            let serial = soc_test_time(TamArchitecture::Multiplexing, &cs, width)
                .unwrap()
                .total_time;
            let s = pack(&cs, width).unwrap();
            assert!(
                s.makespan() <= serial,
                "width {width}: {} > {serial}",
                s.makespan()
            );
        }
    }

    #[test]
    fn pack_is_competitive_with_the_architecture_sweep() {
        let cs = cores();
        let best = best_at_width(&cs, 8).unwrap();
        let s = pack(&cs, 8).unwrap();
        // The diagonal packer must at least match the best rigid/greedy
        // configuration on this workload.
        assert!(
            s.makespan() <= best.time,
            "{} > {}",
            s.makespan(),
            best.time
        );
    }

    #[test]
    fn pack_is_deterministic_under_ties() {
        // Identical cores: every diagonal ties, so placement order (and
        // the full result) must come from the core-index tie-break.
        let twins: Vec<WrapperCore> = (0..6)
            .map(|i| WrapperCore::new(format!("t{i}"), 4, 4, vec![40, 40]).with_patterns(60))
            .collect();
        let a = pack(&twins, 7).unwrap();
        let b = pack(&twins, 7).unwrap();
        assert_eq!(a, b);
        // First-placed identical twin is the lowest core index.
        let first = a.placements.iter().min_by_key(|p| (p.start, p.core));
        assert_eq!(first.map(|p| p.core), Some(0));
    }

    #[test]
    fn backfill_fills_idle_windows() {
        // One dominating rectangle plus small ones: at least one small
        // core should land inside the window the big one leaves open.
        let cs = vec![
            WrapperCore::new("big", 8, 8, vec![256, 256]).with_patterns(400),
            WrapperCore::new("s1", 2, 2, vec![16]).with_patterns(20),
            WrapperCore::new("s2", 2, 2, vec![16]).with_patterns(20),
            WrapperCore::new("s3", 2, 2, vec![12]).with_patterns(15),
        ];
        let s = pack(&cs, 6).unwrap();
        assert!(s.backfills() > 0, "no placement backfilled");
        let sink = RecordingSink::new();
        let metered = pack_metered(&cs, 6, &sink).unwrap();
        assert_eq!(metered, s, "metering must not change the packing");
        let snap = sink.snapshot();
        assert_eq!(snap.counter(Counter::TamPackCores), cs.len() as u64);
        assert_eq!(
            snap.counter(Counter::TamPackBackfills),
            s.backfills() as u64
        );
        assert!(snap.counter(Counter::TamPackCandidates) >= cs.len() as u64);
    }

    #[test]
    fn schedule_view_matches_placements() {
        let s = pack(&cores(), 8).unwrap();
        let sched = s.to_schedule();
        assert_eq!(sched.entries.len(), s.placements.len());
        assert_eq!(sched.makespan(), s.makespan());
        assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(matches!(pack(&[], 4), Err(TamError::NoCores)));
        assert!(matches!(pack(&cores(), 0), Err(TamError::ZeroWidth)));
    }
}
