//! Power-constrained test scheduling.
//!
//! Running many core tests in parallel multiplies switching activity;
//! real SOC test schedules cap the summed test power at every instant
//! (the paper's cited context, refs 17, Iyengar & Chakrabarty, and 18,
//! Larsson & Peng). This module extends the rectangle scheduler with a
//! per-core power rating and a chip-wide budget.

use crate::error::TamError;
use crate::schedule::{Schedule, ScheduleEntry};
use crate::wrapper::{design_wrapper, WrapperCore};

/// A core plus its test power rating (arbitrary consistent units, e.g.
/// milliwatts of scan switching power).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerCore {
    /// The wrapper-design view of the core.
    pub core: WrapperCore,
    /// Power drawn while this core's test runs.
    pub test_power: u64,
}

impl PowerCore {
    /// Pair a core with its power rating.
    #[must_use]
    pub fn new(core: WrapperCore, test_power: u64) -> PowerCore {
        PowerCore { core, test_power }
    }
}

/// Greedy power- and width-constrained rectangle scheduling.
///
/// Cores are placed longest-test-first. Each core tries every TAM width
/// `1..=width` and every candidate start time (schedule event points),
/// and takes the placement minimizing its end time subject to both
/// resource caps holding over its whole duration.
///
/// # Errors
///
/// Returns [`TamError::ZeroWidth`] / [`TamError::NoCores`], or
/// [`TamError::PowerBudgetTooSmall`] if some single core already exceeds
/// the budget.
pub fn schedule_power_constrained(
    cores: &[PowerCore],
    width: usize,
    power_budget: u64,
) -> Result<Schedule, TamError> {
    if width == 0 {
        return Err(TamError::ZeroWidth);
    }
    if cores.is_empty() {
        return Err(TamError::NoCores);
    }
    if let Some(over) = cores.iter().find(|c| c.test_power > power_budget) {
        return Err(TamError::PowerBudgetTooSmall {
            core: over.core.name.clone(),
            power: over.test_power,
            budget: power_budget,
        });
    }

    let mut placed: Vec<(ScheduleEntry, u64)> = Vec::new(); // entry + power
    let mut order: Vec<usize> = (0..cores.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(design_wrapper(&cores[i].core, 1).test_time_self()));

    for &i in &order {
        let pc = &cores[i];
        let mut best: Option<(u64, u64, usize)> = None; // (start, end, width)
        for w in 1..=width {
            let duration = design_wrapper(&pc.core, w).test_time_self();
            // Candidate starts: time 0 and every placed end.
            let mut candidates: Vec<u64> = std::iter::once(0)
                .chain(placed.iter().map(|(e, _)| e.end))
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            for &start in &candidates {
                let end = start + duration;
                if fits(&placed, start, end, w, pc.test_power, width, power_budget) {
                    if best.is_none_or(|(_, be, _)| end < be) {
                        best = Some((start, end, w));
                    }
                    break; // earliest feasible start for this width
                }
            }
        }
        let (start, end, w) = best.expect("time 0 with width 1 is always feasible eventually");
        placed.push((
            ScheduleEntry {
                name: pc.core.name.clone(),
                start,
                end,
                width: w,
            },
            pc.test_power,
        ));
    }

    let mut entries: Vec<ScheduleEntry> = placed.into_iter().map(|(e, _)| e).collect();
    entries.sort_by_key(|e| (e.start, e.name.clone()));
    Ok(Schedule { entries, width })
}

/// Peak power of a schedule given per-core powers (by core name).
#[must_use]
pub fn peak_power(schedule: &Schedule, cores: &[PowerCore]) -> u64 {
    let power_of = |name: &str| {
        cores
            .iter()
            .find(|c| c.core.name == name)
            .map_or(0, |c| c.test_power)
    };
    let mut events: Vec<u64> = schedule
        .entries
        .iter()
        .flat_map(|e| [e.start, e.end])
        .collect();
    events.sort_unstable();
    events.dedup();
    events
        .iter()
        .map(|&t| {
            schedule
                .entries
                .iter()
                .filter(|e| e.start <= t && t < e.end)
                .map(|e| power_of(&e.name))
                .sum()
        })
        .max()
        .unwrap_or(0)
}

fn fits(
    placed: &[(ScheduleEntry, u64)],
    start: u64,
    end: u64,
    w: usize,
    power: u64,
    width: usize,
    budget: u64,
) -> bool {
    // Check wires and power at every event point inside [start, end).
    let mut points: Vec<u64> = vec![start];
    for (e, _) in placed {
        if e.start > start && e.start < end {
            points.push(e.start);
        }
    }
    for &t in &points {
        let wires: usize = placed
            .iter()
            .filter(|(e, _)| e.start <= t && t < e.end)
            .map(|(e, _)| e.width)
            .sum();
        let pw: u64 = placed
            .iter()
            .filter(|(e, _)| e.start <= t && t < e.end)
            .map(|(_, p)| *p)
            .sum();
        if wires + w > width || pw + power > budget {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores() -> Vec<PowerCore> {
        vec![
            PowerCore::new(
                WrapperCore::new("a", 8, 8, vec![64, 64]).with_patterns(100),
                40,
            ),
            PowerCore::new(WrapperCore::new("b", 4, 4, vec![32]).with_patterns(300), 30),
            PowerCore::new(
                WrapperCore::new("c", 16, 2, vec![128, 16]).with_patterns(50),
                50,
            ),
        ]
    }

    fn assert_valid(s: &Schedule, cs: &[PowerCore], width: usize, budget: u64) {
        let mut events: Vec<u64> = s.entries.iter().flat_map(|e| [e.start, e.end]).collect();
        events.sort_unstable();
        events.dedup();
        for &t in &events {
            let wires: usize = s
                .entries
                .iter()
                .filter(|e| e.start <= t && t < e.end)
                .map(|e| e.width)
                .sum();
            assert!(wires <= width, "wires oversubscribed at {t}");
        }
        assert!(peak_power(s, cs) <= budget, "power exceeded");
        assert_eq!(s.entries.len(), cs.len(), "every core scheduled");
    }

    #[test]
    fn generous_budget_allows_parallelism() {
        let cs = cores();
        let s = schedule_power_constrained(&cs, 8, 1_000).unwrap();
        assert_valid(&s, &cs, 8, 1_000);
        // At least two cores overlap.
        let overlapping = s.entries.iter().any(|a| {
            s.entries
                .iter()
                .any(|b| a.name != b.name && a.start < b.end && b.start < a.end)
        });
        assert!(overlapping);
    }

    #[test]
    fn tight_budget_serializes() {
        let cs = cores();
        // Budget 55 allows at most one of {40, 30, 50}+any other pair.
        let s = schedule_power_constrained(&cs, 8, 55).unwrap();
        assert_valid(&s, &cs, 8, 55);
        // No two cores with combined power > 55 may overlap.
        for a in &s.entries {
            for b in &s.entries {
                if a.name < b.name && a.start < b.end && b.start < a.end {
                    let pa = cs
                        .iter()
                        .find(|c| c.core.name == a.name)
                        .unwrap()
                        .test_power;
                    let pb = cs
                        .iter()
                        .find(|c| c.core.name == b.name)
                        .unwrap()
                        .test_power;
                    assert!(pa + pb <= 55);
                }
            }
        }
    }

    #[test]
    fn tighter_budget_never_faster() {
        let cs = cores();
        let loose = schedule_power_constrained(&cs, 8, 1_000).unwrap();
        let tight = schedule_power_constrained(&cs, 8, 55).unwrap();
        assert!(tight.makespan() >= loose.makespan());
    }

    #[test]
    fn single_core_over_budget_rejected() {
        let cs = cores();
        let err = schedule_power_constrained(&cs, 8, 45).unwrap_err();
        assert!(matches!(err, TamError::PowerBudgetTooSmall { .. }));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(schedule_power_constrained(&[], 4, 100).is_err());
        assert!(schedule_power_constrained(&cores(), 0, 100).is_err());
    }

    #[test]
    fn peak_power_computed() {
        let cs = cores();
        let s = schedule_power_constrained(&cs, 8, 1_000).unwrap();
        let p = peak_power(&s, &cs);
        assert!(p >= 50, "at least the biggest single core");
        assert!(p <= 120, "at most the sum");
    }
}
