//! Error type for the TAM crate.

use std::fmt;

/// Errors from wrapper/TAM design and scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TamError {
    /// A TAM or wrapper width of zero was requested.
    ZeroWidth,
    /// A TAM architecture needs at least one core.
    NoCores,
    /// The Distribution architecture needs at least one wire per core.
    WidthBelowCoreCount {
        /// Requested total width.
        width: usize,
        /// Number of cores that each need a wire.
        cores: usize,
    },
    /// A single core's test power exceeds the chip-wide budget, so no
    /// schedule can exist.
    PowerBudgetTooSmall {
        /// The offending core.
        core: String,
        /// Its test power.
        power: u64,
        /// The budget it exceeds.
        budget: u64,
    },
    /// The rectangle packer exhausted a core's wrapper configurations:
    /// none fits the TAM width budget under the power ceiling.
    Infeasible {
        /// The core that could not be placed.
        core: String,
        /// The total TAM width budget in effect.
        width: usize,
        /// The power ceiling in effect (`u64::MAX` = unconstrained).
        ceiling: u64,
    },
}

impl fmt::Display for TamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamError::ZeroWidth => write!(f, "tam width must be at least one"),
            TamError::NoCores => write!(f, "at least one core is required"),
            TamError::WidthBelowCoreCount { width, cores } => write!(
                f,
                "distribution architecture needs width >= cores ({width} < {cores})"
            ),
            TamError::PowerBudgetTooSmall {
                core,
                power,
                budget,
            } => write!(
                f,
                "core `{core}` draws {power} alone, over the budget {budget}"
            ),
            TamError::Infeasible {
                core,
                width,
                ceiling,
            } => {
                write!(
                    f,
                    "no wrapper configuration of core `{core}` fits tam width {width}"
                )?;
                if *ceiling != u64::MAX {
                    write!(f, " under power ceiling {ceiling}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(TamError::ZeroWidth.to_string().contains("width"));
        assert!(TamError::NoCores.to_string().contains("core"));
        let e = TamError::WidthBelowCoreCount { width: 2, cores: 5 };
        assert!(e.to_string().contains("2 < 5"));
    }

    #[test]
    fn infeasible_names_core_width_and_ceiling() {
        let e = TamError::Infeasible {
            core: "c7".into(),
            width: 12,
            ceiling: 90,
        };
        let text = e.to_string();
        assert!(text.contains("c7"), "{text}");
        assert!(text.contains("12"), "{text}");
        assert!(text.contains("90"), "{text}");
    }

    #[test]
    fn infeasible_unconstrained_omits_ceiling() {
        let e = TamError::Infeasible {
            core: "c".into(),
            width: 4,
            ceiling: u64::MAX,
        };
        assert!(!e.to_string().contains("ceiling"));
    }
}
