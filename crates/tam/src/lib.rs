//! Wrapper chain design, TAM architectures and SOC test scheduling.
//!
//! The DATE 2008 paper deliberately scopes its analysis to *useful* test
//! data bits, independent of any test access mechanism (§3: "We exclude
//! the impact of the scan chain organization or the test access
//! mechanism from our analysis"). This crate supplies the machinery that
//! scoping note abstracts away, reproducing the cited background
//! (ref 12, Aerts & Marinissen scan-chain/TAM design; ref 13, Goel &
//! Marinissen test-bandwidth utilization):
//!
//! * [`wrapper`] — IEEE 1500 wrapper chain design: balance a core's
//!   wrapper input cells, internal scan chains, and wrapper output cells
//!   over `w` wrapper chains (best-fit-decreasing), and the resulting
//!   core test time;
//! * [`arch`] — the classic TAM architectures (Multiplexing,
//!   Daisychain, Distribution) with SOC test time computation;
//! * [`schedule`] — explicit test schedules with start/end times and the
//!   idle-bit accounting that quantifies exactly what the paper's
//!   "useful bits only" analysis leaves out;
//! * [`binpack`] / [`constraints`] — rectangle bin-packing wrapper/TAM
//!   co-optimization (the Islam/Karim diagonal-length heuristic, arXiv
//!   1008.3320 / 1008.4446): Pareto wrapper configurations as
//!   rectangles, strip packing under a total width budget with
//!   idle-time backfill, and the power-ceiling-constrained variant.
//!
//! # Example
//!
//! ```
//! use modsoc_tam::wrapper::{design_wrapper, WrapperCore};
//!
//! let core = WrapperCore::new("c", 8, 4, vec![32, 32, 16]);
//! let design = design_wrapper(&core, 3);
//! assert_eq!(design.chains().len(), 3);
//! // 92 cells over 3 chains: perfectly balanced would be ~31 per chain.
//! assert!(design.max_scan_in() <= 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod binpack;
pub mod constraints;
pub mod error;
pub mod optimize;
pub mod power;
pub mod schedule;
pub mod wrapper;

pub use arch::{soc_test_time, TamArchitecture};
pub use binpack::{pack, PackedSchedule};
pub use constraints::pack_constrained;
pub use error::TamError;
pub use wrapper::{design_wrapper, WrapperCore, WrapperDesign};
