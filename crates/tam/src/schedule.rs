//! Explicit SOC test schedules and idle-bit accounting.

use crate::arch::{soc_test_time, TamArchitecture, TamEvaluation};
use crate::error::TamError;
use crate::wrapper::{design_wrapper, WrapperCore};

/// One scheduled core test.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduleEntry {
    /// Core name.
    pub name: String,
    /// Start time (cycles).
    pub start: u64,
    /// End time (cycles).
    pub end: u64,
    /// TAM wires used.
    pub width: usize,
}

/// A complete SOC test schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    /// Scheduled core tests, by start time.
    pub entries: Vec<ScheduleEntry>,
    /// TAM width of the schedule.
    pub width: usize,
}

impl Schedule {
    /// Completion time: the latest entry end.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.entries.iter().map(|e| e.end).max().unwrap_or(0)
    }

    /// TAM utilization in `[0, 1]`: wire-cycles carrying a scheduled
    /// test over total wire-cycles until completion. The complement is
    /// the *idle bandwidth* that the paper's useful-bits analysis
    /// excludes by design.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let makespan = self.makespan();
        if makespan == 0 || self.width == 0 {
            return 0.0;
        }
        let busy: u64 = self
            .entries
            .iter()
            .map(|e| (e.end - e.start) * e.width as u64)
            .sum();
        busy as f64 / (makespan * self.width as u64) as f64
    }
}

impl Schedule {
    /// Render an ASCII Gantt chart, `columns` characters wide.
    ///
    /// Each row is one core; `█` spans its active interval. Useful for
    /// eyeballing TAM utilization in terminals and logs.
    #[must_use]
    pub fn render_gantt(&self, columns: usize) -> String {
        use std::fmt::Write as _;
        let columns = columns.max(10);
        let makespan = self.makespan().max(1);
        let name_w = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        for e in &self.entries {
            let start = (e.start as f64 / makespan as f64 * columns as f64).floor() as usize;
            let end = ((e.end as f64 / makespan as f64 * columns as f64).ceil() as usize)
                .clamp(start + 1, columns);
            let _ = writeln!(
                out,
                "{:<name_w$} |{}{}{}| w={}",
                e.name,
                " ".repeat(start),
                "█".repeat(end - start),
                " ".repeat(columns - end),
                e.width
            );
        }
        let _ = writeln!(
            out,
            "{:<name_w$} 0{:>pad$}",
            "",
            makespan,
            pad = columns + 1
        );
        out
    }
}

/// Build the schedule an architecture implies.
///
/// Multiplexing/Daisychain serialize at full width; Distribution starts
/// every core at time zero on its private wires.
///
/// # Errors
///
/// Propagates [`soc_test_time`] errors.
pub fn schedule(
    arch: TamArchitecture,
    cores: &[WrapperCore],
    width: usize,
) -> Result<Schedule, TamError> {
    let eval: TamEvaluation = soc_test_time(arch, cores, width)?;
    let entries = match arch {
        TamArchitecture::Multiplexing | TamArchitecture::Daisychain => {
            let mut t = 0u64;
            eval.cores
                .iter()
                .map(|c| {
                    let e = ScheduleEntry {
                        name: c.name.clone(),
                        start: t,
                        end: t + c.time,
                        width: c.width,
                    };
                    t += c.time;
                    e
                })
                .collect()
        }
        TamArchitecture::Distribution => eval
            .cores
            .iter()
            .map(|c| ScheduleEntry {
                name: c.name.clone(),
                start: 0,
                end: c.time,
                width: c.width,
            })
            .collect(),
    };
    Ok(Schedule {
        entries,
        width: eval.width,
    })
}

/// Two-dimensional greedy rectangle scheduling: cores may get any width
/// in `1..=width`, starting as wires free up (a simplified version of
/// the wrapper/TAM co-optimization literature, the paper's ref 14).
///
/// Cores are placed longest-single-wire-test first; each core takes as
/// many currently-free wires as reduce its time, bounded by `width`.
///
/// # Errors
///
/// Returns [`TamError::ZeroWidth`] or [`TamError::NoCores`].
pub fn schedule_rectangles(cores: &[WrapperCore], width: usize) -> Result<Schedule, TamError> {
    if width == 0 {
        return Err(TamError::ZeroWidth);
    }
    if cores.is_empty() {
        return Err(TamError::NoCores);
    }
    // free_at[w] = time when wire w becomes free.
    let mut free_at = vec![0u64; width];
    let mut order: Vec<usize> = (0..cores.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(design_wrapper(&cores[i], 1).test_time_self()));
    let mut entries = Vec::with_capacity(cores.len());
    for i in order {
        let core = &cores[i];
        // Try every width: pick the (start, end) minimizing end.
        let mut sorted = free_at.clone();
        sorted.sort_unstable();
        let mut best: Option<(u64, u64, usize)> = None;
        for w in 1..=width {
            let start = sorted[w - 1]; // earliest time w wires are free
            let time = design_wrapper(core, w).test_time_self();
            let end = start + time;
            if best.is_none_or(|(_, be, _)| end < be) {
                best = Some((start, end, w));
            }
        }
        let (start, end, w) = best.expect("width >= 1");
        // Occupy the w earliest-free wires.
        let mut idx: Vec<usize> = (0..width).collect();
        idx.sort_by_key(|&k| free_at[k]);
        for &k in idx.iter().take(w) {
            free_at[k] = end;
        }
        entries.push(ScheduleEntry {
            name: core.name.clone(),
            start,
            end,
            width: w,
        });
    }
    entries.sort_by_key(|e| (e.start, e.name.clone()));
    Ok(Schedule { entries, width })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores() -> Vec<WrapperCore> {
        vec![
            WrapperCore::new("a", 8, 8, vec![64, 64]).with_patterns(100),
            WrapperCore::new("b", 4, 4, vec![32]).with_patterns(300),
            WrapperCore::new("c", 16, 2, vec![128, 16, 16]).with_patterns(50),
        ]
    }

    #[test]
    fn multiplexing_schedule_is_sequential() {
        let s = schedule(TamArchitecture::Multiplexing, &cores(), 4).unwrap();
        for pair in s.entries.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_schedule_is_parallel() {
        let s = schedule(TamArchitecture::Distribution, &cores(), 6).unwrap();
        assert!(s.entries.iter().all(|e| e.start == 0));
        assert!(s.utilization() < 1.0, "imbalance leaves idle wires");
    }

    #[test]
    fn rectangle_schedule_valid_and_competitive() {
        let w = 6;
        let s = schedule_rectangles(&cores(), w).unwrap();
        // No over-subscription at any event point.
        let mut events: Vec<u64> = s.entries.iter().flat_map(|e| [e.start, e.end]).collect();
        events.sort_unstable();
        events.dedup();
        for &t in &events {
            let used: usize = s
                .entries
                .iter()
                .filter(|e| e.start <= t && t < e.end)
                .map(|e| e.width)
                .sum();
            assert!(used <= w, "oversubscribed at {t}: {used}");
        }
        // At least as good as pure serial at the same width.
        let serial = schedule(TamArchitecture::Multiplexing, &cores(), w).unwrap();
        assert!(s.makespan() <= serial.makespan());
    }

    #[test]
    fn rectangle_schedule_single_wire() {
        let s = schedule_rectangles(&cores(), 1).unwrap();
        assert_eq!(s.entries.len(), 3);
        assert!(s.utilization() > 0.99);
    }

    #[test]
    fn gantt_renders_every_core() {
        let s = schedule_rectangles(&cores(), 4).unwrap();
        let text = s.render_gantt(40);
        for e in &s.entries {
            assert!(text.contains(&e.name), "{}", e.name);
        }
        assert!(text.contains('█'));
        // Each row fits the requested width (name + 40 cols + metadata).
        for line in text.lines() {
            assert!(line.chars().count() < 70, "{line}");
        }
    }

    #[test]
    fn empty_and_zero_rejected() {
        assert!(schedule_rectangles(&[], 4).is_err());
        assert!(schedule_rectangles(&cores(), 0).is_err());
    }
}
