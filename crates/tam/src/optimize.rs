//! TAM width sweeps and architecture selection.
//!
//! The classic SOC test-planning question (Goel & Marinissen, the
//! paper's ref 13): given a TAM width budget, which architecture and
//! width minimize test time — and where does adding wires stop paying?
//! This module sweeps widths across the architectures, reports the
//! full curves, and picks the best configuration.

use crate::arch::{soc_test_time, TamArchitecture, TamEvaluation};
use crate::error::TamError;
use crate::schedule::{schedule_rectangles, Schedule};
use crate::wrapper::WrapperCore;

/// One point of a width sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// TAM width.
    pub width: usize,
    /// SOC test time at this width.
    pub time: u64,
}

/// The sweep of one architecture over a width range.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WidthSweep {
    /// The architecture swept (`None` = flexible rectangles).
    pub architecture: Option<TamArchitecture>,
    /// Points in ascending width order (infeasible widths skipped, e.g.
    /// Distribution below the core count).
    pub points: Vec<SweepPoint>,
}

impl WidthSweep {
    /// The width where the curve stops improving by at least
    /// `threshold` (relative): the knee a test planner would pick.
    ///
    /// The comparison is anchored at the current knee, not the previous
    /// point, so non-monotone curves behave: a later point *worse* than
    /// the knee never becomes the new anchor (it is simply skipped), and
    /// a dip below the threshold does not end the scan if a later width
    /// still improves on the knee by at least `threshold`.
    #[must_use]
    pub fn knee(&self, threshold: f64) -> Option<&SweepPoint> {
        let mut knee = self.points.first()?;
        for p in &self.points[1..] {
            if p.time < knee.time {
                let improvement = (knee.time - p.time) as f64 / knee.time as f64;
                if improvement >= threshold {
                    knee = p;
                }
            }
        }
        Some(knee)
    }
}

/// Sweep one architecture over `1..=max_width`.
///
/// # Errors
///
/// Returns [`TamError::NoCores`]; infeasible widths within the sweep are
/// skipped rather than failing the whole sweep.
pub fn sweep_architecture(
    arch: TamArchitecture,
    cores: &[WrapperCore],
    max_width: usize,
) -> Result<WidthSweep, TamError> {
    if cores.is_empty() {
        return Err(TamError::NoCores);
    }
    let points = (1..=max_width)
        .filter_map(|w| {
            soc_test_time(arch, cores, w)
                .ok()
                .map(|e: TamEvaluation| SweepPoint {
                    width: w,
                    time: e.total_time,
                })
        })
        .collect();
    Ok(WidthSweep {
        architecture: Some(arch),
        points,
    })
}

/// Sweep the flexible rectangle scheduler over `1..=max_width`.
///
/// # Errors
///
/// Returns [`TamError::NoCores`].
pub fn sweep_rectangles(cores: &[WrapperCore], max_width: usize) -> Result<WidthSweep, TamError> {
    if cores.is_empty() {
        return Err(TamError::NoCores);
    }
    let points = (1..=max_width)
        .filter_map(|w| {
            schedule_rectangles(cores, w)
                .ok()
                .map(|s: Schedule| SweepPoint {
                    width: w,
                    time: s.makespan(),
                })
        })
        .collect();
    Ok(WidthSweep {
        architecture: None,
        points,
    })
}

/// The best configuration found across all architectures at one width.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BestConfiguration {
    /// Winning architecture (`None` = flexible rectangles).
    pub architecture: Option<TamArchitecture>,
    /// The test time achieved.
    pub time: u64,
}

/// Pick the fastest architecture (including flexible rectangles) at a
/// fixed TAM width.
///
/// # Errors
///
/// Returns [`TamError::ZeroWidth`] / [`TamError::NoCores`].
pub fn best_at_width(cores: &[WrapperCore], width: usize) -> Result<BestConfiguration, TamError> {
    if width == 0 {
        return Err(TamError::ZeroWidth);
    }
    if cores.is_empty() {
        return Err(TamError::NoCores);
    }
    let mut best = BestConfiguration {
        architecture: None,
        time: schedule_rectangles(cores, width)?.makespan(),
    };
    for arch in [
        TamArchitecture::Multiplexing,
        TamArchitecture::Daisychain,
        TamArchitecture::Distribution,
    ] {
        if let Ok(eval) = soc_test_time(arch, cores, width) {
            if eval.total_time < best.time {
                best = BestConfiguration {
                    architecture: Some(arch),
                    time: eval.total_time,
                };
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores() -> Vec<WrapperCore> {
        vec![
            WrapperCore::new("a", 8, 8, vec![64, 64]).with_patterns(100),
            WrapperCore::new("b", 4, 4, vec![32]).with_patterns(300),
            WrapperCore::new("c", 16, 2, vec![128, 16, 16]).with_patterns(50),
            WrapperCore::new("d", 2, 6, vec![48, 48]).with_patterns(80),
        ]
    }

    #[test]
    fn sweeps_are_monotone_nonincreasing() {
        for arch in [TamArchitecture::Multiplexing, TamArchitecture::Distribution] {
            let sweep = sweep_architecture(arch, &cores(), 12).unwrap();
            for pair in sweep.points.windows(2) {
                assert!(pair[1].time <= pair[0].time, "{arch:?}");
            }
        }
        let flex = sweep_rectangles(&cores(), 12).unwrap();
        assert!(!flex.points.is_empty());
    }

    #[test]
    fn distribution_skips_infeasible_widths() {
        let sweep = sweep_architecture(TamArchitecture::Distribution, &cores(), 8).unwrap();
        assert_eq!(sweep.points.first().map(|p| p.width), Some(4));
    }

    #[test]
    fn knee_detection() {
        let sweep = WidthSweep {
            architecture: None,
            points: vec![
                SweepPoint {
                    width: 1,
                    time: 1000,
                },
                SweepPoint {
                    width: 2,
                    time: 500,
                },
                SweepPoint {
                    width: 3,
                    time: 490,
                },
                SweepPoint {
                    width: 4,
                    time: 489,
                },
            ],
        };
        assert_eq!(sweep.knee(0.05).map(|p| p.width), Some(2));
        // Threshold 0: any improvement keeps going.
        assert_eq!(sweep.knee(0.0).map(|p| p.width), Some(4));
    }

    fn sweep_of(times: &[u64]) -> WidthSweep {
        WidthSweep {
            architecture: None,
            points: times
                .iter()
                .enumerate()
                .map(|(i, &time)| SweepPoint { width: i + 1, time })
                .collect(),
        }
    }

    #[test]
    fn knee_of_empty_sweep_is_none() {
        assert!(sweep_of(&[]).knee(0.05).is_none());
    }

    #[test]
    fn knee_of_single_point_is_that_point() {
        assert_eq!(sweep_of(&[777]).knee(0.05).map(|p| p.width), Some(1));
        assert_eq!(sweep_of(&[777]).knee(0.0).map(|p| p.width), Some(1));
    }

    #[test]
    fn knee_of_flat_sweep_is_the_first_point() {
        // No point ever improves, so even threshold 0 stays at width 1
        // (the old pairwise scan drifted to the last point here).
        let flat = sweep_of(&[500, 500, 500, 500]);
        assert_eq!(flat.knee(0.0).map(|p| p.width), Some(1));
        assert_eq!(flat.knee(0.05).map(|p| p.width), Some(1));
    }

    #[test]
    fn knee_ignores_worse_points_on_non_monotone_sweeps() {
        // Width 3 regresses; it must neither become the knee nor end the
        // scan — width 4's big improvement over the width-2 knee counts.
        let bumpy = sweep_of(&[1_000, 600, 650, 200]);
        assert_eq!(bumpy.knee(0.05).map(|p| p.width), Some(4));
        // With everything after the bump weak, the knee stays at the
        // pre-bump point instead of resetting to the worse one.
        let weak_tail = sweep_of(&[1_000, 600, 650, 595]);
        assert_eq!(weak_tail.knee(0.05).map(|p| p.width), Some(2));
    }

    #[test]
    fn best_configuration_is_never_worse_than_serial() {
        let cs = cores();
        for w in [1usize, 4, 8, 16] {
            let serial = soc_test_time(TamArchitecture::Multiplexing, &cs, w)
                .unwrap()
                .total_time;
            let best = best_at_width(&cs, w).unwrap();
            assert!(best.time <= serial, "width {w}");
        }
    }

    #[test]
    fn rectangles_usually_win_at_moderate_width() {
        let best = best_at_width(&cores(), 8).unwrap();
        // At width 8 the flexible scheduler should beat the rigid
        // architectures on this imbalanced workload.
        assert!(
            best.architecture.is_none() || best.architecture == Some(TamArchitecture::Distribution)
        );
    }

    #[test]
    fn errors() {
        assert!(sweep_architecture(TamArchitecture::Multiplexing, &[], 4).is_err());
        assert!(sweep_rectangles(&[], 4).is_err());
        assert!(best_at_width(&cores(), 0).is_err());
    }
}
