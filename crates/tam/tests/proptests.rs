//! Property-based tests for wrapper design and scheduling.

use proptest::prelude::*;

use modsoc_soc::CoreSpec;
use modsoc_tam::power::{peak_power, schedule_power_constrained, PowerCore};
use modsoc_tam::schedule::schedule_rectangles;
use modsoc_tam::wrapper::{design_wrapper, WrapperCore};

fn arb_core(i: usize) -> impl Strategy<Value = WrapperCore> {
    (
        0usize..40,
        0usize..40,
        proptest::collection::vec(1usize..200, 0..6),
        1u64..300,
    )
        .prop_map(move |(inputs, outputs, chains, patterns)| {
            WrapperCore::new(format!("c{i}"), inputs, outputs, chains).with_patterns(patterns)
        })
}

fn arb_cores() -> impl Strategy<Value = Vec<WrapperCore>> {
    (1usize..6).prop_flat_map(|n| (0..n).map(arb_core).collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn wrapper_design_conserves_cells(core in arb_core(0), width in 1usize..10) {
        let d = design_wrapper(&core, width);
        let scan: usize = d.chains().iter().map(|c| c.scan_cells).sum();
        let ins: usize = d.chains().iter().map(|c| c.input_cells).sum();
        let outs: usize = d.chains().iter().map(|c| c.output_cells).sum();
        prop_assert_eq!(scan, core.scan_chains.iter().sum::<usize>());
        prop_assert_eq!(ins, core.inputs);
        prop_assert_eq!(outs, core.outputs);
        prop_assert_eq!(d.chains().len(), width);
    }

    #[test]
    fn wrapper_max_bounded_by_total_and_lower_bound(core in arb_core(0), width in 1usize..10) {
        let d = design_wrapper(&core, width);
        let total_in = core.inputs + core.scan_chains.iter().sum::<usize>();
        // Lower bound: ceil(total / width) or the longest single chain.
        let longest = core.scan_chains.iter().copied().max().unwrap_or(0);
        let lower = longest.max(total_in.div_ceil(width));
        prop_assert!(d.max_scan_in() >= lower.min(total_in));
        prop_assert!(d.max_scan_in() <= total_in);
    }

    #[test]
    fn from_core_spec_chain_sum_matches(scan in 0u64..5000, chains in 1usize..9) {
        let spec = CoreSpec::leaf("x", 3, 3, 0, scan, 10);
        let w = WrapperCore::from_core_spec(&spec, chains);
        prop_assert_eq!(w.scan_chains.iter().sum::<usize>() as u64, scan);
        // Balanced: lengths differ by at most one.
        if let (Some(&max), Some(&min)) =
            (w.scan_chains.iter().max(), w.scan_chains.iter().min())
        {
            prop_assert!(max - min <= 1);
        }
    }

    #[test]
    fn rectangle_schedule_never_oversubscribes(cores in arb_cores(), width in 1usize..8) {
        let s = schedule_rectangles(&cores, width).expect("schedules");
        prop_assert_eq!(s.entries.len(), cores.len());
        let mut events: Vec<u64> = s.entries.iter().flat_map(|e| [e.start, e.end]).collect();
        events.sort_unstable();
        events.dedup();
        for &t in &events {
            let used: usize = s
                .entries
                .iter()
                .filter(|e| e.start <= t && t < e.end)
                .map(|e| e.width)
                .sum();
            prop_assert!(used <= width, "oversubscribed at {}", t);
        }
        prop_assert!(s.utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn power_schedule_respects_budget(
        cores in arb_cores(),
        width in 1usize..8,
        powers in proptest::collection::vec(1u64..100, 6),
    ) {
        let pcs: Vec<PowerCore> = cores
            .iter()
            .zip(&powers)
            .map(|(c, &p)| PowerCore::new(c.clone(), p))
            .collect();
        let budget = powers.iter().take(pcs.len()).copied().max().unwrap_or(1) + 20;
        let s = schedule_power_constrained(&pcs, width, budget).expect("schedules");
        prop_assert!(peak_power(&s, &pcs) <= budget);
        prop_assert_eq!(s.entries.len(), pcs.len());
    }
}
