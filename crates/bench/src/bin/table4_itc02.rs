//! Regenerates Table 4: TDV comparison over the ten ITC'02 benchmark
//! SOCs, including the normalized-standard-deviation correlation.
//!
//! p34392 uses the exact embedded per-core data (Table 3); the other
//! nine use the analytic reconstruction (`modsoc-core::reconstruct`) of
//! the published aggregates. Per-row deltas against the paper are
//! printed at the end.

use modsoc_bench::pct_delta;
use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::reconstruct::reconstruct_table4;
use modsoc_core::report::render_survey;
use modsoc_core::tdv::TdvOptions;
use modsoc_soc::itc02::{p34392, table4};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = TdvOptions::tables_3_4();
    let mut analyses = Vec::new();
    for row in table4() {
        let soc = if row.name == "p34392" {
            p34392()
        } else {
            reconstruct_table4(row)?
        };
        analyses.push(SocTdvAnalysis::compute(&soc, &opts)?);
    }

    println!("== Table 4: ITC'02 benchmark SOCs (p34392 exact; others reconstructed) ==");
    println!("{}", render_survey(&analyses));

    println!("per-row delta vs paper (modular TDV change %):");
    for (a, row) in analyses.iter().zip(table4()) {
        // The paper's modular% for p34392 inherits its penalty decimal
        // typo (−86.0 printed, −94.5 consistent); report both.
        println!(
            "  {:<10} ours {:+7.1}%  paper {:+7.1}%  (delta {:+5.1} pp, ratio ours {:5.2} vs paper {:5.2} -> {:+.1}%)",
            row.name,
            a.modular_change_pct(),
            row.modular_pct,
            a.modular_change_pct() - row.modular_pct,
            a.monolithic_optimistic().total() as f64 / a.modular().total() as f64,
            row.reduction_ratio(),
            pct_delta(
                a.monolithic_optimistic().total() as f64 / a.modular().total() as f64,
                row.reduction_ratio()
            ),
        );
    }

    // The paper's correlation claim: reduction tracks pattern-count
    // variation; g12710 (nstd 0.18) and a586710 (nstd 1.95) are the
    // extremes.
    let mut pairs: Vec<(f64, f64)> = analyses
        .iter()
        .map(|a| (a.pattern_stats().normalized_stdev(), a.modular_change_pct()))
        .collect();
    pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
    let r = pearson(&pairs);
    println!("\ncorrelation(normalized stdev, modular TDV change): r = {r:.2} (paper: strongly negative)");
    Ok(())
}

fn pearson(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}
