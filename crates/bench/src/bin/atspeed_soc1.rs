//! Extension experiment: does the paper's modular TDV benefit carry over
//! to **at-speed** (transition-delay) test data?
//!
//! Same SOC1 construction and methodology as `table1_soc1`, but with
//! launch-on-capture transition-fault ATPG supplying the pattern counts.
//! The paper analyses stuck-at data only; at-speed pattern sets are
//! typically larger, so the same per-core-variation arithmetic applies
//! with higher stakes.
//!
//! Runtime: a few minutes in release mode (two-frame ATPG on the
//! flattened SOC).

use modsoc_core::experiment::{run_soc_experiment_tdf, ExperimentOptions};
use modsoc_core::report::render_core_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = modsoc_circuitgen::soc::soc1(1)?;
    eprintln!("[at-speed SOC1] per-core + flattened monolithic transition-fault ATPG ...");
    let exp = run_soc_experiment_tdf(&netlist, 200, &ExperimentOptions::paper_tables_1_2())?;

    println!("== SOC1, at-speed (LOC transition) test data ==");
    for m in &exp.cores {
        println!(
            "  {}: {} TDF patterns, {:.1}% coverage over LOC-testable",
            m.name,
            m.patterns,
            m.fault_coverage * 100.0
        );
    }
    println!(
        "  flat: {} TDF patterns, {:.1}% coverage over LOC-testable\n",
        exp.t_mono,
        exp.mono_coverage * 100.0
    );
    println!("{}", render_core_table(&exp.soc, &exp.analysis));
    println!(
        "equation 2 at speed: T_mono {} vs max core {} — strict: {}",
        exp.t_mono,
        exp.soc.max_core_patterns(),
        exp.eq2_strict
    );
    println!(
        "at-speed TDV reduction ratio: {:.2} (stuck-at version of this experiment: ~2.4)",
        exp.analysis.reduction_ratio()
    );
    Ok(())
}
