//! Extension sweep: hybrid BIST + deterministic top-up vs pure ATE.
//!
//! For an s713-lookalike core, sweep the on-chip (LFSR) pattern budget
//! and measure how much tester-stored stimulus remains. This is the
//! test-data-volume lever *orthogonal* to the paper's modularity
//! argument — and it composes with it: every core's top-up set still
//! obeys the per-core pattern-count arithmetic of Equations 1–8.

use modsoc_atpg::bist::{run_hybrid, Lfsr};
use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_circuitgen::{generate, profile::iscas};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = generate(&iscas::s713(1))?;
    let model = circuit.to_test_model()?.circuit;
    let width = model.input_count();

    let pure = Atpg::new(AtpgOptions::deterministic_only()).run(&circuit)?;
    println!(
        "core: s713 lookalike, {} gates; pure ATE: {} patterns, {} stimulus bits, {:.2}% coverage",
        circuit.gate_count(),
        pure.pattern_count(),
        pure.pattern_count() * width,
        pure.fault_coverage() * 100.0
    );
    println!(
        "\n{:>12} {:>12} {:>14} {:>16} {:>10}",
        "bist budget", "bist cov %", "top-up pats", "external bits", "vs pure"
    );
    for budget in [0usize, 64, 256, 1024, 4096, 16384] {
        let hybrid = run_hybrid(&model, Lfsr::standard(0xB157), budget, 200)?;
        let pure_bits = (pure.pattern_count() * width) as f64;
        println!(
            "{budget:>12} {:>11.1}% {:>14} {:>16} {:>9.1}%",
            hybrid.bist.coverage * 100.0,
            hybrid.top_up.len(),
            hybrid.external_stimulus_bits,
            hybrid.external_stimulus_bits as f64 / pure_bits * 100.0
        );
    }
    println!(
        "\n(on-chip patterns trade tester data for test time; the residual top-up\n\
         sets still differ per core, so modular testing compounds the saving)"
    );
    Ok(())
}
