//! Per-phase ATPG wall-clock benchmark over circuitgen profiles.
//!
//! Times the pieces the shared-structural-index rework touches, one
//! profile per row: index construction, fault collapsing, a PODEM sweep
//! over the collapsed representatives, and the full engine run (whose
//! pattern counts are the paper's core quantity). With `--json <path>`
//! the measurements are also written as a JSON document so successive
//! runs can be diffed; the checked-in `BENCH_pr3.json` records the
//! numbers at the time the incremental PODEM landed.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use modsoc_atpg::collapse::collapse_faults_with;
use modsoc_atpg::engine::{Atpg, AtpgOptions};
use modsoc_atpg::fault::Fault;
use modsoc_atpg::podem::{Podem, PodemOutcome};
use modsoc_circuitgen::profile::iscas;
use modsoc_circuitgen::{generate, CoreProfile};
use modsoc_netlist::StructuralIndex;

struct PhaseRow {
    profile: String,
    gates: usize,
    collapsed_faults: usize,
    index_ms: f64,
    collapse_ms: f64,
    podem_sweep_ms: f64,
    podem_tests: usize,
    engine_ms: f64,
    patterns: usize,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn measure(profile: &CoreProfile) -> Result<PhaseRow, Box<dyn std::error::Error>> {
    let circuit = generate(profile)?;
    let model = circuit.to_test_model()?.circuit;

    let t = Instant::now();
    let index = Arc::new(StructuralIndex::build(&model)?);
    let index_ms = ms(t);

    let t = Instant::now();
    let collapsed = collapse_faults_with(&model, &index);
    let collapse_ms = ms(t);
    let reps: Vec<Fault> = collapsed.representatives().to_vec();

    let t = Instant::now();
    let mut podem = Podem::with_index(&model, Arc::clone(&index), 200)?;
    let mut podem_tests = 0usize;
    for &f in &reps {
        if matches!(podem.generate(f)?, PodemOutcome::Test(_)) {
            podem_tests += 1;
        }
    }
    let podem_sweep_ms = ms(t);

    let t = Instant::now();
    let result = Atpg::new(AtpgOptions::default()).run(&circuit)?;
    let engine_ms = ms(t);

    Ok(PhaseRow {
        profile: profile.name.clone(),
        gates: model.node_count(),
        collapsed_faults: reps.len(),
        index_ms,
        collapse_ms,
        podem_sweep_ms,
        podem_tests,
        engine_ms,
        patterns: result.pattern_count(),
    })
}

fn json_document(rows: &[PhaseRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"atpg_phase_bench\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"profile\": \"{}\", \"gates\": {}, \"collapsed_faults\": {}, \
             \"index_ms\": {:.3}, \"collapse_ms\": {:.3}, \"podem_sweep_ms\": {:.3}, \
             \"podem_tests\": {}, \"engine_ms\": {:.3}, \"patterns\": {}}}{sep}",
            r.profile,
            r.gates,
            r.collapsed_faults,
            r.index_ms,
            r.collapse_ms,
            r.podem_sweep_ms,
            r.podem_tests,
            r.engine_ms,
            r.patterns,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(it.next().ok_or("--json requires a path argument")?.clone());
            }
            "--quick" => quick = true,
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    let mut profiles = vec![iscas::s713(1), iscas::s1423(1)];
    if !quick {
        profiles.push(iscas::s13207(1));
    }
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>7} {:>7} {:>10} {:>12} {:>14} {:>10} {:>10}",
        "profile",
        "gates",
        "faults",
        "index ms",
        "collapse ms",
        "podem ms",
        "engine ms",
        "patterns"
    );
    for p in &profiles {
        let row = measure(p)?;
        println!(
            "{:<10} {:>7} {:>7} {:>10.3} {:>12.3} {:>14.1} {:>10.1} {:>10}",
            row.profile,
            row.gates,
            row.collapsed_faults,
            row.index_ms,
            row.collapse_ms,
            row.podem_sweep_ms,
            row.engine_ms,
            row.patterns
        );
        rows.push(row);
    }

    if let Some(path) = json_path {
        std::fs::write(&path, json_document(&rows))?;
        println!("wrote {path}");
    }
    Ok(())
}
