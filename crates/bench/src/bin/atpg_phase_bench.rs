//! Per-phase ATPG wall-clock benchmark over circuitgen profiles.
//!
//! Times the pieces the shared-structural-index rework touches, one
//! profile per row: index construction, fault collapsing, a PODEM sweep
//! over the collapsed representatives, and the full engine run (whose
//! pattern counts are the paper's core quantity). Each row also embeds
//! the engine's deterministic metrics counters (PODEM decisions,
//! fault-sim evaluations, …), so a perf diff can distinguish "the same
//! work got slower" from "the algorithm did different work".
//!
//! * `--json <path>` writes the measurements as a JSON document so
//!   successive runs can be diffed; the checked-in `BENCH_pr7.json`
//!   records the numbers at the time the wide-word fault-sim kernel
//!   landed (`BENCH_pr3.json` is the older incremental-PODEM baseline).
//! * `--check <baseline.json>` re-runs the benchmark and compares each
//!   profile's phase times against the baseline document: any phase more
//!   than `--tolerance` (default 0.25 = +25%) slower, or any drift in
//!   the deterministic `patterns` count, is a regression and the process
//!   exits nonzero. Phase fields absent from a baseline row are skipped,
//!   so old baselines keep working. To re-baseline after an intentional
//!   perf change, run with `--json BENCH_pr7.json` on a quiet machine and
//!   commit the file.
//! * `--quick` drops the largest profile (for CI smoke runs).
//! * `--repeat <n>` (default 3) measures each profile `n` times and keeps
//!   the per-phase minimum — the robust estimator for a timing gate on a
//!   machine with background noise. Deterministic fields (pattern counts,
//!   engine counters) must agree across repeats or the bench errors out.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use modsoc_atpg::collapse::collapse_faults_with;
use modsoc_atpg::engine::{Atpg, AtpgOptions};
use modsoc_atpg::fault::Fault;
use modsoc_atpg::fault_sim::{FaultSimulator, PackedWord};
use modsoc_atpg::podem::{Podem, PodemOutcome};
use modsoc_circuitgen::profile::iscas;
use modsoc_circuitgen::{generate, CoreProfile};
use modsoc_metrics::json::JsonValue;
use modsoc_metrics::{json, Counter, MetricsSink, MetricsSnapshot, RecordingSink};
use modsoc_netlist::StructuralIndex;

struct PhaseRow {
    profile: String,
    gates: usize,
    collapsed_faults: usize,
    index_ms: f64,
    collapse_ms: f64,
    podem_sweep_ms: f64,
    podem_tests: usize,
    engine_ms: f64,
    /// Wide-kernel fault-sim sweep (the engine's final filled patterns
    /// against every collapsed representative) — the gated hot loop.
    fault_sim_ms: f64,
    /// The same sweep on the narrow 64-pattern reference path; reported
    /// for the speedup ratio but never gated (it is the old code).
    fault_sim_ref_ms: f64,
    patterns: usize,
    /// Deterministic engine counters for the full-engine run.
    engine_metrics: MetricsSnapshot,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn measure(profile: &CoreProfile) -> Result<PhaseRow, Box<dyn std::error::Error>> {
    let circuit = generate(profile)?;
    let model = circuit.to_test_model()?.circuit;

    let t = Instant::now();
    let index = Arc::new(StructuralIndex::build(&model)?);
    let index_ms = ms(t);

    let t = Instant::now();
    let collapsed = collapse_faults_with(&model, &index);
    let collapse_ms = ms(t);
    let reps: Vec<Fault> = collapsed.representatives().to_vec();

    let t = Instant::now();
    let mut podem = Podem::with_index(&model, Arc::clone(&index), 200)?;
    let mut podem_tests = 0usize;
    for &f in &reps {
        if matches!(podem.generate(f)?, PodemOutcome::Test(_)) {
            podem_tests += 1;
        }
    }
    let podem_sweep_ms = ms(t);

    let sink = Arc::new(RecordingSink::new());
    let t = Instant::now();
    let result = Atpg::with_sink(
        AtpgOptions::default(),
        Arc::clone(&sink) as Arc<dyn MetricsSink>,
    )
    .run(&circuit)?;
    let engine_ms = ms(t);

    // Fault-sim sweep: per-fault n-detect counts of the engine's final
    // filled patterns over every collapsed representative — the
    // full-matrix workload (no fault dropping) behind
    // `AtpgResult::n_detect_counts` and the compaction/diagnosis
    // matrices, where the narrow path must re-propagate every fault once
    // per 64-pattern chunk. Measured once on the wide blocked kernel and
    // once on the narrow reference; the counts must agree exactly, so
    // the bench doubles as a differential oracle on real-sized profiles.
    let filled = result.patterns.fill_all(result.fill);
    let mut fsim = FaultSimulator::with_index(&model, Arc::clone(&index))?;
    let t = Instant::now();
    let mut wide_counts = vec![0u32; reps.len()];
    for chunk in filled.chunks(modsoc_atpg::fault_sim::BLOCK_BITS) {
        let (good, n) = fsim.good_blocks(chunk)?;
        let active = modsoc_atpg::fault_sim::block_active_mask(n);
        for (c, &f) in wide_counts.iter_mut().zip(&reps) {
            *c += fsim.block_detection_mask(&good, &active, f).count_ones();
        }
    }
    let fault_sim_ms = ms(t);

    let t = Instant::now();
    let mut narrow_counts = vec![0u32; reps.len()];
    for chunk in filled.chunks(64) {
        for (c, m) in narrow_counts
            .iter_mut()
            .zip(fsim.detection_masks(chunk, &reps)?)
        {
            *c += m.count_ones();
        }
    }
    let fault_sim_ref_ms = ms(t);
    if wide_counts != narrow_counts {
        return Err(format!(
            "profile {}: wide and narrow fault-sim kernels disagree",
            profile.name
        )
        .into());
    }

    Ok(PhaseRow {
        profile: profile.name.clone(),
        gates: model.node_count(),
        collapsed_faults: reps.len(),
        index_ms,
        collapse_ms,
        podem_sweep_ms,
        podem_tests,
        engine_ms,
        fault_sim_ms,
        fault_sim_ref_ms,
        patterns: result.pattern_count(),
        engine_metrics: sink.snapshot(),
    })
}

/// Measure `profile` `repeat` times, keeping the minimum of each timing
/// field. Timing minima are robust against background-load noise;
/// deterministic fields must be identical across repeats.
fn measure_best_of(
    profile: &CoreProfile,
    repeat: usize,
) -> Result<PhaseRow, Box<dyn std::error::Error>> {
    let mut best = measure(profile)?;
    for _ in 1..repeat {
        let next = measure(profile)?;
        if next.patterns != best.patterns
            || !next.engine_metrics.deterministic_eq(&best.engine_metrics)
        {
            return Err(format!(
                "profile {}: deterministic fields diverged between repeats \
                 (patterns {} vs {})",
                profile.name, best.patterns, next.patterns
            )
            .into());
        }
        best.index_ms = best.index_ms.min(next.index_ms);
        best.collapse_ms = best.collapse_ms.min(next.collapse_ms);
        best.podem_sweep_ms = best.podem_sweep_ms.min(next.podem_sweep_ms);
        best.engine_ms = best.engine_ms.min(next.engine_ms);
        best.fault_sim_ms = best.fault_sim_ms.min(next.fault_sim_ms);
        best.fault_sim_ref_ms = best.fault_sim_ref_ms.min(next.fault_sim_ref_ms);
    }
    Ok(best)
}

fn json_document(rows: &[PhaseRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"atpg_phase_bench\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let mut counters = String::new();
        for (j, c) in Counter::ALL.iter().enumerate() {
            if j > 0 {
                counters.push_str(", ");
            }
            let _ = write!(
                counters,
                "\"{}\": {}",
                c.name(),
                r.engine_metrics.counter(*c)
            );
        }
        let _ = writeln!(
            out,
            "    {{\"profile\": \"{}\", \"gates\": {}, \"collapsed_faults\": {}, \
             \"index_ms\": {:.3}, \"collapse_ms\": {:.3}, \"podem_sweep_ms\": {:.3}, \
             \"podem_tests\": {}, \"engine_ms\": {:.3}, \"fault_sim_ms\": {:.3}, \
             \"fault_sim_ref_ms\": {:.3}, \"patterns\": {}, \
             \"counters\": {{{counters}}}}}{sep}",
            r.profile,
            r.gates,
            r.collapsed_faults,
            r.index_ms,
            r.collapse_ms,
            r.podem_sweep_ms,
            r.podem_tests,
            r.engine_ms,
            r.fault_sim_ms,
            r.fault_sim_ref_ms,
            r.patterns,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The phase-time fields a baseline row is compared on. A field missing
/// from a baseline row is skipped, so gating against a pre-`fault_sim_ms`
/// baseline still works. `fault_sim_ref_ms` is deliberately not gated —
/// it exists only to report the wide/narrow speedup ratio.
const CHECKED_PHASES: [&str; 5] = [
    "index_ms",
    "collapse_ms",
    "podem_sweep_ms",
    "engine_ms",
    "fault_sim_ms",
];

fn row_phase(row: &PhaseRow, field: &str) -> f64 {
    match field {
        "index_ms" => row.index_ms,
        "collapse_ms" => row.collapse_ms,
        "podem_sweep_ms" => row.podem_sweep_ms,
        "engine_ms" => row.engine_ms,
        "fault_sim_ms" => row.fault_sim_ms,
        _ => unreachable!("unknown checked phase field"),
    }
}

/// Compare measured rows against a baseline document; returns the list
/// of regression descriptions (empty = gate passes). Profiles missing
/// from either side are skipped (e.g. `--quick` vs a full baseline).
fn check_against_baseline(
    rows: &[PhaseRow],
    baseline: &JsonValue,
    tolerance: f64,
) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let base_rows = baseline
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("baseline has no \"rows\" array")?;
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for row in rows {
        let Some(base) = base_rows
            .iter()
            .find(|b| b.get("profile").and_then(JsonValue::as_str) == Some(row.profile.as_str()))
        else {
            eprintln!("note: profile {} not in baseline, skipping", row.profile);
            continue;
        };
        compared += 1;
        // Pattern counts are deterministic: any drift means the engine
        // now does different work, which a timing tolerance must not
        // absorb silently.
        if let Some(base_patterns) = base.get("patterns").and_then(JsonValue::as_u64) {
            if base_patterns != row.patterns as u64 {
                failures.push(format!(
                    "{}: patterns changed {} -> {} (deterministic field; \
                     re-baseline only with an intentional algorithm change)",
                    row.profile, base_patterns, row.patterns
                ));
            }
        }
        for field in CHECKED_PHASES {
            let Some(base_ms) = base.get(field).and_then(JsonValue::as_f64) else {
                continue;
            };
            let now_ms = row_phase(row, field);
            let limit = base_ms * (1.0 + tolerance);
            if now_ms > limit {
                failures.push(format!(
                    "{}: {} regressed {:.3}ms -> {:.3}ms (limit {:.3}ms at +{:.0}%)",
                    row.profile,
                    field,
                    base_ms,
                    now_ms,
                    limit,
                    tolerance * 100.0
                ));
            }
        }
    }
    if compared == 0 {
        return Err("no profile overlaps between this run and the baseline".into());
    }
    Ok(failures)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut quick = false;
    let mut repeat = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(it.next().ok_or("--json requires a path argument")?.clone());
            }
            "--check" => {
                check_path = Some(
                    it.next()
                        .ok_or("--check requires a baseline path argument")?
                        .clone(),
                );
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance requires a fraction argument")?
                    .parse()
                    .map_err(|_| "--tolerance must be a number (e.g. 0.25)")?;
                if tolerance.is_nan() || tolerance < 0.0 {
                    return Err("--tolerance must be non-negative".into());
                }
            }
            "--quick" => quick = true,
            "--repeat" => {
                repeat = it
                    .next()
                    .ok_or("--repeat requires a count argument")?
                    .parse()
                    .map_err(|_| "--repeat must be a positive integer")?;
                if repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    let mut profiles = vec![iscas::s713(1), iscas::s1423(1)];
    if !quick {
        profiles.push(iscas::s13207(1));
        profiles.push(iscas::s15850(1));
    }
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>7} {:>7} {:>10} {:>12} {:>14} {:>10} {:>9} {:>9} {:>7} {:>10}",
        "profile",
        "gates",
        "faults",
        "index ms",
        "collapse ms",
        "podem ms",
        "engine ms",
        "fsim ms",
        "ref ms",
        "x",
        "patterns"
    );
    for p in &profiles {
        let row = measure_best_of(p, repeat)?;
        let speedup = if row.fault_sim_ms > 0.0 {
            row.fault_sim_ref_ms / row.fault_sim_ms
        } else {
            0.0
        };
        println!(
            "{:<10} {:>7} {:>7} {:>10.3} {:>12.3} {:>14.1} {:>10.1} {:>9.2} {:>9.2} {:>7.1} {:>10}",
            row.profile,
            row.gates,
            row.collapsed_faults,
            row.index_ms,
            row.collapse_ms,
            row.podem_sweep_ms,
            row.engine_ms,
            row.fault_sim_ms,
            row.fault_sim_ref_ms,
            speedup,
            row.patterns
        );
        rows.push(row);
    }

    if let Some(path) = json_path {
        std::fs::write(&path, json_document(&rows))?;
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let failures = check_against_baseline(&rows, &baseline, tolerance)?;
        if failures.is_empty() {
            println!(
                "perf gate: OK vs {path} (tolerance +{:.0}%)",
                tolerance * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("perf gate: REGRESSION — {f}");
            }
            return Err(format!(
                "{} perf regression(s) vs {path}; re-baseline with --json if intentional",
                failures.len()
            )
            .into());
        }
    }
    Ok(())
}
