//! Regenerates the paper's Figures 1–2 worked example (§3).
//!
//! Part 1 replays the arithmetic: three cones with 20/10/20 flip-flops
//! and 200/300/400 partial patterns give 20,000 monolithic stimulus bits
//! vs 15,000 modular (25% reduction).
//!
//! Part 2 demonstrates the *mechanism* on real netlists: a generated
//! design with nearly-disjoint cones (Figure 1(a)) merges its per-cone
//! cubes almost perfectly, while the same cones with heavy support
//! overlap (Figure 1(b)) conflict and need more circuit-level patterns.

use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_circuitgen::{generate, CoreProfile};
use modsoc_core::{SocTdvAnalysis, TdvOptions};
use modsoc_netlist::cone::extract_cones;
use modsoc_soc::{CoreSpec, Soc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the exact arithmetic of §3. ---
    let mut soc = Soc::new("fig1");
    for (name, ffs, patterns) in [("ConeA", 20, 200), ("ConeB", 10, 300), ("ConeC", 20, 400)] {
        soc.add_core(CoreSpec::leaf(name, 0, 0, 0, ffs, patterns))?;
    }
    let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::default())?;
    let mono = analysis.monolithic_optimistic().stimulus;
    let modular = analysis.modular().stimulus;
    println!("== Figure 1/2 worked example (paper §3) ==");
    println!("cones: A(20 FF, 200 pat) B(10 FF, 300 pat) C(20 FF, 400 pat)");
    println!("monolithic stimulus bits: {mono}   (paper: 20,000)");
    println!("modular stimulus bits:    {modular}   (paper: 15,000)");
    println!(
        "reduction: {:.1}%          (paper: 25%)",
        (1.0 - modular as f64 / mono as f64) * 100.0
    );

    // --- Part 2: the mechanism on real netlists. Per-cone partial
    // pattern counts vs the whole-circuit count: with disjoint cones
    // (Figure 1(a)) perfect merging keeps the circuit count near the
    // per-cone max; overlapping cones (Figure 1(b)) conflict and push
    // it above.
    println!("\n== Per-cone vs circuit pattern counts (Figure 1(a) vs 1(b)) ==");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "overlap", "max cone", "sum cone", "circuit", "ratio", "conflicts"
    );
    let engine = Atpg::new(AtpgOptions::deterministic_only());
    let raw_cube_engine = {
        let mut opts = AtpgOptions::deterministic_only();
        opts.merge_cubes = false;
        opts.reverse_compaction = false;
        Atpg::new(opts)
    };
    // Cones overlap when they are wide relative to the input pool: 8
    // cones of width 4 fit 32 inputs disjointly (Figure 1(a)); width 14
    // forces heavy sharing (Figure 1(b)).
    for (width, overlap) in [(4usize, 0.0), (8, 0.5), (14, 1.0)] {
        let mut profile = CoreProfile::new(format!("w{width}"), 32, 8, 0).with_seed(11);
        profile.overlap = overlap;
        profile.min_cone_width = width;
        profile.max_cone_width = width + 1;
        profile.xor_fraction = 0.3;
        let circuit = generate(&profile)?;
        let cones = extract_cones(&circuit)?;
        let mut max_cone = 0usize;
        let mut sum_cone = 0usize;
        for cone in cones.cones() {
            let sub = modsoc_netlist::cone::cone_subcircuit(&circuit, cone)?;
            let t = engine.run(&sub)?.pattern_count();
            max_cone = max_cone.max(t);
            sum_cone += t;
        }
        let whole = engine.run(&circuit)?.pattern_count();
        // Conflict density of the raw (unmerged) cube set: the §3
        // mechanism — overlapping cones produce conflicting cubes.
        let raw = raw_cube_engine.run(&circuit)?;
        let conflicts = modsoc_atpg::compact::conflict_stats(&raw.patterns);
        println!(
            "{:>8.2} {:>9} {:>9} {:>9} {:>8.2} {:>9.1}%",
            cones.overlap_fraction(),
            max_cone,
            sum_cone,
            whole,
            whole as f64 / max_cone as f64,
            conflicts.conflict_density * 100.0
        );
    }
    println!(
        "(equation 2 in action: the circuit-level count always exceeds the per-cone max, and\n\
         wider/more-overlapping cones inflate it further — compaction cannot merge conflicting cubes)"
    );
    Ok(())
}
