//! Regenerates Table 2: SOC2 (s953 + s5378 + s13207 + s15850, Figure 5).
//!
//! Same structure as `table1_soc1`; the live part runs ATPG on a ~30k
//! gate flattened design and takes a few minutes in release mode. Pass
//! `--paper-only` to skip it.

use modsoc_bench::{jobs_from_args, print_paper_table, run_live_soc_opts};
use modsoc_core::experiment::ExperimentOptions;
use modsoc_soc::itc02;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_only = args.iter().any(|a| a == "--paper-only");
    let jobs = jobs_from_args(&args)?;

    let soc = itc02::soc2();
    let paper = print_paper_table("Table 2 / SOC2", &soc, itc02::SOC2_MEASURED_TMONO)?;
    println!(
        "paper's own summary: ratio 2.22, pessimistic 1.06, pessimism 2.1x; ours from its data: \
         {:.2} / {:.2} / {:.1}x\n",
        paper.reduction_ratio(),
        paper.pessimistic_reduction_ratio(),
        paper.pessimism_factor()
    );

    if paper_only {
        return Ok(());
    }
    let netlist = modsoc_circuitgen::soc::soc2(1)?;
    let options = ExperimentOptions::paper_tables_1_2().with_jobs(jobs);
    let exp = run_live_soc_opts("Table 2 / SOC2", &netlist, 2.22, 1.06, &options)?;
    if !exp.eq2_strict {
        eprintln!("note: equation 2 was not strict on this seed");
    }
    Ok(())
}
