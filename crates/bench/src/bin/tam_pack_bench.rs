//! Rectangle bin-packing wrapper/TAM co-optimizer benchmark over the
//! ITC'02 SOCs.
//!
//! One row per SOC: the diagonal-length-first strip packer
//! (`modsoc_tam::binpack::pack`) at a 16-wire TAM budget, the existing
//! architecture sweep's best at the same width for comparison, and the
//! power-ceiling-constrained variant. The timing field sums packs over
//! widths {8, 16, 32, 64} so the gated number is a real workload rather
//! than a single microsecond-scale call. Deterministic fields
//! (`pack_time`, `best_time`, `constrained_time`, `backfills`) are pure
//! functions of the SOC tables — any drift means the heuristic changed,
//! which a timing tolerance must not absorb silently.
//!
//! * `--json <path>` writes the measurements as a JSON document; the
//!   checked-in `BENCH_tam.json` records the numbers at the time the
//!   packer landed. To re-baseline after an intentional change, run with
//!   `--json BENCH_tam.json` on a quiet machine and commit the file.
//! * `--check <baseline.json>` compares each SOC's `pack_ms` against the
//!   baseline (default tolerance +25%) and every deterministic field
//!   exactly; regressions exit nonzero.
//! * `--quick` drops the two largest SOCs (for CI smoke runs).
//! * `--repeat <n>` (default 3) keeps the per-row timing minimum;
//!   deterministic fields must agree across repeats.

use std::fmt::Write as _;
use std::time::Instant;

use modsoc_core::reconstruct::reconstruct_table4;
use modsoc_metrics::json::{self, JsonValue};
use modsoc_soc::itc02;
use modsoc_soc::Soc;
use modsoc_tam::binpack::pack;
use modsoc_tam::constraints::{pack_constrained, packed_peak_power, power_cores, scan_power_model};
use modsoc_tam::optimize::best_at_width;
use modsoc_tam::wrapper::WrapperCore;

/// The width the deterministic comparison fields are recorded at.
const REPORT_WIDTH: usize = 16;
/// The widths summed into the gated `pack_ms` timing.
const TIMED_WIDTHS: [usize; 4] = [8, 16, 32, 64];
const CHAINS_PER_CORE: usize = 8;

struct PackRow {
    soc: String,
    cores: usize,
    pack_ms: f64,
    pack_time: u64,
    best_time: u64,
    backfills: usize,
    utilization: f64,
    constrained_time: u64,
    peak_power: u64,
    ceiling: u64,
}

fn soc_list() -> Result<Vec<(String, Soc)>, Box<dyn std::error::Error>> {
    let mut socs = vec![
        ("soc1".to_string(), itc02::soc1()),
        ("soc2".to_string(), itc02::soc2()),
    ];
    for row in itc02::table4() {
        let soc = if row.name == "p34392" {
            itc02::p34392()
        } else {
            reconstruct_table4(row).map_err(|e| format!("reconstructing {}: {e}", row.name))?
        };
        socs.push((row.name.to_string(), soc));
    }
    Ok(socs)
}

fn measure(name: &str, soc: &Soc) -> Result<PackRow, Box<dyn std::error::Error>> {
    let cores: Vec<WrapperCore> = soc
        .iter()
        .filter(|(_, c)| c.patterns > 0)
        .map(|(_, c)| WrapperCore::from_core_spec(c, CHAINS_PER_CORE))
        .collect();

    let t = Instant::now();
    for w in TIMED_WIDTHS {
        let _ = pack(&cores, w).map_err(|e| format!("{name} at width {w}: {e}"))?;
    }
    let pack_ms = t.elapsed().as_secs_f64() * 1e3;

    let packed = pack(&cores, REPORT_WIDTH)?;
    let best = best_at_width(&cores, REPORT_WIDTH)?;

    // A ceiling midway between "one core at a time" and "everything at
    // once": half the total rating, floored at the hungriest single core
    // so the packing is always feasible.
    let pcs = power_cores(&cores);
    let total: u64 = cores.iter().map(scan_power_model).sum();
    let hungriest = cores.iter().map(scan_power_model).max().unwrap_or(0);
    let ceiling = hungriest.max(total / 2);
    let constrained = pack_constrained(&pcs, REPORT_WIDTH, ceiling)
        .map_err(|e| format!("{name} constrained: {e}"))?;

    Ok(PackRow {
        soc: name.to_string(),
        cores: cores.len(),
        pack_ms,
        pack_time: packed.makespan(),
        best_time: best.time,
        backfills: packed.backfills(),
        utilization: packed.utilization(),
        constrained_time: constrained.makespan(),
        peak_power: packed_peak_power(&constrained, &pcs),
        ceiling,
    })
}

/// Measure `repeat` times keeping the timing minimum; deterministic
/// fields must be identical across repeats.
fn measure_best_of(
    name: &str,
    soc: &Soc,
    repeat: usize,
) -> Result<PackRow, Box<dyn std::error::Error>> {
    let mut best = measure(name, soc)?;
    for _ in 1..repeat {
        let next = measure(name, soc)?;
        if next.pack_time != best.pack_time
            || next.best_time != best.best_time
            || next.constrained_time != best.constrained_time
            || next.backfills != best.backfills
        {
            return Err(format!(
                "soc {name}: deterministic fields diverged between repeats \
                 (pack_time {} vs {})",
                best.pack_time, next.pack_time
            )
            .into());
        }
        best.pack_ms = best.pack_ms.min(next.pack_ms);
    }
    Ok(best)
}

fn json_document(rows: &[PackRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"tam_pack_bench\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"soc\": \"{}\", \"cores\": {}, \"pack_ms\": {:.3}, \"pack_time\": {}, \
             \"best_time\": {}, \"backfills\": {}, \"utilization\": {:.4}, \
             \"constrained_time\": {}, \"peak_power\": {}, \"ceiling\": {}}}{sep}",
            r.soc,
            r.cores,
            r.pack_ms,
            r.pack_time,
            r.best_time,
            r.backfills,
            r.utilization,
            r.constrained_time,
            r.peak_power,
            r.ceiling,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The deterministic baseline fields compared exactly; drift in any of
/// them means the heuristic now makes different placements.
const DETERMINISTIC_FIELDS: [&str; 4] = ["pack_time", "best_time", "constrained_time", "backfills"];

fn row_field(row: &PackRow, field: &str) -> u64 {
    match field {
        "pack_time" => row.pack_time,
        "best_time" => row.best_time,
        "constrained_time" => row.constrained_time,
        "backfills" => row.backfills as u64,
        _ => unreachable!("unknown deterministic field"),
    }
}

/// Compare measured rows against a baseline document; returns regression
/// descriptions (empty = gate passes). SOCs missing from either side are
/// skipped (e.g. `--quick` vs a full baseline).
fn check_against_baseline(
    rows: &[PackRow],
    baseline: &JsonValue,
    tolerance: f64,
) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let base_rows = baseline
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("baseline has no \"rows\" array")?;
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for row in rows {
        let Some(base) = base_rows
            .iter()
            .find(|b| b.get("soc").and_then(JsonValue::as_str) == Some(row.soc.as_str()))
        else {
            eprintln!("note: soc {} not in baseline, skipping", row.soc);
            continue;
        };
        compared += 1;
        for field in DETERMINISTIC_FIELDS {
            let Some(base_v) = base.get(field).and_then(JsonValue::as_u64) else {
                continue;
            };
            let now = row_field(row, field);
            if base_v != now {
                failures.push(format!(
                    "{}: {field} changed {base_v} -> {now} (deterministic field; \
                     re-baseline only with an intentional heuristic change)",
                    row.soc
                ));
            }
        }
        if let Some(base_ms) = base.get("pack_ms").and_then(JsonValue::as_f64) {
            let limit = base_ms * (1.0 + tolerance);
            if row.pack_ms > limit {
                failures.push(format!(
                    "{}: pack_ms regressed {:.3}ms -> {:.3}ms (limit {:.3}ms at +{:.0}%)",
                    row.soc,
                    base_ms,
                    row.pack_ms,
                    limit,
                    tolerance * 100.0
                ));
            }
        }
    }
    if compared == 0 {
        return Err("no SOC overlaps between this run and the baseline".into());
    }
    Ok(failures)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut quick = false;
    let mut repeat = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(it.next().ok_or("--json requires a path argument")?.clone());
            }
            "--check" => {
                check_path = Some(
                    it.next()
                        .ok_or("--check requires a baseline path argument")?
                        .clone(),
                );
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance requires a fraction argument")?
                    .parse()
                    .map_err(|_| "--tolerance must be a number (e.g. 0.25)")?;
                if tolerance.is_nan() || tolerance < 0.0 {
                    return Err("--tolerance must be non-negative".into());
                }
            }
            "--quick" => quick = true,
            "--repeat" => {
                repeat = it
                    .next()
                    .ok_or("--repeat requires a count argument")?
                    .parse()
                    .map_err(|_| "--repeat must be a positive integer")?;
                if repeat == 0 {
                    return Err("--repeat must be at least 1".into());
                }
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    let mut socs = soc_list()?;
    if quick {
        // The two largest reconstructions dominate wall time; CI smoke
        // runs gate on the rest.
        socs.retain(|(n, _)| n != "t512505" && n != "a586710");
    }

    let mut rows = Vec::new();
    println!(
        "{:<10} {:>5} {:>9} {:>13} {:>13} {:>9} {:>6} {:>13} {:>11} {:>11}",
        "soc",
        "cores",
        "pack ms",
        "pack time",
        "best time",
        "backfill",
        "util%",
        "constrained",
        "peak",
        "ceiling"
    );
    for (name, soc) in &socs {
        let row = measure_best_of(name, soc, repeat)?;
        println!(
            "{:<10} {:>5} {:>9.3} {:>13} {:>13} {:>9} {:>6.1} {:>13} {:>11} {:>11}",
            row.soc,
            row.cores,
            row.pack_ms,
            row.pack_time,
            row.best_time,
            row.backfills,
            row.utilization * 100.0,
            row.constrained_time,
            row.peak_power,
            row.ceiling
        );
        rows.push(row);
    }

    if let Some(path) = json_path {
        std::fs::write(&path, json_document(&rows))?;
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline = json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let failures = check_against_baseline(&rows, &baseline, tolerance)?;
        if failures.is_empty() {
            println!(
                "perf gate: OK vs {path} (tolerance +{:.0}%)",
                tolerance * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("perf gate: REGRESSION — {f}");
            }
            return Err(format!(
                "{} regression(s) vs {path}; re-baseline with --json if intentional",
                failures.len()
            )
            .into());
        }
    }
    Ok(())
}
