//! Ablation sweeps for the design choices DESIGN.md calls out.
//!
//! 1. **Pattern-count variation** — sweep the normalized standard
//!    deviation of core pattern counts at fixed volume and watch the
//!    modular reduction follow it (the paper's Table 4 correlation, now
//!    as a controlled experiment instead of ten observational points).
//! 2. **Terminal/scan ratio** — sweep core I/O richness at fixed scan to
//!    locate the crossover where wrapper penalty outweighs the benefit
//!    (the g12710 regime).
//! 3. **Chip-pin policy** — quantify how much the paper's two
//!    conventions (Tables 1/2 vs Table 3) change each headline number.

use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::tdv::TdvOptions;
use modsoc_soc::{CoreSpec, Soc};

fn build_soc(name: &str, spread: f64, io_per_core: u64) -> Soc {
    // 8 cores, constant total scan, pattern counts spread around 1000 by
    // the factor `spread` (0 = all equal, 1 = strongly skewed).
    let n = 8u64;
    let mut soc = Soc::new(name);
    let mut children = Vec::new();
    for i in 0..n {
        let factor = 1.0 + spread * (i as f64 - (n - 1) as f64 / 2.0) / ((n - 1) as f64 / 2.0);
        let patterns = (1000.0 * factor.max(0.02)) as u64;
        let id = soc
            .add_core(CoreSpec::leaf(
                format!("c{i}"),
                io_per_core / 2,
                io_per_core - io_per_core / 2,
                0,
                2000,
                patterns.max(1),
            ))
            .expect("valid spec");
        children.push(id);
    }
    soc.add_core(CoreSpec::parent("top", 64, 64, 0, 0, 0, children))
        .expect("valid spec");
    soc
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = TdvOptions::tables_3_4();

    println!("== Ablation 1: pattern-count variation vs modular reduction ==");
    println!("{:>7} {:>7} {:>10}", "spread", "nstd", "modular %");
    for spread in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
        let soc = build_soc("sweep", spread, 64);
        let a = SocTdvAnalysis::compute(&soc, &opts)?;
        println!(
            "{spread:>7.2} {:>7.2} {:>+9.1}%",
            a.pattern_stats().normalized_stdev(),
            a.modular_change_pct()
        );
    }
    println!("(more variation -> larger reduction; the Table 4 correlation, controlled)\n");

    println!("== Ablation 2: terminal richness vs wrapper penalty (g12710 regime) ==");
    println!(
        "{:>9} {:>10} {:>10} {:>10}",
        "io/core", "penalty %", "benefit %", "modular %"
    );
    let mut crossed = false;
    for io in [16u64, 64, 256, 1024, 4096, 16384] {
        let soc = build_soc("io", 0.3, io);
        let a = SocTdvAnalysis::compute(&soc, &opts)?;
        if a.modular_change_pct() > 0.0 && !crossed {
            crossed = true;
        }
        println!(
            "{io:>9} {:>+9.1}% {:>+9.1}% {:>+9.1}%",
            a.penalty_pct(),
            a.benefit_pct(),
            a.modular_change_pct()
        );
    }
    println!(
        "(crossover observed: {crossed} — IO-dominated cores make modular testing lose, as on g12710)\n"
    );

    println!("== Ablation 3: functional-register isolation (the paper's noted pessimism) ==");
    println!(
        "{:>7} {:>12} {:>10} {:>10}",
        "reuse", "penalty", "penalty %", "modular %"
    );
    {
        let soc = modsoc_soc::itc02::p34392();
        for reuse in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let o = TdvOptions::tables_3_4().with_functional_reuse(reuse);
            let a = SocTdvAnalysis::compute(&soc, &o)?;
            println!(
                "{reuse:>7.2} {:>12} {:>+9.2}% {:>+9.1}%",
                modsoc_core::report::fmt_u64(a.penalty()),
                a.penalty_pct(),
                a.modular_change_pct()
            );
        }
    }
    println!("(reusing functional registers as wrapper cells erases the isolation penalty)\n");

    println!("== Ablation 4: chip-pin policy ==");
    for (soc, t_mono) in [
        (
            modsoc_soc::itc02::soc1(),
            modsoc_soc::itc02::SOC1_MEASURED_TMONO,
        ),
        (
            modsoc_soc::itc02::soc2(),
            modsoc_soc::itc02::SOC2_MEASURED_TMONO,
        ),
    ] {
        let ex =
            SocTdvAnalysis::compute_with_measured_tmono(&soc, &TdvOptions::tables_1_2(), t_mono)?;
        let inc =
            SocTdvAnalysis::compute_with_measured_tmono(&soc, &TdvOptions::tables_3_4(), t_mono)?;
        println!(
            "{}: modular TDV exclude={} include={} (ratio {:.2} vs {:.2})",
            soc.name(),
            modsoc_core::report::fmt_u64(ex.modular().total()),
            modsoc_core::report::fmt_u64(inc.modular().total()),
            ex.reduction_ratio(),
            inc.reduction_ratio()
        );
    }
    Ok(())
}
