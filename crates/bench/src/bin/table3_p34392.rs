//! Regenerates Table 3: the per-core TDV computation for the
//! hierarchical ITC'02 SOC p34392 (Figure 3), bit-exact.

use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::report::{fmt_u64, render_core_table};
use modsoc_core::tdv::TdvOptions;
use modsoc_soc::itc02;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = itc02::p34392();
    let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4())?;
    println!("== Table 3: p34392 (hierarchical; core0 embeds 1,2,10,18; 2 embeds 3-9; 10 embeds 11-17; 18 embeds 19) ==");
    println!("{}", render_core_table(&soc, &analysis));
    println!(
        "SOC modular TDV: {}  (paper Table 3: {})",
        fmt_u64(analysis.modular().total()),
        fmt_u64(itc02::P34392_TDV_MODULAR)
    );
    assert_eq!(analysis.modular().total(), itc02::P34392_TDV_MODULAR);
    println!("bit-exact match: yes");

    let row = itc02::table4_row("p34392").expect("p34392 is in table 4");
    println!(
        "\nTable 4 cross-check: TDV_opt_mono {} (paper {}), penalty {} (paper {}, computed here \
         with the self-consistent O(core10)=107 — see EXPERIMENTS.md), benefit {} (paper {})",
        fmt_u64(analysis.monolithic_optimistic().total()),
        fmt_u64(row.tdv_opt_mono),
        fmt_u64(analysis.penalty()),
        fmt_u64(row.penalty),
        fmt_u64(analysis.benefit()),
        fmt_u64(row.benefit),
    );
    Ok(())
}
