//! Regenerates Table 1: SOC1 (s713 + s953 + 3×s1423, Figure 4).
//!
//! Prints (a) the published data, bit-exact from the transcribed table,
//! and (b) a live regeneration: synthetic ISCAS'89-lookalike cores wired
//! per Figure 4, per-core ATPG, flattened monolithic ATPG, and the TDV
//! comparison. Pass `--paper-only` to skip the (slower) live part.

use modsoc_bench::{jobs_from_args, print_paper_table, run_live_soc_opts};
use modsoc_core::experiment::ExperimentOptions;
use modsoc_soc::itc02;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_only = args.iter().any(|a| a == "--paper-only");
    let jobs = jobs_from_args(&args)?;

    let soc = itc02::soc1();
    let paper = print_paper_table("Table 1 / SOC1", &soc, itc02::SOC1_MEASURED_TMONO)?;
    println!(
        "paper's own summary: ratio 2.87, pessimistic 1.13, pessimism 2.5x; ours from its data: \
         {:.2} / {:.2} / {:.1}x\n",
        paper.reduction_ratio(),
        paper.pessimistic_reduction_ratio(),
        paper.pessimism_factor()
    );

    if paper_only {
        return Ok(());
    }
    let netlist = modsoc_circuitgen::soc::soc1(1)?;
    let options = ExperimentOptions::paper_tables_1_2().with_jobs(jobs);
    let exp = run_live_soc_opts("Table 1 / SOC1", &netlist, 2.87, 1.13, &options)?;
    assert!(
        exp.eq2_strict,
        "equation 2 should be strict on SOC1 (paper: 216 > 85)"
    );
    Ok(())
}
