//! TAM width sweep on p34392: test time vs TAM width per architecture —
//! the classic test-planning curve from the paper's cited context
//! (Goel & Marinissen, its ref 13), computed with this workspace's
//! wrapper/TAM layer on the same core data the TDV analysis uses.

use modsoc_core::tdv::TdvOptions;
use modsoc_core::timecost::time_cost;
use modsoc_soc::itc02;
use modsoc_tam::optimize::{best_at_width, sweep_architecture, sweep_rectangles};
use modsoc_tam::wrapper::WrapperCore;
use modsoc_tam::TamArchitecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = itc02::p34392();
    let cores: Vec<WrapperCore> = soc
        .iter()
        .filter(|(_, c)| c.patterns > 0)
        .map(|(_, c)| WrapperCore::from_core_spec(c, 8))
        .collect();
    const MAX_W: usize = 48;

    println!("== p34392: SOC test time (cycles) vs TAM width ==");
    let mux = sweep_architecture(TamArchitecture::Multiplexing, &cores, MAX_W)?;
    let daisy = sweep_architecture(TamArchitecture::Daisychain, &cores, MAX_W)?;
    let dist = sweep_architecture(TamArchitecture::Distribution, &cores, MAX_W)?;
    let flex = sweep_rectangles(&cores, MAX_W)?;
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "width", "multiplexing", "daisychain", "distribution", "rectangles"
    );
    for w in [1usize, 2, 4, 8, 16, 24, 32, 48] {
        let find = |s: &modsoc_tam::optimize::WidthSweep| {
            s.points
                .iter()
                .find(|p| p.width == w)
                .map_or("-".to_string(), |p| p.time.to_string())
        };
        println!(
            "{w:>6} {:>14} {:>14} {:>14} {:>14}",
            find(&mux),
            find(&daisy),
            find(&dist),
            find(&flex)
        );
    }
    if let Some(knee) = flex.knee(0.05) {
        println!(
            "\nrectangle-schedule knee (5% threshold): width {} at {} cycles",
            knee.width, knee.time
        );
    }
    let best = best_at_width(&cores, 32)?;
    println!(
        "best configuration at width 32: {:?} ({} cycles)",
        best.architecture
            .map_or("Rectangles".to_string(), |a| format!("{a:?}")),
        best.time
    );

    println!("\n== joint view: the TDV analysis is width-independent, time is not ==");
    for w in [8usize, 16, 32] {
        let tc = time_cost(&soc, &TdvOptions::tables_3_4(), None, w, 8)?;
        println!(
            "width {w:>2}: modular TDV {} bits (constant), modular time {} cycles, mono time {} cycles",
            tc.tdv.modular().total(),
            tc.modular_time,
            tc.monolithic_time
        );
    }
    Ok(())
}
