//! Shared helpers for the experiment binaries and benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §5 for the index); each Criterion bench under
//! `benches/` measures the regeneration workload. The helpers here keep
//! the two in sync.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use modsoc_circuitgen::SocNetlist;
use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::experiment::{run_soc_experiment, ExperimentOptions, SocExperiment};
use modsoc_core::tdv::TdvOptions;
use modsoc_core::AnalysisError;

/// Percent difference of `ours` versus `paper`.
#[must_use]
pub fn pct_delta(ours: f64, paper: f64) -> f64 {
    if paper == 0.0 {
        return 0.0;
    }
    (ours - paper) / paper * 100.0
}

/// Parse a `--jobs N` flag from a binary's argument list (`0` = auto).
/// Returns `1` (sequential) when the flag is absent.
///
/// # Errors
///
/// Returns a message when the flag has a missing or non-numeric value.
pub fn jobs_from_args(args: &[String]) -> Result<usize, String> {
    match args.iter().position(|a| a == "--jobs") {
        None => Ok(1),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| "--jobs requires a value".to_string())?
            .parse()
            .map_err(|_| "--jobs is not a valid number".to_string()),
    }
}

/// Run the live (netlist + ATPG) experiment for one of the paper's SOC
/// constructions and print the comparison against the published
/// numbers.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn run_live_soc(
    label: &str,
    netlist: &SocNetlist,
    paper_ratio: f64,
    paper_pessimistic: f64,
) -> Result<SocExperiment, AnalysisError> {
    run_live_soc_opts(
        label,
        netlist,
        paper_ratio,
        paper_pessimistic,
        &ExperimentOptions::paper_tables_1_2(),
    )
}

/// [`run_live_soc`] with explicit [`ExperimentOptions`] — the bins use
/// this to thread `--jobs` through to the per-core phase.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn run_live_soc_opts(
    label: &str,
    netlist: &SocNetlist,
    paper_ratio: f64,
    paper_pessimistic: f64,
    options: &ExperimentOptions,
) -> Result<SocExperiment, AnalysisError> {
    eprintln!(
        "[{label}] running per-core ATPG ({} jobs) + flattened monolithic ATPG ...",
        modsoc_core::parallel::effective_jobs(options.jobs)
    );
    let exp = run_soc_experiment(netlist, options)?;
    println!("== {label}: live regeneration (synthetic ISCAS'89 lookalikes) ==");
    println!(
        "{}",
        modsoc_core::report::render_core_table(&exp.soc, &exp.analysis)
    );
    println!(
        "monolithic ATPG: T_mono = {} (max core {}), coverage {:.2}%, eq.2 strict: {}",
        exp.t_mono,
        exp.soc.max_core_patterns(),
        exp.mono_coverage * 100.0,
        exp.eq2_strict
    );
    println!(
        "reduction ratio: ours {:.2} vs paper {:.2} ({:+.1}%)",
        exp.analysis.reduction_ratio(),
        paper_ratio,
        pct_delta(exp.analysis.reduction_ratio(), paper_ratio)
    );
    println!(
        "pessimistic ratio: ours {:.2} vs paper {:.2}",
        exp.analysis.pessimistic_reduction_ratio(),
        paper_pessimistic
    );
    Ok(exp)
}

/// Print the paper-data version of a Tables 1/2 analysis.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn print_paper_table(
    label: &str,
    soc: &modsoc_soc::Soc,
    t_mono: u64,
) -> Result<SocTdvAnalysis, AnalysisError> {
    let analysis =
        SocTdvAnalysis::compute_with_measured_tmono(soc, &TdvOptions::tables_1_2(), t_mono)?;
    println!("== {label}: published data (Table transcription) ==");
    println!("{}", modsoc_core::report::render_core_table(soc, &analysis));
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_delta_basic() {
        assert!((pct_delta(2.2, 2.0) - 10.0).abs() < 1e-9);
        assert_eq!(pct_delta(1.0, 0.0), 0.0);
    }

    #[test]
    fn paper_table_prints() {
        let soc = modsoc_soc::itc02::soc1();
        let a = print_paper_table("t", &soc, modsoc_soc::itc02::SOC1_MEASURED_TMONO).unwrap();
        assert_eq!(a.modular().total(), 45_183);
    }
}
