//! Run the fast regeneration binaries end to end and check their
//! headline output (the slow live SOC1/SOC2 runs are exercised with
//! `--paper-only`).

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table3_binary_is_bit_exact() {
    let text = run(env!("CARGO_BIN_EXE_table3_p34392"), &[]);
    assert!(text.contains("28,538,030"), "{text}");
    assert!(text.contains("bit-exact match: yes"));
    assert!(text.contains("522,738,000"));
}

#[test]
fn table4_binary_covers_all_socs() {
    let text = run(env!("CARGO_BIN_EXE_table4_itc02"), &[]);
    for soc in [
        "d695", "h953", "f2126", "g1023", "g12710", "p22810", "p34392", "p93791", "t512505",
        "a586710",
    ] {
        assert!(text.contains(soc), "{soc} missing");
    }
    assert!(text.contains("correlation"));
    // The two extremes keep their signs.
    assert!(text.contains("+38.6%"));
    assert!(text.contains("-99.3%"));
}

#[test]
fn fig1_2_binary_reproduces_worked_example() {
    let text = run(env!("CARGO_BIN_EXE_fig1_2_cone_example"), &[]);
    assert!(text.contains("monolithic stimulus bits: 20000"));
    assert!(text.contains("modular stimulus bits:    15000"));
    assert!(text.contains("25.0%"));
}

#[test]
fn table1_paper_only_mode() {
    let text = run(env!("CARGO_BIN_EXE_table1_soc1"), &["--paper-only"]);
    assert!(text.contains("45,183"));
    assert!(text.contains("129,816"));
    assert!(
        !text.contains("live regeneration"),
        "--paper-only must skip ATPG"
    );
}

#[test]
fn table2_paper_only_mode() {
    let text = run(env!("CARGO_BIN_EXE_table2_soc2"), &["--paper-only"]);
    assert!(text.contains("1,344,585"));
    assert!(text.contains("2,986,200"));
}

#[test]
fn ablation_binary_reports_all_sweeps() {
    let text = run(env!("CARGO_BIN_EXE_ablation_sweep"), &[]);
    assert!(text.contains("Ablation 1"));
    assert!(text.contains("Ablation 2"));
    assert!(text.contains("Ablation 3"));
    assert!(text.contains("Ablation 4"));
    assert!(text.contains("crossover observed: true"));
}

#[test]
fn atpg_phase_bench_writes_json() {
    let dir = std::env::temp_dir().join("modsoc_phase_bench_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("phases.json");
    let text = run(
        env!("CARGO_BIN_EXE_atpg_phase_bench"),
        &["--quick", "--json", path.to_str().unwrap()],
    );
    assert!(text.contains("s1423"), "{text}");
    let json = std::fs::read_to_string(&path).unwrap();
    for key in [
        "\"bench\": \"atpg_phase_bench\"",
        "\"index_ms\"",
        "\"collapse_ms\"",
        "\"podem_sweep_ms\"",
        "\"engine_ms\"",
        "\"patterns\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    std::fs::remove_file(&path).ok();
}
