//! Criterion benches for the ATPG substrate itself: fault simulation
//! throughput, PODEM, and the full engine on an ISCAS-sized core.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use modsoc_atpg::collapse::collapse_faults;
use modsoc_atpg::fault::Fault;
use modsoc_atpg::fault_sim::FaultSimulator;
use modsoc_atpg::podem::{Podem, PodemOutcome};
use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_circuitgen::{generate, profile::iscas, CoreProfile};

fn bench_atpg(c: &mut Criterion) {
    let mut group = c.benchmark_group("atpg_engine");

    // A mid-size combinational model (s713-like test model).
    let core = generate(&iscas::s713(1)).expect("generates");
    let model = core.to_test_model().expect("models").circuit;
    let collapsed = collapse_faults(&model);
    let faults = collapsed.representatives().to_vec();

    group.throughput(Throughput::Elements(faults.len() as u64));
    group.bench_function("fault_sim_64_patterns_s713", |b| {
        let mut fsim = FaultSimulator::new(&model).expect("builds");
        let patterns: Vec<Vec<bool>> = (0..64)
            .map(|k| (0..model.input_count()).map(|i| (i + k) % 3 == 0).collect())
            .collect();
        b.iter(|| {
            fsim.detection_masks(black_box(&patterns), &faults)
                .expect("sims")
        })
    });

    group.throughput(Throughput::Elements(1));
    group.bench_function("podem_single_fault_s713", |b| {
        let mut podem = Podem::new(&model, 200).expect("builds");
        let fault = faults[faults.len() / 2];
        b.iter(|| podem.generate(black_box(fault)).expect("generates"))
    });

    // The largest circuitgen profile (s13207 lookalike): the hot path the
    // cone-restricted incremental PODEM is measured on.
    let big = generate(&iscas::s13207(1)).expect("generates");
    let big_model = big.to_test_model().expect("models").circuit;
    let big_faults: Vec<Fault> = collapse_faults(&big_model)
        .representatives()
        .iter()
        .copied()
        .step_by(199)
        .collect();

    group.throughput(Throughput::Elements(big_faults.len() as u64));
    group.bench_function("podem_fault_sweep_s13207", |b| {
        let mut podem = Podem::new(&big_model, 200).expect("builds");
        b.iter(|| {
            let mut tests = 0usize;
            for &f in &big_faults {
                if matches!(
                    podem.generate(black_box(f)).expect("generates"),
                    PodemOutcome::Test(_)
                ) {
                    tests += 1;
                }
            }
            tests
        })
    });

    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("engine_full_run_s13207", |b| {
        let engine = Atpg::new(AtpgOptions::default());
        b.iter(|| engine.run(black_box(&big)).expect("runs").pattern_count())
    });

    group.bench_function("engine_full_run_s713", |b| {
        let engine = Atpg::new(AtpgOptions::default());
        b.iter(|| engine.run(black_box(&core)).expect("runs").pattern_count())
    });

    group.bench_function("engine_full_run_small", |b| {
        let small =
            generate(&CoreProfile::new("small", 12, 6, 10).with_seed(5)).expect("generates");
        let engine = Atpg::new(AtpgOptions::default());
        b.iter(|| engine.run(black_box(&small)).expect("runs").pattern_count())
    });
    group.finish();
}

criterion_group!(benches, bench_atpg);
criterion_main!(benches);
