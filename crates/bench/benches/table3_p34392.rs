//! Criterion bench for the Table 3 (p34392) regeneration: the
//! hierarchical ISOCOST/TDV computation and its rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::report::render_core_table;
use modsoc_core::tdv::TdvOptions;
use modsoc_soc::itc02;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_p34392");
    let soc = itc02::p34392();
    group.bench_function("hierarchical_tdv_analysis", |b| {
        b.iter(|| {
            let a = SocTdvAnalysis::compute(black_box(&soc), &TdvOptions::tables_3_4())
                .expect("analysis succeeds");
            assert_eq!(a.modular().total(), itc02::P34392_TDV_MODULAR);
            a
        })
    });
    let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).expect("ok");
    group.bench_function("render", |b| {
        b.iter(|| render_core_table(black_box(&soc), black_box(&analysis)))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
