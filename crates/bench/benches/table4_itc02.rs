//! Criterion bench for the Table 4 regeneration: reconstruction of the
//! nine unavailable ITC'02 SOCs plus the ten-way survey analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::reconstruct::reconstruct_table4;
use modsoc_core::tdv::TdvOptions;
use modsoc_soc::itc02::{p34392, table4};

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_itc02");
    group.sample_size(20);

    // Reconstruction cost is dominated by factoring the a586710 volume.
    group.bench_function("reconstruct_d695", |b| {
        let row = table4().iter().find(|r| r.name == "d695").expect("row");
        b.iter(|| reconstruct_table4(black_box(row)).expect("reconstructs"))
    });
    group.bench_function("reconstruct_a586710", |b| {
        let row = table4().iter().find(|r| r.name == "a586710").expect("row");
        b.iter(|| reconstruct_table4(black_box(row)).expect("reconstructs"))
    });

    // Full survey: all ten rows, as the table4_itc02 binary prints it.
    group.bench_function("full_survey", |b| {
        b.iter(|| {
            let opts = TdvOptions::tables_3_4();
            let mut out = Vec::new();
            for row in table4() {
                let soc = if row.name == "p34392" {
                    p34392()
                } else {
                    reconstruct_table4(row).expect("reconstructs")
                };
                out.push(SocTdvAnalysis::compute(&soc, &opts).expect("analyses"));
            }
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
