//! Criterion bench for the metrics layer's overhead contract: a full
//! engine run with the default [`NullSink`] must be indistinguishable
//! from the pre-instrumentation engine (the sink is consulted a handful
//! of times per *phase*, never per event), and even the recording sink
//! should cost well under the acceptance budget (≤2%).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_circuitgen::{generate, profile::iscas};
use modsoc_metrics::{MetricsSink, RecordingSink};

fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    let core = generate(&iscas::s1423(1)).expect("generates");

    group.throughput(Throughput::Elements(1));
    group.bench_function("engine_s1423_null_sink", |b| {
        let engine = Atpg::new(AtpgOptions::default());
        b.iter(|| engine.run(black_box(&core)).expect("runs").pattern_count())
    });

    group.bench_function("engine_s1423_recording_sink", |b| {
        let engine = Atpg::with_sink(
            AtpgOptions::default(),
            Arc::new(RecordingSink::new()) as Arc<dyn MetricsSink>,
        );
        b.iter(|| engine.run(black_box(&core)).expect("runs").pattern_count())
    });
    group.finish();
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
