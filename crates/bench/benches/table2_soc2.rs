//! Criterion bench for the Table 2 (SOC2) regeneration.
//!
//! The full live monolithic run (~30k gates) lives in the
//! `table2_soc2` binary; here we bench the analysis plus ATPG on the
//! smallest and largest SOC2 cores so `cargo bench` stays bounded.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_circuitgen::{generate, profile::iscas};
use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::tdv::TdvOptions;
use modsoc_soc::itc02;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_soc2");

    let soc = itc02::soc2();
    group.bench_function("paper_data_analysis", |b| {
        b.iter(|| {
            SocTdvAnalysis::compute_with_measured_tmono(
                black_box(&soc),
                &TdvOptions::tables_1_2(),
                itc02::SOC2_MEASURED_TMONO,
            )
            .expect("analysis succeeds")
        })
    });

    let engine = Atpg::new(AtpgOptions::default());
    let small = generate(&iscas::s953(1)).expect("generates");
    group.sample_size(10);
    group.bench_function("atpg_s953_lookalike", |b| {
        b.iter(|| {
            engine
                .run(black_box(&small))
                .expect("atpg runs")
                .pattern_count()
        })
    });

    let large = generate(&iscas::s5378(1)).expect("generates");
    group.bench_function("atpg_s5378_lookalike", |b| {
        b.iter(|| {
            engine
                .run(black_box(&large))
                .expect("atpg runs")
                .pattern_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
