//! Criterion bench for the parallel per-core execution layer:
//! the SOC2 modular phase at `jobs=1` versus `jobs=auto`.
//!
//! SOC2's four cores (s953/s5378/s13207/s15850 lookalikes) are the
//! paper's largest per-core ATPG jobs, so they are where the pool's
//! speedup shows. The serial flattened monolithic run would drown the
//! signal, so the experiment runs modular-only (Equation 2 bound), with
//! a per-core pattern cap keeping each iteration bounded. The acceptance
//! bar is ≥1.5× on a 4-core runner — and byte-identical reports, which
//! `jobs_invariance` asserts on every sample pair.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modsoc_core::experiment::{run_soc_experiment_guarded, ExperimentOptions};
use modsoc_core::parallel::available_jobs;
use modsoc_core::RunBudget;

const PATTERN_CAP: usize = 48;

fn bench_parallel_scaling(c: &mut Criterion) {
    // At least 4 workers even on narrow runners: oversubscription is
    // harmless (the pool timeshares) and the jobs=N leg stays comparable
    // across machines.
    let wide = available_jobs().max(4);
    let netlist = modsoc_circuitgen::soc::soc2(1).expect("SOC2 netlist builds");
    let budget = RunBudget::unlimited().with_max_patterns(PATTERN_CAP);
    let run = |jobs: usize| {
        let options = ExperimentOptions::paper_tables_1_2()
            .modular_only()
            .with_jobs(jobs);
        run_soc_experiment_guarded(black_box(&netlist), &options, &budget).expect("experiment runs")
    };

    // The determinism contract behind the speedup: same seed, same
    // reports, at any job count.
    let serial = run(1);
    let parallel = run(wide);
    assert_eq!(
        serial
            .result
            .cores
            .iter()
            .map(|c| (c.name.clone(), c.patterns))
            .collect::<Vec<_>>(),
        parallel
            .result
            .cores
            .iter()
            .map(|c| (c.name.clone(), c.patterns))
            .collect::<Vec<_>>(),
        "jobs invariance"
    );
    assert_eq!(serial.result.t_mono, parallel.result.t_mono);

    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.bench_function("soc2_modular_jobs_1", |b| b.iter(|| run(1).result.t_mono));
    group.bench_function(format!("soc2_modular_jobs_{wide}"), |b| {
        b.iter(|| run(wide).result.t_mono)
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
