//! Criterion benches for wrapper chain design and TAM scheduling (the
//! extension layer reproducing the paper's cited context).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modsoc_soc::itc02;
use modsoc_tam::schedule::schedule_rectangles;
use modsoc_tam::wrapper::{design_wrapper, WrapperCore};
use modsoc_tam::{soc_test_time, TamArchitecture};

fn p34392_cores() -> Vec<WrapperCore> {
    let soc = itc02::p34392();
    soc.iter()
        .map(|(_, spec)| WrapperCore::from_core_spec(spec, 8))
        .collect()
}

fn bench_wrapper_tam(c: &mut Criterion) {
    let mut group = c.benchmark_group("wrapper_tam");

    let cores = p34392_cores();
    let big = cores
        .iter()
        .max_by_key(|c| c.total_cells())
        .expect("nonempty")
        .clone();
    group.bench_function("wrapper_design_w16_largest_core", |b| {
        b.iter(|| design_wrapper(black_box(&big), 16))
    });

    for arch in [
        TamArchitecture::Multiplexing,
        TamArchitecture::Daisychain,
        TamArchitecture::Distribution,
    ] {
        group.bench_function(format!("soc_test_time_{arch:?}_w32"), |b| {
            b.iter(|| soc_test_time(arch, black_box(&cores), 32).expect("evaluates"))
        });
    }

    group.bench_function("rectangle_schedule_w32", |b| {
        b.iter(|| schedule_rectangles(black_box(&cores), 32).expect("schedules"))
    });
    group.finish();
}

criterion_group!(benches, bench_wrapper_tam);
criterion_main!(benches);
