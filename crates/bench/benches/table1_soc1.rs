//! Criterion bench for the Table 1 (SOC1) regeneration.
//!
//! `soc1/paper_data` measures the pure Equation 1–8 analysis on the
//! transcribed table; `soc1/live_modular` and `soc1/live_monolithic`
//! measure the real workload — ATPG on the synthetic SOC1 cores and on
//! the flattened design.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::tdv::TdvOptions;
use modsoc_soc::itc02;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_soc1");

    let soc = itc02::soc1();
    group.bench_function("paper_data_analysis", |b| {
        b.iter(|| {
            SocTdvAnalysis::compute_with_measured_tmono(
                black_box(&soc),
                &TdvOptions::tables_1_2(),
                itc02::SOC1_MEASURED_TMONO,
            )
            .expect("analysis succeeds")
        })
    });

    let netlist = modsoc_circuitgen::soc::soc1(1).expect("soc1 generates");
    let engine = Atpg::new(AtpgOptions::default());
    group.sample_size(10);
    group.bench_function("live_modular_atpg_all_cores", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for core in netlist.cores() {
                total += engine
                    .run(black_box(core))
                    .expect("atpg runs")
                    .pattern_count();
            }
            total
        })
    });

    let flat = netlist.flatten().expect("flattens");
    group.bench_function("live_monolithic_atpg", |b| {
        b.iter(|| {
            engine
                .run(black_box(&flat))
                .expect("atpg runs")
                .pattern_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
