//! Criterion bench for the Figure 1/2 regeneration: cone extraction and
//! the overlap-vs-pattern-count mechanism demonstration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_circuitgen::{generate, CoreProfile};
use modsoc_netlist::cone::extract_cones;

fn bench_cones(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_2_cones");

    let mut profile = CoreProfile::new("cones", 48, 12, 0).with_seed(11);
    profile.overlap = 0.5;
    let circuit = generate(&profile).expect("generates");
    group.bench_function("extract_cones", |b| {
        b.iter(|| extract_cones(black_box(&circuit)).expect("extracts"))
    });

    group.sample_size(10);
    group.bench_function("overlap_sweep_atpg", |b| {
        b.iter(|| {
            let mut counts = Vec::new();
            for overlap in [0.0, 0.5, 1.0] {
                let mut p = CoreProfile::new(format!("ov{overlap}"), 48, 12, 0).with_seed(11);
                p.overlap = overlap;
                let circuit = generate(&p).expect("generates");
                let r = Atpg::new(AtpgOptions::deterministic_only())
                    .run(&circuit)
                    .expect("atpg runs");
                counts.push(r.pattern_count());
            }
            counts
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cones);
criterion_main!(benches);
