//! Criterion benches for the extension substrates: diagnosis, BIST,
//! compression, and power-constrained scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use modsoc_atpg::bist::{evaluate_bist, Lfsr};
use modsoc_atpg::collapse::collapse_faults;
use modsoc_atpg::compress::{evaluate_compression, XorDecompressor};
use modsoc_atpg::diagnose::{diagnose, syndrome_of_fault};
use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_circuitgen::{generate, CoreProfile};
use modsoc_tam::power::{schedule_power_constrained, PowerCore};
use modsoc_tam::wrapper::WrapperCore;

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(20);

    let profile = CoreProfile::new("ext", 16, 8, 24).with_seed(3);
    let circuit = generate(&profile).expect("generates");
    let model = circuit.to_test_model().expect("models").circuit;
    let faults = collapse_faults(&model).representatives().to_vec();

    group.bench_function("bist_1024_patterns", |b| {
        b.iter(|| {
            evaluate_bist(black_box(&model), &faults, Lfsr::standard(7), 1024)
                .expect("bist runs")
                .coverage
        })
    });

    let result = Atpg::new(AtpgOptions::deterministic_only())
        .run(&circuit)
        .expect("atpg");
    let patterns = result.patterns.fill_all(result.fill);
    let secret = faults[faults.len() / 2];
    let syndrome = syndrome_of_fault(&model, &patterns, secret).expect("syndrome");
    group.bench_function("diagnose_full_candidate_list", |b| {
        b.iter(|| diagnose(black_box(&model), &syndrome, &faults).expect("diagnoses"))
    });

    let decomp = XorDecompressor::new(result.patterns.width(), 4, 12, 0xED);
    group.bench_function("compression_solve_testset", |b| {
        b.iter(|| evaluate_compression(black_box(&result.patterns), &decomp))
    });

    let cores: Vec<PowerCore> = (0..10)
        .map(|i| {
            PowerCore::new(
                WrapperCore::new(format!("c{i}"), 8, 8, vec![64, 32]).with_patterns(50 + i * 17),
                20 + i * 7,
            )
        })
        .collect();
    group.bench_function("power_constrained_schedule", |b| {
        b.iter(|| schedule_power_constrained(black_box(&cores), 16, 120).expect("schedules"))
    });
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
