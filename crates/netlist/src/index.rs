//! A shared structural index over a circuit.
//!
//! Every structural query an ATPG engine repeats per fault — fanout
//! adjacency, topological position, logic depth, output reachability —
//! is derived from the netlist once and packed into flat arrays here, so
//! the search layers (PODEM, fault simulation, fault enumeration and
//! collapsing) can borrow one [`StructuralIndex`] instead of each
//! rebuilding `Vec<Vec<NodeId>>` fanout lists per call.
//!
//! The fanout adjacency is CSR-packed: one contiguous `NodeId` array plus
//! per-node start offsets. Consumer lists preserve the exact semantics of
//! [`Circuit::fanouts`] — one entry per *pin edge* (a driver feeding two
//! pins of the same gate appears twice) in ascending consumer-id order —
//! so fanout-branch counting in fault enumeration is unchanged.

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// Precomputed structural queries for one circuit.
///
/// Built once per circuit (see [`StructuralIndex::build`]) and shared by
/// reference (or `Arc`) across every consumer; all queries are O(1) or
/// O(degree).
#[derive(Debug, Clone)]
pub struct StructuralIndex {
    node_count: usize,
    /// CSR offsets into `fanout_adj`: consumers of node `n` occupy
    /// `fanout_adj[fanout_start[n] .. fanout_start[n + 1]]`.
    fanout_start: Vec<u32>,
    fanout_adj: Vec<NodeId>,
    topo: Vec<NodeId>,
    topo_pos: Vec<u32>,
    levels: Vec<u32>,
    /// How many times each node is marked as a primary output (a node may
    /// drive several output pins, matching `.bench` semantics).
    output_marks: Vec<u32>,
    /// Per-node bitset over *output positions*: bit `k` of node `n`'s row
    /// is set iff `circuit.outputs()[k]` is reachable from `n` through
    /// combinational edges (including `n` itself when it is that output).
    po_reach: Vec<u64>,
    po_words: usize,
}

impl StructuralIndex {
    /// Build the index for `circuit`.
    ///
    /// # Errors
    ///
    /// Propagates cycle detection from [`Circuit::topo_order`].
    pub fn build(circuit: &Circuit) -> Result<StructuralIndex, NetlistError> {
        let n = circuit.node_count();
        let topo = circuit.topo_order()?;
        let levels = circuit.levels()?;
        let mut topo_pos = vec![0u32; n];
        for (pos, id) in topo.iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }

        // CSR fanout adjacency, mirroring `Circuit::fanouts()` exactly:
        // iterate consumers in id order, one entry per pin edge.
        let mut degree = vec![0u32; n];
        for (_, node) in circuit.iter() {
            for f in &node.fanin {
                degree[f.index()] += 1;
            }
        }
        let mut fanout_start = vec![0u32; n + 1];
        for i in 0..n {
            fanout_start[i + 1] = fanout_start[i] + degree[i];
        }
        let mut cursor: Vec<u32> = fanout_start[..n].to_vec();
        let mut fanout_adj = vec![NodeId::from_index(0); fanout_start[n] as usize];
        for (id, node) in circuit.iter() {
            for f in &node.fanin {
                fanout_adj[cursor[f.index()] as usize] = id;
                cursor[f.index()] += 1;
            }
        }

        let mut output_marks = vec![0u32; n];
        for &po in circuit.outputs() {
            output_marks[po.index()] += 1;
        }

        // Output reachability through combinational edges (edges into a
        // flip-flop's data pin are sequential sinks and excluded).
        let po_words = circuit.output_count().div_ceil(64);
        let mut po_reach = vec![0u64; n * po_words];
        for (k, &po) in circuit.outputs().iter().enumerate() {
            po_reach[po.index() * po_words + k / 64] |= 1u64 << (k % 64);
        }
        for &id in topo.iter().rev() {
            let i = id.index();
            let (lo, hi) = (fanout_start[i] as usize, fanout_start[i + 1] as usize);
            for &fo in &fanout_adj[lo..hi] {
                if circuit.node(fo).kind == GateKind::Dff {
                    continue;
                }
                for w in 0..po_words {
                    po_reach[i * po_words + w] |= po_reach[fo.index() * po_words + w];
                }
            }
        }

        Ok(StructuralIndex {
            node_count: n,
            fanout_start,
            fanout_adj,
            topo,
            topo_pos,
            levels,
            output_marks,
            po_reach,
            po_words,
        })
    }

    /// Number of nodes in the indexed circuit.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Consumers of `id`, one entry per pin edge, in ascending consumer
    /// id order — the CSR view of `Circuit::fanouts()[id]`.
    #[must_use]
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanout_adj[self.fanout_start[i] as usize..self.fanout_start[i + 1] as usize]
    }

    /// Number of pin edges out of `id`.
    #[must_use]
    pub fn fanout_degree(&self, id: NodeId) -> usize {
        self.fanouts(id).len()
    }

    /// Fanout-branch count used by fault enumeration and collapsing: pin
    /// edges plus primary-output marks. A stem with `branch_count > 1`
    /// has distinguishable fanout branches.
    #[must_use]
    pub fn branch_count(&self, id: NodeId) -> usize {
        self.fanout_degree(id) + self.output_marks[id.index()] as usize
    }

    /// How many output pins `id` drives directly (0 when it is not a
    /// primary output).
    #[must_use]
    pub fn output_marks(&self, id: NodeId) -> u32 {
        self.output_marks[id.index()]
    }

    /// The topological order the index was built with.
    #[must_use]
    pub fn topo(&self) -> &[NodeId] {
        &self.topo
    }

    /// Position of `id` in [`StructuralIndex::topo`].
    #[must_use]
    pub fn topo_pos(&self, id: NodeId) -> u32 {
        self.topo_pos[id.index()]
    }

    /// Combinational logic depth of `id` (see [`Circuit::levels`]).
    #[must_use]
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// Whether any primary output is combinationally reachable from `id`
    /// (including `id` being an output itself).
    #[must_use]
    pub fn reaches_any_output(&self, id: NodeId) -> bool {
        let i = id.index() * self.po_words;
        self.po_reach[i..i + self.po_words].iter().any(|&w| w != 0)
    }

    /// Whether output position `k` (an index into `circuit.outputs()`) is
    /// combinationally reachable from `id`.
    #[must_use]
    pub fn reaches_output(&self, id: NodeId, k: usize) -> bool {
        self.po_reach[id.index() * self.po_words + k / 64] & (1u64 << (k % 64)) != 0
    }

    /// The transitive fanout cone of `seed` (through combinational *and*
    /// sequential pin edges), including `seed` itself, sorted by
    /// topological position. This is the region a fault at `seed` can
    /// influence — the search space a cone-restricted ATPG walks.
    #[must_use]
    pub fn fanout_cone(&self, seed: NodeId) -> Vec<NodeId> {
        let mut in_cone = vec![false; self.node_count];
        let mut cone = vec![seed];
        in_cone[seed.index()] = true;
        let mut head = 0;
        while head < cone.len() {
            let id = cone[head];
            head += 1;
            for &fo in self.fanouts(id) {
                if !in_cone[fo.index()] {
                    in_cone[fo.index()] = true;
                    cone.push(fo);
                }
            }
        }
        cone.sort_unstable_by_key(|&id| self.topo_pos[id.index()]);
        cone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Circuit {
        // a fans to g1 and g2 (twice into g2), both reconverge at h.
        let mut c = Circuit::new("diamond");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Xor, &[a, a]).unwrap();
        let h = c.add_gate("h", GateKind::Or, &[g1, g2]).unwrap();
        c.mark_output(h);
        c.mark_output(g1);
        c
    }

    #[test]
    fn csr_matches_vec_fanouts() {
        let c = diamond();
        let idx = StructuralIndex::build(&c).unwrap();
        let reference = c.fanouts();
        for (id, _) in c.iter() {
            assert_eq!(idx.fanouts(id), &reference[id.index()][..], "{id}");
        }
    }

    #[test]
    fn duplicate_pin_edges_preserved() {
        let c = diamond();
        let idx = StructuralIndex::build(&c).unwrap();
        let a = c.find("a").unwrap();
        // a feeds g1 once and g2 twice: 3 pin edges.
        assert_eq!(idx.fanout_degree(a), 3);
        assert_eq!(idx.branch_count(a), 3);
    }

    #[test]
    fn branch_count_counts_output_marks() {
        let c = diamond();
        let idx = StructuralIndex::build(&c).unwrap();
        let g1 = c.find("g1").unwrap();
        // g1 feeds h and is itself an output pin.
        assert_eq!(idx.fanout_degree(g1), 1);
        assert_eq!(idx.output_marks(g1), 1);
        assert_eq!(idx.branch_count(g1), 2);
    }

    #[test]
    fn topo_and_levels_consistent_with_circuit() {
        let c = diamond();
        let idx = StructuralIndex::build(&c).unwrap();
        let levels = c.levels().unwrap();
        for (id, node) in c.iter() {
            assert_eq!(idx.level(id), levels[id.index()]);
            for f in &node.fanin {
                assert!(idx.topo_pos(*f) < idx.topo_pos(id));
            }
        }
    }

    #[test]
    fn output_reachability() {
        let c = diamond();
        let idx = StructuralIndex::build(&c).unwrap();
        let a = c.find("a").unwrap();
        let b = c.find("b").unwrap();
        let g2 = c.find("g2").unwrap();
        // outputs() = [h, g1]; a reaches both, b reaches both (via g1),
        // g2 reaches only h.
        assert!(idx.reaches_output(a, 0) && idx.reaches_output(a, 1));
        assert!(idx.reaches_output(b, 0) && idx.reaches_output(b, 1));
        assert!(idx.reaches_output(g2, 0) && !idx.reaches_output(g2, 1));
        assert!(idx.reaches_any_output(g2));
    }

    #[test]
    fn dead_logic_reaches_nothing() {
        let mut c = Circuit::new("dead");
        let a = c.add_input("a");
        let dead = c.add_gate("dead", GateKind::Not, &[a]).unwrap();
        let live = c.add_gate("live", GateKind::Buf, &[a]).unwrap();
        c.mark_output(live);
        let idx = StructuralIndex::build(&c).unwrap();
        assert!(!idx.reaches_any_output(dead));
        assert!(idx.reaches_any_output(a));
    }

    #[test]
    fn fanout_cone_in_topo_order() {
        let c = diamond();
        let idx = StructuralIndex::build(&c).unwrap();
        let a = c.find("a").unwrap();
        let cone = idx.fanout_cone(a);
        // a's cone: a, g1, g2, h (b excluded).
        assert_eq!(cone.len(), 4);
        assert_eq!(cone[0], a);
        assert!(!cone.contains(&c.find("b").unwrap()));
        for w in cone.windows(2) {
            assert!(idx.topo_pos(w[0]) < idx.topo_pos(w[1]));
        }
    }

    #[test]
    fn sequential_edges_cut_for_reachability_but_not_cones() {
        // a -> ff -> g -> out: the Dff data pin is a sequential sink, so
        // `a` does not combinationally reach the output, but the fanout
        // *cone* still walks through it (fault effects latch next cycle).
        let mut c = Circuit::new("seq");
        let a = c.add_input("a");
        let ff = c.add_gate("ff", GateKind::Dff, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::Buf, &[ff]).unwrap();
        c.mark_output(g);
        let idx = StructuralIndex::build(&c).unwrap();
        assert!(!idx.reaches_any_output(a));
        assert!(idx.reaches_any_output(ff));
        assert!(idx.fanout_cone(a).contains(&g));
    }
}
