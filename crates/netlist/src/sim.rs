//! Bit-parallel two-valued logic simulation.
//!
//! Simulates 64 independent input assignments per pass by packing one
//! assignment per bit of a `u64`. This is the workhorse behind fault
//! simulation in `modsoc-atpg` and behind the generator's testability
//! estimation.

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::wide::PackedWord;

/// A bit-parallel simulator bound to one (combinational) circuit.
///
/// The simulator pre-computes the topological order once; each
/// [`Simulator::run_on`] call then evaluates all nodes for 64 packed
/// assignments.
///
/// # Example
///
/// ```
/// use modsoc_netlist::{Circuit, GateKind};
/// use modsoc_netlist::sim::Simulator;
///
/// # fn main() -> Result<(), modsoc_netlist::NetlistError> {
/// let mut c = Circuit::new("xor2");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.add_gate("g", GateKind::Xor, &[a, b])?;
/// c.mark_output(g);
///
/// let sim = Simulator::new(&c)?;
/// // Two packed assignments: bit0 = (a=1,b=0), bit1 = (a=1,b=1).
/// let vals = sim.run_on(&c, &[0b11, 0b10]);
/// assert_eq!(vals[g.index()] & 0b11, 0b01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    order: Vec<NodeId>,
    node_count: usize,
    input_count: usize,
}

impl Simulator {
    /// Build a simulator for `circuit`.
    ///
    /// # Errors
    ///
    /// Fails if the circuit is sequential ([`NetlistError::NotCombinational`];
    /// convert with [`Circuit::to_test_model`] first) or invalid.
    pub fn new(circuit: &Circuit) -> Result<Simulator, NetlistError> {
        if let Some(&ff) = circuit.dffs().first() {
            return Err(NetlistError::NotCombinational {
                node: circuit.node(ff).name.clone(),
            });
        }
        circuit.validate()?;
        Ok(Simulator {
            order: circuit.topo_order()?,
            node_count: circuit.node_count(),
            input_count: circuit.input_count(),
        })
    }

    /// Evaluate all nodes for 64 packed assignments.
    ///
    /// `input_words[i]` carries the 64 values of circuit input `i` (in
    /// `circuit.inputs()` order). Returns one word per node, indexed by
    /// [`NodeId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the circuit's input count
    /// or if the simulator is used with a different circuit than it was
    /// built for.
    #[must_use]
    pub fn run_on(&self, circuit: &Circuit, input_words: &[u64]) -> Vec<u64> {
        self.run_packed_on(circuit, input_words)
    }

    /// [`Simulator::run_on`] generalized over any [`PackedWord`] width:
    /// one topological sweep evaluates 64 (`u64`) or 512
    /// ([`crate::wide::SimBlock`]) packed assignments per call. Values
    /// are node-major — each node's whole block is contiguous — so the
    /// wide instantiation streams cache lines instead of gathering
    /// strided words.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::run_on`].
    #[must_use]
    pub fn run_packed_on<W: PackedWord>(&self, circuit: &Circuit, input_words: &[W]) -> Vec<W> {
        assert_eq!(
            input_words.len(),
            self.input_count,
            "one input word per primary input"
        );
        assert_eq!(circuit.node_count(), self.node_count, "circuit mismatch");
        let mut values = vec![W::ZERO; self.node_count];
        for (w, &pi) in input_words.iter().zip(circuit.inputs()) {
            values[pi.index()] = *w;
        }
        let mut fanin_buf: Vec<W> = Vec::with_capacity(8);
        for &id in &self.order {
            let node = circuit.node(id);
            match node.kind {
                GateKind::Input => {}
                _ => {
                    fanin_buf.clear();
                    fanin_buf.extend(node.fanin.iter().map(|f| values[f.index()]));
                    values[id.index()] = node.kind.eval_packed(&fanin_buf);
                }
            }
        }
        values
    }

    /// Evaluate and return only output words, in `circuit.outputs()` order.
    #[must_use]
    pub fn run_outputs(&self, circuit: &Circuit, input_words: &[u64]) -> Vec<u64> {
        let values = self.run_on(circuit, input_words);
        circuit
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect()
    }

    /// Evaluate all nodes, forcing the node `fault_site` to `forced_value`
    /// (bit-parallel) before propagating — the core primitive for stuck-at
    /// fault simulation.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::run_on`].
    #[must_use]
    pub fn run_with_forced_node(
        &self,
        circuit: &Circuit,
        input_words: &[u64],
        fault_site: NodeId,
        forced_value: u64,
    ) -> Vec<u64> {
        assert_eq!(input_words.len(), self.input_count);
        let mut values = vec![0u64; self.node_count];
        for (w, &pi) in input_words.iter().zip(circuit.inputs()) {
            values[pi.index()] = *w;
        }
        if circuit.node(fault_site).kind == GateKind::Input {
            values[fault_site.index()] = forced_value;
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in &self.order {
            let node = circuit.node(id);
            if node.kind == GateKind::Input {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(node.fanin.iter().map(|f| values[f.index()]));
            let v = node.kind.eval64(&fanin_buf);
            values[id.index()] = if id == fault_site { forced_value } else { v };
        }
        values
    }
}

/// Convenience: simulate one single assignment given as booleans, returning
/// per-node boolean values.
///
/// # Errors
///
/// Same conditions as [`Simulator::new`].
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the circuit input count.
pub fn simulate_single(circuit: &Circuit, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
    let sim = Simulator::new(circuit)?;
    let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
    let values = sim.run_on(circuit, &words);
    Ok(values.into_iter().map(|w| w & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> (Circuit, NodeId, NodeId) {
        // sum = a ^ b ^ cin; cout = (a&b) | (cin & (a^b))
        let mut c = Circuit::new("fa");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let cin = c.add_input("cin");
        let axb = c.add_gate("axb", GateKind::Xor, &[a, b]).unwrap();
        let sum = c.add_gate("sum", GateKind::Xor, &[axb, cin]).unwrap();
        let ab = c.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let cx = c.add_gate("cx", GateKind::And, &[cin, axb]).unwrap();
        let cout = c.add_gate("cout", GateKind::Or, &[ab, cx]).unwrap();
        c.mark_output(sum);
        c.mark_output(cout);
        (c, sum, cout)
    }

    #[test]
    fn full_adder_truth_table() {
        let (c, sum, cout) = full_adder();
        let sim = Simulator::new(&c).unwrap();
        // Pack all 8 rows into bits 0..8.
        let mut a = 0u64;
        let mut b = 0u64;
        let mut cin = 0u64;
        for row in 0..8u64 {
            if row & 4 != 0 {
                a |= 1 << row;
            }
            if row & 2 != 0 {
                b |= 1 << row;
            }
            if row & 1 != 0 {
                cin |= 1 << row;
            }
        }
        let vals = sim.run_on(&c, &[a, b, cin]);
        for row in 0..8u64 {
            let abit = (row >> 2) & 1;
            let bbit = (row >> 1) & 1;
            let cbit = row & 1;
            let total = abit + bbit + cbit;
            assert_eq!((vals[sum.index()] >> row) & 1, total & 1, "sum row {row}");
            assert_eq!(
                (vals[cout.index()] >> row) & 1,
                u64::from(total >= 2),
                "cout row {row}"
            );
        }
    }

    #[test]
    fn run_outputs_ordering() {
        let (c, ..) = full_adder();
        let sim = Simulator::new(&c).unwrap();
        let outs = sim.run_outputs(&c, &[u64::MAX, u64::MAX, 0]);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0], 0); // sum = 1^1^0 = 0
        assert_eq!(outs[1], u64::MAX); // cout = 1
    }

    #[test]
    fn forced_node_injects_fault() {
        let (c, sum, _) = full_adder();
        let sim = Simulator::new(&c).unwrap();
        let axb = c.find("axb").unwrap();
        // With all zero inputs, sum=0; force axb stuck-at-1 -> sum=1.
        let faulty = sim.run_with_forced_node(&c, &[0, 0, 0], axb, u64::MAX);
        assert_eq!(faulty[sum.index()], u64::MAX);
    }

    #[test]
    fn forced_input_fault() {
        let (c, sum, _) = full_adder();
        let sim = Simulator::new(&c).unwrap();
        let a = c.inputs()[0];
        let faulty = sim.run_with_forced_node(&c, &[0, 0, 0], a, u64::MAX);
        assert_eq!(faulty[sum.index()], u64::MAX, "a stuck-at-1 flips sum");
    }

    #[test]
    fn sequential_circuit_rejected() {
        let mut c = Circuit::new("seq");
        let a = c.add_input("a");
        let ff = c.add_gate("ff", GateKind::Dff, &[a]).unwrap();
        c.mark_output(ff);
        assert!(matches!(
            Simulator::new(&c),
            Err(NetlistError::NotCombinational { .. })
        ));
    }

    #[test]
    fn simulate_single_convenience() {
        let (c, sum, cout) = full_adder();
        let vals = simulate_single(&c, &[true, true, true]).unwrap();
        assert!(vals[sum.index()]);
        assert!(vals[cout.index()]);
    }
}
