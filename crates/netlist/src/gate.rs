//! Gate kinds and two-valued gate evaluation.

use std::fmt;

use crate::wide::PackedWord;

/// The primitive cell library.
///
/// This is the ISCAS'89 cell set: it is sufficient to express every
/// benchmark circuit the DATE 2008 paper uses, and every circuit produced by
/// the synthetic generator.
///
/// `Dff` is a full-scan D flip-flop: in the *test model* (see
/// [`crate::scan`]) its output behaves as a controllable pseudo primary
/// input and its data input as an observable pseudo primary output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// Buffer (one fanin).
    Buf,
    /// Inverter (one fanin).
    Not,
    /// N-ary AND (at least one fanin).
    And,
    /// N-ary NAND (at least one fanin).
    Nand,
    /// N-ary OR (at least one fanin).
    Or,
    /// N-ary NOR (at least one fanin).
    Nor,
    /// N-ary XOR (at least one fanin).
    Xor,
    /// N-ary XNOR (at least one fanin).
    Xnor,
    /// Constant logic 0 (no fanin).
    Const0,
    /// Constant logic 1 (no fanin).
    Const1,
    /// Full-scan D flip-flop (one fanin: the data input).
    Dff,
}

impl GateKind {
    /// Whether `n` fanins is a legal arity for this gate kind.
    ///
    /// ```
    /// use modsoc_netlist::GateKind;
    /// assert!(GateKind::And.arity_ok(3));
    /// assert!(!GateKind::Not.arity_ok(2));
    /// assert!(GateKind::Input.arity_ok(0));
    /// ```
    #[must_use]
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Buf | GateKind::Not | GateKind::Dff => n == 1,
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => n >= 1,
        }
    }

    /// Whether this kind is combinational logic (excludes inputs, constants
    /// and flip-flops).
    #[must_use]
    pub fn is_logic(self) -> bool {
        matches!(
            self,
            GateKind::Buf
                | GateKind::Not
                | GateKind::And
                | GateKind::Nand
                | GateKind::Or
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
        )
    }

    /// Whether this kind is sequential (a flip-flop).
    #[must_use]
    pub fn is_sequential(self) -> bool {
        self == GateKind::Dff
    }

    /// Evaluate the gate on bit-parallel two-valued fanin words.
    ///
    /// Each `u64` carries 64 independent simulation slots. `Input` and `Dff`
    /// evaluate as identity over their (externally supplied or single)
    /// fanin; constants ignore fanins.
    ///
    /// # Panics
    ///
    /// Panics if `fanin` is empty for a kind that requires fanins (callers
    /// inside this workspace always pass validated circuits).
    #[must_use]
    pub fn eval64(self, fanin: &[u64]) -> u64 {
        self.eval_packed(fanin)
    }

    /// [`GateKind::eval64`] generalized over any [`PackedWord`] width:
    /// the same fold instantiated for `u64` (64 slots) and
    /// [`crate::wide::SimBlock`] (512 slots, autovectorizable).
    ///
    /// # Panics
    ///
    /// Panics if `fanin` is empty for a kind that requires fanins (callers
    /// inside this workspace always pass validated circuits).
    #[must_use]
    pub fn eval_packed<W: PackedWord>(self, fanin: &[W]) -> W {
        match self {
            GateKind::Input => fanin.first().copied().unwrap_or(W::ZERO),
            GateKind::Const0 => W::ZERO,
            GateKind::Const1 => W::ONES,
            GateKind::Buf | GateKind::Dff => fanin[0],
            GateKind::Not => fanin[0].not(),
            GateKind::And => fanin.iter().fold(W::ONES, |acc, &v| acc.and(v)),
            GateKind::Nand => fanin.iter().fold(W::ONES, |acc, &v| acc.and(v)).not(),
            GateKind::Or => fanin.iter().fold(W::ZERO, |acc, &v| acc.or(v)),
            GateKind::Nor => fanin.iter().fold(W::ZERO, |acc, &v| acc.or(v)).not(),
            GateKind::Xor => fanin.iter().fold(W::ZERO, |acc, &v| acc.xor(v)),
            GateKind::Xnor => fanin.iter().fold(W::ZERO, |acc, &v| acc.xor(v)).not(),
        }
    }

    /// [`GateKind::eval_packed`] over a fanin *iterator*: the same fold
    /// without materializing a fanin slice. The fault-simulation kernel
    /// uses this to stream overlay values straight into the accumulator
    /// — at block width a buffered evaluation would zero-initialize and
    /// copy kilobytes per gate.
    ///
    /// Kinds that require fanins evaluate the empty iterator as their
    /// fold identity (matching `eval_packed` on an `Input` with no
    /// slice) rather than panicking.
    #[must_use]
    pub fn eval_packed_iter<W: PackedWord, I: Iterator<Item = W>>(self, mut fanin: I) -> W {
        match self {
            GateKind::Input | GateKind::Buf | GateKind::Dff => fanin.next().unwrap_or(W::ZERO),
            GateKind::Const0 => W::ZERO,
            GateKind::Const1 => W::ONES,
            GateKind::Not => fanin.next().unwrap_or(W::ZERO).not(),
            GateKind::And => fanin.fold(W::ONES, |acc, v| acc.and(v)),
            GateKind::Nand => fanin.fold(W::ONES, |acc, v| acc.and(v)).not(),
            GateKind::Or => fanin.fold(W::ZERO, |acc, v| acc.or(v)),
            GateKind::Nor => fanin.fold(W::ZERO, |acc, v| acc.or(v)).not(),
            GateKind::Xor => fanin.fold(W::ZERO, |acc, v| acc.xor(v)),
            GateKind::Xnor => fanin.fold(W::ZERO, |acc, v| acc.xor(v)).not(),
        }
    }

    /// The gate's *controlling value*, if it has one: the input value that
    /// determines the output regardless of the other inputs (0 for
    /// AND/NAND, 1 for OR/NOR). XOR-family and single-input gates have none.
    #[must_use]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Whether the gate inverts: the output when all inputs are at the
    /// non-controlling value (or for single-input gates, whether out = !in).
    #[must_use]
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// The `.bench` keyword for this gate kind, if it has one.
    #[must_use]
    pub fn bench_keyword(self) -> Option<&'static str> {
        match self {
            GateKind::Buf => Some("BUF"),
            GateKind::Not => Some("NOT"),
            GateKind::And => Some("AND"),
            GateKind::Nand => Some("NAND"),
            GateKind::Or => Some("OR"),
            GateKind::Nor => Some("NOR"),
            GateKind::Xor => Some("XOR"),
            GateKind::Xnor => Some("XNOR"),
            GateKind::Dff => Some("DFF"),
            GateKind::Const0 => Some("CONST0"),
            GateKind::Const1 => Some("CONST1"),
            GateKind::Input => None,
        }
    }

    /// Parse a `.bench` keyword (case-insensitive) into a gate kind.
    #[must_use]
    pub fn from_bench_keyword(kw: &str) -> Option<GateKind> {
        match kw.to_ascii_uppercase().as_str() {
            "BUF" | "BUFF" => Some(GateKind::Buf),
            "NOT" | "INV" => Some(GateKind::Not),
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            "DFF" => Some(GateKind::Dff),
            "CONST0" => Some(GateKind::Const0),
            "CONST1" => Some(GateKind::Const1),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            other => other.bench_keyword().unwrap_or("?"),
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = u64::MAX;
    const F: u64 = 0;

    #[test]
    fn truth_tables_two_input() {
        for (kind, tt) in [
            (GateKind::And, [F, F, F, T]),
            (GateKind::Nand, [T, T, T, F]),
            (GateKind::Or, [F, T, T, T]),
            (GateKind::Nor, [T, F, F, F]),
            (GateKind::Xor, [F, T, T, F]),
            (GateKind::Xnor, [T, F, F, T]),
        ] {
            for (i, want) in tt.iter().enumerate() {
                let a = if i & 2 != 0 { T } else { F };
                let b = if i & 1 != 0 { T } else { F };
                assert_eq!(kind.eval64(&[a, b]), *want, "{kind} row {i}");
            }
        }
    }

    #[test]
    fn truth_tables_single_input() {
        assert_eq!(GateKind::Not.eval64(&[T]), F);
        assert_eq!(GateKind::Not.eval64(&[F]), T);
        assert_eq!(GateKind::Buf.eval64(&[T]), T);
        assert_eq!(GateKind::Dff.eval64(&[F]), F);
    }

    #[test]
    fn constants_ignore_fanin() {
        assert_eq!(GateKind::Const0.eval64(&[]), F);
        assert_eq!(GateKind::Const1.eval64(&[]), T);
    }

    #[test]
    fn bitparallel_slots_are_independent() {
        // Slot pattern: a=...0101, b=...0011 -> and=...0001
        let a = 0x5555_5555_5555_5555;
        let b = 0x3333_3333_3333_3333;
        assert_eq!(GateKind::And.eval64(&[a, b]), a & b);
        assert_eq!(GateKind::Xor.eval64(&[a, b]), a ^ b);
    }

    #[test]
    fn wide_gates() {
        assert_eq!(GateKind::And.eval64(&[T, T, T, T, F]), F);
        assert_eq!(GateKind::Or.eval64(&[F, F, F, T]), T);
        assert_eq!(GateKind::Xor.eval64(&[T, T, T]), T);
        assert_eq!(GateKind::Xnor.eval64(&[T, T, T]), F);
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Input.arity_ok(0));
        assert!(!GateKind::Input.arity_ok(1));
        assert!(GateKind::Dff.arity_ok(1));
        assert!(!GateKind::Dff.arity_ok(0));
        assert!(GateKind::Nand.arity_ok(5));
        assert!(!GateKind::Nand.arity_ok(0));
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert!(GateKind::Nand.inverts());
        assert!(!GateKind::And.inverts());
    }

    #[test]
    fn bench_keyword_round_trip() {
        for kind in [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Dff,
        ] {
            let kw = kind.bench_keyword().expect("has keyword");
            assert_eq!(GateKind::from_bench_keyword(kw), Some(kind));
            assert_eq!(GateKind::from_bench_keyword(&kw.to_lowercase()), Some(kind));
        }
        assert_eq!(GateKind::from_bench_keyword("bogus"), None);
    }
}
