//! IEEE 1500-style wrapper-cell insertion at the netlist level.
//!
//! The paper's modular test model isolates each core with *dedicated
//! wrapper cells* on every core I/O (its explicitly "pessimistic"
//! assumption in §3). At the netlist level a dedicated wrapper cell is a
//! scan flip-flop spliced into the port path:
//!
//! * an **input wrapper cell** sits between the core's port and the logic
//!   it drives, so in InTest mode the stimulus bit comes from the wrapper
//!   scan chain;
//! * an **output wrapper cell** captures the port's value, so the response
//!   bit leaves through the wrapper scan chain.
//!
//! After [`wrap_circuit`], the full-scan test model of the wrapped core has
//! `I + O` extra scan cells — exactly the `ISOCOST` of Equation 5 for a
//! leaf core — so the TDV accounting in `modsoc-core` can be cross-checked
//! against real netlists.

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// Result of wrapping a core: the new circuit plus the wrapper-cell ids.
#[derive(Debug, Clone)]
pub struct WrappedCircuit {
    /// The wrapped circuit. Its primary inputs/outputs are the original
    /// functional ports; the wrapper cells are flip-flops.
    pub circuit: Circuit,
    /// Wrapper cells on inputs, in original input order.
    pub input_cells: Vec<NodeId>,
    /// Wrapper cells on outputs, in original output order.
    pub output_cells: Vec<NodeId>,
}

impl WrappedCircuit {
    /// Total number of dedicated wrapper cells (`I + O` of the original
    /// core) — the per-pattern `ISOCOST` contribution of this core as a
    /// leaf (Equation 5 with no bidirectionals and no children).
    #[must_use]
    pub fn isolation_cell_count(&self) -> usize {
        self.input_cells.len() + self.output_cells.len()
    }
}

/// Insert a dedicated wrapper cell on every primary input and output.
///
/// The transformation preserves the functional interface: the wrapped
/// circuit still has the same primary inputs and outputs, but each input
/// now drives logic through a wrapper flip-flop, and each output is also
/// captured into a wrapper flip-flop. In the full-scan test model of the
/// result, the core logic is controlled/observed exclusively through scan
/// cells (core + wrapper), which is what makes stand-alone core test
/// patterns portable to the SOC level.
///
/// # Errors
///
/// Propagates validation errors from the input circuit.
///
/// # Example
///
/// ```
/// use modsoc_netlist::{Circuit, GateKind};
/// use modsoc_netlist::wrapper::wrap_circuit;
///
/// # fn main() -> Result<(), modsoc_netlist::NetlistError> {
/// let mut c = Circuit::new("leaf");
/// let a = c.add_input("a");
/// let g = c.add_gate("g", GateKind::Not, &[a])?;
/// c.mark_output(g);
///
/// let w = wrap_circuit(&c)?;
/// assert_eq!(w.isolation_cell_count(), 2); // 1 input + 1 output
/// assert_eq!(w.circuit.dff_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn wrap_circuit(core: &Circuit) -> Result<WrappedCircuit, NetlistError> {
    core.validate()?;
    let mut out = Circuit::new(format!("{}.wrapped", core.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; core.node_count()];
    let mut input_cells = Vec::with_capacity(core.input_count());

    // Inputs: port -> wrapper cell -> (logic sees the wrapper cell).
    for &pi in core.inputs() {
        let name = &core.node(pi).name;
        let port = out.add_input(name.clone());
        let cell = out.add_gate(format!("{name}.wir"), GateKind::Dff, &[port])?;
        map[pi.index()] = Some(cell);
        input_cells.push(cell);
    }
    // Core flip-flops first, with deferred fanins (their outputs are
    // sequential sources usable by any gate, including feedback through
    // the logic built next); then the combinational body in topological
    // order; then close the flip-flop fanins.
    for &ff in core.dffs() {
        let id = out.add_dff_deferred(core.node(ff).name.clone())?;
        map[ff.index()] = Some(id);
    }
    for id in core.topo_order()? {
        if map[id.index()].is_some() {
            continue;
        }
        let node = core.node(id);
        let fanin: Vec<NodeId> = node
            .fanin
            .iter()
            .map(|f| map[f.index()].expect("topo order places fanins first"))
            .collect();
        let nid = out.add_gate(node.name.clone(), node.kind, &fanin)?;
        map[id.index()] = Some(nid);
    }
    for &ff in core.dffs() {
        let data = core.node(ff).fanin[0];
        out.set_fanin(
            map[ff.index()].expect("dff placed"),
            &[map[data.index()].expect("all nodes placed")],
        )?;
    }

    // Outputs: capture into a wrapper cell; the port observes the capture
    // cell (so the functional path is port <- wrapper cell <- logic, and
    // the cell is scanned out during test).
    let mut output_cells = Vec::with_capacity(core.output_count());
    for (k, &po) in core.outputs().iter().enumerate() {
        let drv = map[po.index()].expect("all nodes mapped");
        let name = format!("{}.wor{k}", core.node(po).name);
        let cell = out.add_gate(name, GateKind::Dff, &[drv])?;
        out.mark_output(cell);
        output_cells.push(cell);
    }
    out.validate()?;
    Ok(WrappedCircuit {
        circuit: out,
        input_cells,
        output_cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Circuit {
        let mut c = Circuit::new("core");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::And, &[a, b]).unwrap();
        let ff = c.add_gate("ff", GateKind::Dff, &[g]).unwrap();
        let h = c.add_gate("h", GateKind::Or, &[ff, b]).unwrap();
        c.mark_output(h);
        c
    }

    #[test]
    fn wrapper_adds_io_cells() {
        let w = wrap_circuit(&core()).unwrap();
        assert_eq!(w.input_cells.len(), 2);
        assert_eq!(w.output_cells.len(), 1);
        assert_eq!(w.isolation_cell_count(), 3);
        // 1 core ff + 3 wrapper cells.
        assert_eq!(w.circuit.dff_count(), 4);
    }

    #[test]
    fn functional_interface_preserved() {
        let w = wrap_circuit(&core()).unwrap();
        assert_eq!(w.circuit.input_count(), 2);
        assert_eq!(w.circuit.output_count(), 1);
    }

    #[test]
    fn test_model_scan_count_matches_isocost() {
        let c = core();
        let w = wrap_circuit(&c).unwrap();
        let m = w.circuit.to_test_model().unwrap();
        // Scan cells = core ffs + I + O.
        assert_eq!(
            m.scan_cell_count(),
            c.dff_count() + c.input_count() + c.output_count()
        );
    }

    #[test]
    fn wrapped_circuit_validates() {
        let w = wrap_circuit(&core()).unwrap();
        w.circuit.validate().unwrap();
    }

    #[test]
    fn combinational_core_wraps() {
        let mut c = Circuit::new("comb");
        let a = c.add_input("a");
        let g = c.add_gate("g", GateKind::Not, &[a]).unwrap();
        c.mark_output(g);
        let w = wrap_circuit(&c).unwrap();
        assert_eq!(w.circuit.dff_count(), 2);
        let m = w.circuit.to_test_model().unwrap();
        assert_eq!(m.scan_cell_count(), 2);
    }

    #[test]
    fn multiply_marked_output_gets_cell_per_pin() {
        let mut c = Circuit::new("mo");
        let a = c.add_input("a");
        let g = c.add_gate("g", GateKind::Buf, &[a]).unwrap();
        c.mark_output(g);
        c.mark_output(g);
        let w = wrap_circuit(&c).unwrap();
        assert_eq!(w.output_cells.len(), 2);
    }
}
