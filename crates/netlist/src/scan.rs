//! Full-scan test model extraction.
//!
//! Under full scan, every flip-flop is both controllable (scan-in) and
//! observable (scan-out), so for ATPG purposes the sequential circuit is
//! equivalent to a purely combinational one in which:
//!
//! * each flip-flop **output** becomes a *pseudo primary input* (the value
//!   shifted into the scan cell), and
//! * each flip-flop **data input** becomes a *pseudo primary output* (the
//!   value captured and shifted out).
//!
//! This is exactly the circuit model the DATE 2008 paper assumes when it
//! counts "2·S" stimulus+response bits per scan cell in Equations 1 and 4.

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;

/// Where a test-model input or output comes from in the original circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TestPoint {
    /// A real chip-level primary input or output.
    Primary(NodeId),
    /// A scan cell (the original flip-flop's node id).
    ScanCell(NodeId),
}

impl TestPoint {
    /// The original-circuit node this point refers to.
    #[must_use]
    pub fn node(self) -> NodeId {
        match self {
            TestPoint::Primary(id) | TestPoint::ScanCell(id) => id,
        }
    }

    /// Whether this point is a scan cell.
    #[must_use]
    pub fn is_scan(self) -> bool {
        matches!(self, TestPoint::ScanCell(_))
    }
}

/// A combinational test model of a full-scan circuit.
///
/// `circuit` is purely combinational; `inputs[i]`/`outputs[i]` describe
/// where the i-th model input/output lives in the original design, in the
/// same order as `circuit.inputs()` / `circuit.outputs()`.
#[derive(Debug, Clone)]
pub struct TestModel {
    /// The combinational model (no flip-flops).
    pub circuit: Circuit,
    /// Provenance of each model input.
    pub inputs: Vec<TestPoint>,
    /// Provenance of each model output.
    pub outputs: Vec<TestPoint>,
}

impl TestModel {
    /// Number of scan cells in the original circuit.
    #[must_use]
    pub fn scan_cell_count(&self) -> usize {
        self.inputs.iter().filter(|p| p.is_scan()).count()
    }

    /// Number of real primary inputs.
    #[must_use]
    pub fn primary_input_count(&self) -> usize {
        self.inputs.len() - self.scan_cell_count()
    }

    /// Number of real primary outputs.
    #[must_use]
    pub fn primary_output_count(&self) -> usize {
        self.outputs.iter().filter(|p| !p.is_scan()).count()
    }
}

impl Circuit {
    /// Extract the combinational full-scan test model.
    ///
    /// Flip-flops are replaced by pseudo primary inputs (named
    /// `<ff>.scan`), and each flip-flop's data fanin becomes an additional
    /// output. Ordering: model inputs are the original primary inputs
    /// followed by scan cells in scan-chain order; model outputs are the
    /// original primary outputs followed by scan-cell capture points.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoObservationPoints`] for a circuit with no
    /// outputs and no flip-flops, or propagates validation errors.
    pub fn to_test_model(&self) -> Result<TestModel, NetlistError> {
        self.validate()?;
        if self.outputs().is_empty() && self.dffs().is_empty() {
            return Err(NetlistError::NoObservationPoints);
        }
        let mut model = Circuit::new(format!("{}.testmodel", self.name()));
        // Map original node id -> model node id, built in original id order
        // so fanin references resolve (original circuits are created in
        // definition order; validate() guarantees fanins exist, and ids are
        // creation-ordered, but a fanin may still have a *larger* id than
        // its user only through a Dff... which we replace by an input, so
        // we must create model nodes in topological order instead).
        let order = self.topo_order()?;
        let mut map: Vec<Option<NodeId>> = vec![None; self.node_count()];
        // First pass: create all Dff replacements (they are sources) and
        // inputs, preserving the documented ordering.
        for &pi in self.inputs() {
            let mid = model.add_input(self.node(pi).name.clone());
            map[pi.index()] = Some(mid);
        }
        for &ff in self.dffs() {
            let mid = model.add_input(format!("{}.scan", self.node(ff).name));
            map[ff.index()] = Some(mid);
        }
        // Second pass: logic gates in topological order.
        for id in order {
            if map[id.index()].is_some() {
                continue; // input or dff already placed
            }
            let node = self.node(id);
            let fanin: Vec<NodeId> = node
                .fanin
                .iter()
                .map(|f| map[f.index()].expect("topo order guarantees fanin placed"))
                .collect();
            let mid = model.add_gate(node.name.clone(), node.kind, &fanin)?;
            map[id.index()] = Some(mid);
        }
        // Outputs: primary outputs first, then scan capture points.
        let mut inputs: Vec<TestPoint> = self
            .inputs()
            .iter()
            .map(|&id| TestPoint::Primary(id))
            .collect();
        inputs.extend(self.dffs().iter().map(|&id| TestPoint::ScanCell(id)));
        let mut outputs = Vec::new();
        for &po in self.outputs() {
            model.mark_output(map[po.index()].expect("all nodes placed"));
            outputs.push(TestPoint::Primary(po));
        }
        for &ff in self.dffs() {
            let data_src = self.node(ff).fanin[0];
            model.mark_output(map[data_src.index()].expect("all nodes placed"));
            outputs.push(TestPoint::ScanCell(ff));
        }
        debug_assert!(model.is_combinational());
        Ok(TestModel {
            circuit: model,
            inputs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn seq_circuit() -> Circuit {
        // a --+--[AND g]--[DFF ff]--+--[OR h]--> out
        //     |_____________________|
        let mut c = Circuit::new("seq");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::And, &[a, b]).unwrap();
        let ff = c.add_gate("ff", GateKind::Dff, &[g]).unwrap();
        let h = c.add_gate("h", GateKind::Or, &[ff, a]).unwrap();
        c.mark_output(h);
        c
    }

    #[test]
    fn model_is_combinational() {
        let m = seq_circuit().to_test_model().unwrap();
        assert!(m.circuit.is_combinational());
        m.circuit.validate().unwrap();
    }

    #[test]
    fn model_io_counts() {
        let m = seq_circuit().to_test_model().unwrap();
        assert_eq!(m.circuit.input_count(), 3); // a, b, ff.scan
        assert_eq!(m.circuit.output_count(), 2); // h, capture of g
        assert_eq!(m.scan_cell_count(), 1);
        assert_eq!(m.primary_input_count(), 2);
        assert_eq!(m.primary_output_count(), 1);
    }

    #[test]
    fn model_ordering_pis_before_scan() {
        let m = seq_circuit().to_test_model().unwrap();
        assert!(matches!(m.inputs[0], TestPoint::Primary(_)));
        assert!(matches!(m.inputs[1], TestPoint::Primary(_)));
        assert!(matches!(m.inputs[2], TestPoint::ScanCell(_)));
        assert!(matches!(m.outputs[0], TestPoint::Primary(_)));
        assert!(matches!(m.outputs[1], TestPoint::ScanCell(_)));
    }

    #[test]
    fn scan_input_named_after_ff() {
        let m = seq_circuit().to_test_model().unwrap();
        assert!(m.circuit.find("ff.scan").is_some());
    }

    #[test]
    fn feedback_through_ff_is_handled() {
        // ff = DFF(g), g = AND(a, ff): true sequential feedback.
        let mut c = Circuit::new("fb");
        let a = c.add_input("a");
        // Build with a two-step dance: add a buf placeholder is not
        // possible without forward refs, so express feedback as the .bench
        // parser would: create ff first referencing g later is impossible
        // here; instead create g over (a, a), then ff, then rewire is not
        // supported. Use the natural order: ff's fanin must exist first, so
        // feedback loops need the parser's two-phase build. Emulate a
        // self-loop via: g = AND(a, ff) with ff = DFF(g) built as
        // g0 = AND(a,a); ff = DFF(g0) — structural, not a true loop. The
        // parser tests cover true feedback.
        let g0 = c.add_gate("g0", GateKind::And, &[a, a]).unwrap();
        let ff = c.add_gate("ff", GateKind::Dff, &[g0]).unwrap();
        let h = c.add_gate("h", GateKind::Xor, &[ff, a]).unwrap();
        c.mark_output(h);
        let m = c.to_test_model().unwrap();
        assert_eq!(m.circuit.input_count(), 2);
        assert_eq!(m.circuit.output_count(), 2);
    }

    #[test]
    fn no_observation_points_rejected() {
        let mut c = Circuit::new("empty");
        c.add_input("a");
        let err = c.to_test_model().unwrap_err();
        assert!(matches!(err, NetlistError::NoObservationPoints));
    }

    #[test]
    fn combinational_circuit_passes_through() {
        let mut c = Circuit::new("comb");
        let a = c.add_input("a");
        let g = c.add_gate("g", GateKind::Not, &[a]).unwrap();
        c.mark_output(g);
        let m = c.to_test_model().unwrap();
        assert_eq!(m.circuit.input_count(), 1);
        assert_eq!(m.circuit.output_count(), 1);
        assert_eq!(m.scan_cell_count(), 0);
    }
}
