//! Wide packed simulation words.
//!
//! The bit-parallel simulator historically carried 64 patterns per
//! `u64`. This module generalizes the packed value to any
//! [`PackedWord`] so the same gate-evaluation and fault-propagation
//! kernels monomorphize at two widths:
//!
//! - `u64` — the original single word, 64 patterns per pass. Still used
//!   wherever a 64-slot batch is semantically visible (the engine's
//!   random-phase keep/drop bookkeeping, single-pattern fault dropping).
//! - [`SimBlock`] — `[u64; 8]`, 512 patterns per pass. The lane-wise
//!   loops below are written so the autovectorizer can lift them to
//!   256/512-bit SIMD; no intrinsics, no new dependencies.
//!
//! Values are stored node-major (struct-of-arrays): a `Vec<SimBlock>`
//! keeps each node's eight words contiguous, so a gate evaluation
//! touches one cache line per fanin instead of gathering strided
//! words — the same CSR-flavoured layout `StructuralIndex` uses for
//! adjacency.

/// Number of `u64` lanes in a [`SimBlock`].
pub const BLOCK_WORDS: usize = 8;

/// Number of pattern slots in a [`SimBlock`] (`BLOCK_WORDS * 64`).
pub const BLOCK_BITS: usize = BLOCK_WORDS * 64;

/// A block of eight packed words: 512 simulation slots evaluated per
/// pass. Plain `[u64; 8]` so it stays `Copy` and the optimizer sees
/// straight-line lane arithmetic.
pub type SimBlock = [u64; BLOCK_WORDS];

/// A packed bundle of two-valued simulation slots.
///
/// Implementations must be slot-wise: every operation applies the
/// boolean op independently per bit, and `ZERO`/`ONES` fill every slot.
/// The fault-simulation kernel is generic over this trait and is
/// instantiated exactly twice (`u64`, [`SimBlock`]).
pub trait PackedWord: Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// All slots at logic 0.
    const ZERO: Self;
    /// All slots at logic 1.
    const ONES: Self;

    /// Slot-wise AND.
    #[must_use]
    fn and(self, other: Self) -> Self;
    /// Slot-wise OR.
    #[must_use]
    fn or(self, other: Self) -> Self;
    /// Slot-wise XOR.
    #[must_use]
    fn xor(self, other: Self) -> Self;
    /// Slot-wise NOT.
    #[must_use]
    fn not(self) -> Self;
    /// Whether every slot is 0.
    #[must_use]
    fn is_zero(self) -> bool;
    /// Number of slots at logic 1.
    #[must_use]
    fn count_ones(self) -> u32;
}

impl PackedWord for u64 {
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline(always)]
    fn not(self) -> Self {
        !self
    }

    #[inline(always)]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline(always)]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
}

impl PackedWord for SimBlock {
    const ZERO: Self = [0; BLOCK_WORDS];
    const ONES: Self = [u64::MAX; BLOCK_WORDS];

    #[inline(always)]
    fn and(mut self, other: Self) -> Self {
        for (a, b) in self.iter_mut().zip(other) {
            *a &= b;
        }
        self
    }

    #[inline(always)]
    fn or(mut self, other: Self) -> Self {
        for (a, b) in self.iter_mut().zip(other) {
            *a |= b;
        }
        self
    }

    #[inline(always)]
    fn xor(mut self, other: Self) -> Self {
        for (a, b) in self.iter_mut().zip(other) {
            *a ^= b;
        }
        self
    }

    #[inline(always)]
    fn not(mut self) -> Self {
        for a in &mut self {
            *a = !*a;
        }
        self
    }

    #[inline(always)]
    fn is_zero(self) -> bool {
        self.iter().all(|&w| w == 0)
    }

    #[inline(always)]
    fn count_ones(self) -> u32 {
        self.iter().map(|w| w.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(seed: u64) -> SimBlock {
        let mut b = [0u64; BLOCK_WORDS];
        for (i, w) in b.iter_mut().enumerate() {
            *w = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(i as u32 * 7)
                ^ (i as u64);
        }
        b
    }

    #[test]
    fn block_ops_are_lane_wise() {
        let a = blk(3);
        let b = blk(11);
        for i in 0..BLOCK_WORDS {
            assert_eq!(a.and(b)[i], a[i] & b[i]);
            assert_eq!(a.or(b)[i], a[i] | b[i]);
            assert_eq!(a.xor(b)[i], a[i] ^ b[i]);
            assert_eq!(PackedWord::not(a)[i], !a[i]);
        }
    }

    #[test]
    fn block_zero_ones_and_predicates() {
        assert!(SimBlock::ZERO.is_zero());
        assert!(!SimBlock::ONES.is_zero());
        assert_eq!(PackedWord::count_ones(SimBlock::ZERO), 0);
        assert_eq!(PackedWord::count_ones(SimBlock::ONES), BLOCK_BITS as u32);
        let a = blk(7);
        assert_eq!(
            PackedWord::count_ones(a),
            a.iter().map(|w| w.count_ones()).sum::<u32>()
        );
    }

    #[test]
    fn u64_impl_matches_native_ops() {
        let a = 0x5555_5555_5555_5555u64;
        let b = 0x3333_3333_3333_3333u64;
        assert_eq!(PackedWord::and(a, b), a & b);
        assert_eq!(PackedWord::or(a, b), a | b);
        assert_eq!(PackedWord::xor(a, b), a ^ b);
        assert_eq!(PackedWord::not(a), !a);
        assert!(0u64.is_zero());
        assert!(!1u64.is_zero());
    }
}
