//! ISCAS'89 `.bench` netlist format reader and writer.
//!
//! The `.bench` format is the textual form of the ISCAS'85/'89 benchmark
//! suites the paper builds SOC1 and SOC2 from:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = DFF(G14)
//! G17 = NAND(G10, G0)
//! ```
//!
//! Forward references are allowed (a gate may use a signal defined later),
//! which is how sequential feedback loops are written.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// Parse a `.bench` netlist into a [`Circuit`].
///
/// The circuit name is taken from `name`. Signal names become node names.
///
/// # Errors
///
/// Returns [`NetlistError::ParseBench`] with a line number for any
/// syntactic problem, [`NetlistError::EmptySource`] when the source has
/// no statements, [`NetlistError::Unterminated`] for a `(...)` that
/// never closes, [`NetlistError::DuplicateNet`] when a signal is defined
/// twice, [`NetlistError::UnknownName`] if a referenced signal is never
/// defined, and validation errors for structural problems.
///
/// # Example
///
/// ```
/// use modsoc_netlist::bench_format::parse_bench;
///
/// # fn main() -> Result<(), modsoc_netlist::NetlistError> {
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let c = parse_bench("nand2", src)?;
/// assert_eq!(c.input_count(), 2);
/// assert_eq!(c.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(name: &str, source: &str) -> Result<Circuit, NetlistError> {
    // Two-phase build to support forward references:
    // phase 1 collects definitions, phase 2 instantiates in an order where
    // fanins exist (creating placeholder order via dependency resolution,
    // with DFFs allowed to close feedback loops).
    struct Def {
        kind: GateKind,
        fanin: Vec<String>,
        line: usize,
    }
    let mut inputs: Vec<(String, usize)> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut defs: Vec<(String, Def)> = Vec::new();
    let mut defined: HashMap<String, ()> = HashMap::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(text, "INPUT") {
            let sig = rest.to_string();
            if defined.insert(sig.clone(), ()).is_some() {
                return Err(NetlistError::DuplicateNet { name: sig, line });
            }
            inputs.push((sig, line));
        } else if let Some(rest) = strip_directive(text, "OUTPUT") {
            outputs.push((rest.to_string(), line));
        } else if let Some(eq) = text.find('=') {
            let lhs = text[..eq].trim().to_string();
            let rhs = text[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::ParseBench {
                line,
                message: format!("expected `KIND(...)` after `=`, got `{rhs}`"),
            })?;
            if !rhs.ends_with(')') {
                return Err(NetlistError::Unterminated { line });
            }
            let kw = rhs[..open].trim();
            let kind =
                GateKind::from_bench_keyword(kw).ok_or_else(|| NetlistError::ParseBench {
                    line,
                    message: format!("unknown gate kind `{kw}`"),
                })?;
            let args = rhs[open + 1..rhs.len() - 1].trim();
            let fanin: Vec<String> = if args.is_empty() {
                Vec::new()
            } else {
                args.split(',').map(|s| s.trim().to_string()).collect()
            };
            if fanin.iter().any(String::is_empty) {
                return Err(NetlistError::ParseBench {
                    line,
                    message: "empty fanin name".into(),
                });
            }
            if !kind.arity_ok(fanin.len()) {
                return Err(NetlistError::ParseBench {
                    line,
                    message: format!("gate kind {kind} cannot take {} fanins", fanin.len()),
                });
            }
            if defined.insert(lhs.clone(), ()).is_some() {
                return Err(NetlistError::DuplicateNet { name: lhs, line });
            }
            defs.push((lhs, Def { kind, fanin, line }));
        } else {
            if text.contains('(') && !text.ends_with(')') {
                return Err(NetlistError::Unterminated { line });
            }
            return Err(NetlistError::ParseBench {
                line,
                message: format!("unrecognized line `{text}`"),
            });
        }
    }
    if inputs.is_empty() && outputs.is_empty() && defs.is_empty() {
        return Err(NetlistError::EmptySource);
    }

    // Instantiate: inputs first, then all flip-flops with deferred fanin
    // (their outputs are sequential sources usable by any gate), then the
    // combinational gates in dependency order, and finally close the
    // flip-flop fanins.
    let mut c = Circuit::new(name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    for (sig, _line) in &inputs {
        let id = c.add_input(sig.clone());
        ids.insert(sig.clone(), id);
    }
    for (sig, d) in &defs {
        if d.kind == GateKind::Dff {
            let id = c.add_dff_deferred(sig.clone()).map_err(|e| match e {
                NetlistError::DuplicateName { name } => {
                    NetlistError::DuplicateNet { name, line: d.line }
                }
                other => other,
            })?;
            ids.insert(sig.clone(), id);
        }
    }

    // Kahn order over combinational definitions (DFF outputs are sources).
    let index_of: HashMap<&str, usize> = defs
        .iter()
        .enumerate()
        .filter(|(_, (_, d))| d.kind != GateKind::Dff)
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();
    let mut indegree = vec![0usize; defs.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
    for (i, (_n, d)) in defs.iter().enumerate() {
        if d.kind == GateKind::Dff {
            continue;
        }
        for f in &d.fanin {
            if let Some(&j) = index_of.get(f.as_str()) {
                dependents[j].push(i);
                indegree[i] += 1;
            } else if !ids.contains_key(f) {
                return Err(NetlistError::ParseBench {
                    line: d.line,
                    message: format!("signal `{f}` is never defined"),
                });
            }
        }
    }
    let mut queue: Vec<usize> = (0..defs.len())
        .filter(|&i| defs[i].1.kind != GateKind::Dff && indegree[i] == 0)
        .collect();
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        let (sig, d) = &defs[i];
        let fanin: Result<Vec<NodeId>, NetlistError> = d
            .fanin
            .iter()
            .map(|f| {
                ids.get(f.as_str())
                    .copied()
                    .ok_or_else(|| NetlistError::UnknownName { name: f.clone() })
            })
            .collect();
        let id = c.add_gate(sig.clone(), d.kind, &fanin?)?;
        ids.insert(sig.clone(), id);
        for &j in &dependents[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                queue.push(j);
            }
        }
    }
    let comb_total = defs.iter().filter(|(_, d)| d.kind != GateKind::Dff).count();
    if queue.len() != comb_total {
        let stuck = defs
            .iter()
            .position(|(n, d)| d.kind != GateKind::Dff && !ids.contains_key(n))
            .expect("some combinational def unplaced");
        return Err(NetlistError::CombinationalCycle {
            node: defs[stuck].0.clone(),
        });
    }
    // Close flip-flop fanins.
    for (sig, d) in &defs {
        if d.kind != GateKind::Dff {
            continue;
        }
        let fid =
            ids.get(d.fanin[0].as_str())
                .copied()
                .ok_or_else(|| NetlistError::ParseBench {
                    line: d.line,
                    message: format!("signal `{}` is never defined", d.fanin[0]),
                })?;
        let id = ids[sig.as_str()];
        c.set_fanin(id, &[fid])?;
    }

    for (sig, line) in &outputs {
        let id = ids
            .get(sig.as_str())
            .copied()
            .ok_or(NetlistError::ParseBench {
                line: *line,
                message: format!("output signal `{sig}` is never defined"),
            })?;
        c.mark_output(id);
    }
    c.validate()?;
    Ok(c)
}

fn strip_directive<'a>(text: &'a str, kw: &str) -> Option<&'a str> {
    let upper = text.to_ascii_uppercase();
    if !upper.starts_with(kw) {
        return None;
    }
    let rest = text[kw.len()..].trim();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Serialize a circuit to `.bench` text.
///
/// Round-trips with [`parse_bench`]: parsing the output reproduces an
/// isomorphic circuit (same names, kinds, connectivity, port lists).
#[must_use]
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &pi in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.node(pi).name);
    }
    for &po in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.node(po).name);
    }
    for (_, node) in circuit.iter() {
        if node.kind == GateKind::Input {
            continue;
        }
        let kw = node
            .kind
            .bench_keyword()
            .expect("non-input kinds have keywords");
        let fanin: Vec<&str> = node
            .fanin
            .iter()
            .map(|f| circuit.node(*f).name.as_str())
            .collect();
        let _ = writeln!(out, "{} = {}({})", node.name, kw, fanin.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "
# tiny sequential benchmark in the s27 style
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NOR(G0, G14)
G11 = NOR(G5, G9)
G9 = NAND(G1, G2)
G14 = NOT(G6)
G17 = OR(G10, G11)
";

    #[test]
    fn parses_with_forward_refs_and_feedback() {
        let c = parse_bench("s27ish", S27_LIKE).unwrap();
        assert_eq!(c.input_count(), 3);
        assert_eq!(c.output_count(), 1);
        assert_eq!(c.dff_count(), 2);
        assert_eq!(c.gate_count(), 5);
        c.validate().unwrap();
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c1 = parse_bench("rt", S27_LIKE).unwrap();
        let text = write_bench(&c1);
        let c2 = parse_bench("rt", &text).unwrap();
        assert_eq!(c1.input_count(), c2.input_count());
        assert_eq!(c1.output_count(), c2.output_count());
        assert_eq!(c1.dff_count(), c2.dff_count());
        assert_eq!(c1.gate_count(), c2.gate_count());
        // Connectivity by name.
        for (_, n1) in c1.iter() {
            let id2 = c2.find(&n1.name).expect("name preserved");
            let n2 = c2.node(id2);
            assert_eq!(n1.kind, n2.kind, "{}", n1.name);
            let f1: Vec<&str> = n1.fanin.iter().map(|f| c1.node(*f).name.as_str()).collect();
            let f2: Vec<&str> = n2.fanin.iter().map(|f| c2.node(*f).name.as_str()).collect();
            assert_eq!(f1, f2, "{}", n1.name);
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse_bench("c", "# hi\n\nINPUT(a)\nOUTPUT(b)\nb = NOT(a) # inline\n").unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn unknown_kind_rejected() {
        let err = parse_bench("c", "INPUT(a)\nb = FROB(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::ParseBench { line: 2, .. }));
    }

    #[test]
    fn undefined_signal_rejected() {
        let err = parse_bench("c", "INPUT(a)\nOUTPUT(b)\nb = NOT(zz)\n").unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::ParseBench { .. } | NetlistError::UnknownName { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn duplicate_definition_rejected() {
        let err = parse_bench("c", "INPUT(a)\na = NOT(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateNet { line: 2, ref name } if name == "a"));
    }

    #[test]
    fn duplicate_input_rejected() {
        let err = parse_bench("c", "INPUT(a)\nINPUT(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateNet { line: 2, ref name } if name == "a"));
    }

    #[test]
    fn duplicate_gate_definition_rejected() {
        let err = parse_bench("c", "INPUT(a)\nx = NOT(a)\nx = NOT(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateNet { line: 3, ref name } if name == "x"));
    }

    #[test]
    fn empty_source_rejected() {
        for src in ["", "\n\n", "# only a comment\n\n# another\n"] {
            let err = parse_bench("c", src).unwrap_err();
            assert!(matches!(err, NetlistError::EmptySource), "{src:?}");
        }
    }

    #[test]
    fn combinational_cycle_rejected() {
        let err = parse_bench("c", "INPUT(a)\nx = AND(a, y)\ny = NOT(x)\n").unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn dff_chain_feedback() {
        // Two DFFs feeding each other: legal sequential loop.
        let src = "
INPUT(a)
OUTPUT(q)
f1 = DFF(f2)
f2 = DFF(f1)
q = AND(f1, a)
";
        let c = parse_bench("loop", src).unwrap();
        assert_eq!(c.dff_count(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn missing_paren_rejected() {
        let err = parse_bench("c", "INPUT(a)\nb = NOT(a\n").unwrap_err();
        assert!(matches!(err, NetlistError::Unterminated { line: 2 }));
        // A truncated directive line (no `=`) is also unterminated.
        let err = parse_bench("c", "INPUT(a)\nOUTPUT(b\n").unwrap_err();
        assert!(
            matches!(err, NetlistError::Unterminated { line: 2 }),
            "{err}"
        );
    }

    #[test]
    fn case_insensitive_keywords() {
        let c = parse_bench("c", "input(a)\noutput(b)\nb = not(a)\n").unwrap();
        assert_eq!(c.gate_count(), 1);
    }
}
