//! Error type shared by the netlist crate.

use std::fmt;

/// Errors produced while constructing, validating, transforming, or parsing
/// netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was created with an arity its kind does not allow
    /// (e.g. a `NOT` with two fanins).
    BadArity {
        /// Gate name as given at construction time.
        gate: String,
        /// The gate kind.
        kind: crate::gate::GateKind,
        /// Number of fanins supplied.
        got: usize,
    },
    /// A fanin reference points at a node id that does not exist.
    DanglingFanin {
        /// Gate whose fanin is dangling.
        gate: String,
        /// The out-of-range node id.
        id: u32,
    },
    /// The combinational part of the circuit contains a cycle.
    CombinationalCycle {
        /// Name of a node on the cycle.
        node: String,
    },
    /// Two nodes were declared with the same name.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A name was referenced before being defined (parser) or not found
    /// (lookup).
    UnknownName {
        /// The missing name.
        name: String,
    },
    /// A `.bench` line could not be parsed.
    ParseBench {
        /// 1-based line number.
        line: usize,
        /// Explanation of what was wrong.
        message: String,
    },
    /// The source contained no statements at all (empty file, or only
    /// comments and blank lines).
    EmptySource,
    /// A line opened a `(...)` argument list that never closes —
    /// typically a truncated file.
    Unterminated {
        /// 1-based line number.
        line: usize,
    },
    /// The same net (signal) was defined twice.
    DuplicateNet {
        /// The offending net name.
        name: String,
        /// 1-based line number of the second definition.
        line: usize,
    },
    /// The operation requires a purely combinational circuit but the circuit
    /// contains flip-flops.
    NotCombinational {
        /// Name of a sequential node.
        node: String,
    },
    /// The circuit has no observation points (no primary outputs and no
    /// flip-flops), so cones/tests are undefined.
    NoObservationPoints,
    /// A port-level stitch between two circuits was inconsistent
    /// (width mismatch or unknown port).
    PortMismatch {
        /// Explanation of the mismatch.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadArity { gate, kind, got } => {
                write!(f, "gate `{gate}` of kind {kind} cannot take {got} fanins")
            }
            NetlistError::DanglingFanin { gate, id } => {
                write!(f, "gate `{gate}` references nonexistent node id {id}")
            }
            NetlistError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node `{node}`")
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "duplicate node name `{name}`")
            }
            NetlistError::UnknownName { name } => {
                write!(f, "unknown node name `{name}`")
            }
            NetlistError::ParseBench { line, message } => {
                write!(f, "bench parse error at line {line}: {message}")
            }
            NetlistError::EmptySource => {
                write!(f, "source contains no netlist statements")
            }
            NetlistError::Unterminated { line } => {
                write!(f, "unterminated argument list at line {line}")
            }
            NetlistError::DuplicateNet { name, line } => {
                write!(
                    f,
                    "net `{name}` defined twice (second definition at line {line})"
                )
            }
            NetlistError::NotCombinational { node } => {
                write!(
                    f,
                    "circuit is not combinational: node `{node}` is sequential"
                )
            }
            NetlistError::NoObservationPoints => {
                write!(f, "circuit has no primary outputs and no flip-flops")
            }
            NetlistError::PortMismatch { message } => {
                write!(f, "port mismatch: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = NetlistError::BadArity {
            gate: "g1".into(),
            kind: GateKind::Not,
            got: 2,
        };
        let s = e.to_string();
        assert!(s.starts_with("gate"), "{s}");
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }

    #[test]
    fn all_variants_display() {
        let variants: Vec<NetlistError> = vec![
            NetlistError::DanglingFanin {
                gate: "g".into(),
                id: 7,
            },
            NetlistError::CombinationalCycle { node: "n".into() },
            NetlistError::DuplicateName { name: "x".into() },
            NetlistError::UnknownName { name: "y".into() },
            NetlistError::ParseBench {
                line: 3,
                message: "bad token".into(),
            },
            NetlistError::EmptySource,
            NetlistError::Unterminated { line: 4 },
            NetlistError::DuplicateNet {
                name: "n1".into(),
                line: 9,
            },
            NetlistError::NotCombinational { node: "ff".into() },
            NetlistError::NoObservationPoints,
            NetlistError::PortMismatch {
                message: "width".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
