//! Circuit statistics used for reporting and generator calibration.

use crate::circuit::Circuit;
use crate::error::NetlistError;
use crate::gate::GateKind;

/// Summary statistics of a circuit.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops (scan cells under full scan).
    pub dffs: usize,
    /// Combinational gates.
    pub gates: usize,
    /// Inverters and buffers among the gates.
    pub inverters: usize,
    /// Maximum combinational depth.
    pub max_level: u32,
    /// Mean fanin of logic gates.
    pub mean_fanin: f64,
}

impl CircuitStats {
    /// Compute statistics for a circuit.
    ///
    /// # Errors
    ///
    /// Propagates structural validation errors.
    pub fn of(circuit: &Circuit) -> Result<CircuitStats, NetlistError> {
        let levels = circuit.levels()?;
        let mut gates = 0usize;
        let mut inverters = 0usize;
        let mut fanin_sum = 0usize;
        for (_, node) in circuit.iter() {
            if node.kind.is_logic() {
                gates += 1;
                fanin_sum += node.fanin.len();
                if matches!(node.kind, GateKind::Not | GateKind::Buf) {
                    inverters += 1;
                }
            }
        }
        Ok(CircuitStats {
            name: circuit.name().to_string(),
            inputs: circuit.input_count(),
            outputs: circuit.output_count(),
            dffs: circuit.dff_count(),
            gates,
            inverters,
            max_level: levels.iter().copied().max().unwrap_or(0),
            mean_fanin: if gates == 0 {
                0.0
            } else {
                fanin_sum as f64 / gates as f64
            },
        })
    }

    /// The interface size `I + O + 2S` the TDV formulas charge per pattern
    /// for this circuit tested stand-alone without wrapper cells.
    #[must_use]
    pub fn pattern_bit_cost(&self) -> usize {
        self.inputs + self.outputs + 2 * self.dffs
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: I={} O={} S={} gates={} depth={}",
            self.name, self.inputs, self.outputs, self.dffs, self.gates, self.max_level
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_circuit() {
        let mut c = Circuit::new("s");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::Nand, &[a, b]).unwrap();
        let n = c.add_gate("n", GateKind::Not, &[g]).unwrap();
        let ff = c.add_gate("ff", GateKind::Dff, &[n]).unwrap();
        c.mark_output(ff);
        let st = CircuitStats::of(&c).unwrap();
        assert_eq!(st.inputs, 2);
        assert_eq!(st.outputs, 1);
        assert_eq!(st.dffs, 1);
        assert_eq!(st.gates, 2);
        assert_eq!(st.inverters, 1);
        assert_eq!(st.max_level, 2);
        assert!((st.mean_fanin - 1.5).abs() < 1e-12);
        assert_eq!(st.pattern_bit_cost(), 2 + 1 + 2);
        assert!(st.to_string().contains("I=2"));
    }

    #[test]
    fn empty_circuit_stats() {
        let c = Circuit::new("empty");
        let st = CircuitStats::of(&c).unwrap();
        assert_eq!(st.gates, 0);
        assert_eq!(st.mean_fanin, 0.0);
    }
}
