//! Scan chain stitching and cycle-accurate serial-scan simulation.
//!
//! The rest of the workspace reasons about full-scan circuits through
//! the *test model* abstraction (flip-flops as pseudo-I/O). This module
//! closes the loop back to silicon behaviour: it organises a circuit's
//! flip-flops into scan chains and simulates the actual test protocol —
//! shift in, one functional capture cycle, shift out — so ATPG patterns
//! can be *replayed* exactly the way a tester would apply them.
//!
//! The paper's §3 assumes "perfectly balanced scan chains in both
//! monolithic and modular testing"; [`ScanChains::balanced`] builds
//! exactly that arrangement.

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// A partition of a circuit's flip-flops into scan chains.
///
/// Chain order is scan order: index 0 of a chain is nearest scan-in
/// (i.e. the *last* bit shifted in ends up there... more precisely, bit
/// `k` of the shifted-in vector lands in element `k` after exactly
/// `len` shift cycles — see [`ScanSimulator::apply_pattern`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScanChains {
    chains: Vec<Vec<NodeId>>,
}

impl ScanChains {
    /// Partition the circuit's flip-flops into `n` balanced chains, in
    /// declaration order (the paper's §3 balanced-chain assumption).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotCombinational`]-family errors never;
    /// fails only if `n` is zero ([`NetlistError::PortMismatch`]).
    pub fn balanced(circuit: &Circuit, n: usize) -> Result<ScanChains, NetlistError> {
        if n == 0 {
            return Err(NetlistError::PortMismatch {
                message: "scan chain count must be at least one".into(),
            });
        }
        let dffs = circuit.dffs();
        let per = dffs.len() / n;
        let extra = dffs.len() % n;
        let mut chains = Vec::with_capacity(n);
        let mut it = dffs.iter().copied();
        for k in 0..n {
            let len = per + usize::from(k < extra);
            chains.push(it.by_ref().take(len).collect());
        }
        Ok(ScanChains { chains })
    }

    /// Build chains from an explicit assignment.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PortMismatch`] if the assignment does not
    /// cover every flip-flop exactly once.
    pub fn from_assignment(
        circuit: &Circuit,
        chains: Vec<Vec<NodeId>>,
    ) -> Result<ScanChains, NetlistError> {
        let mut seen = vec![false; circuit.node_count()];
        let mut count = 0usize;
        for chain in &chains {
            for &ff in chain {
                if ff.index() >= circuit.node_count()
                    || circuit.node(ff).kind != GateKind::Dff
                    || seen[ff.index()]
                {
                    return Err(NetlistError::PortMismatch {
                        message: format!("node {ff} is not a unique flip-flop"),
                    });
                }
                seen[ff.index()] = true;
                count += 1;
            }
        }
        if count != circuit.dff_count() {
            return Err(NetlistError::PortMismatch {
                message: format!(
                    "assignment covers {count} of {} flip-flops",
                    circuit.dff_count()
                ),
            });
        }
        Ok(ScanChains { chains })
    }

    /// The chains.
    #[must_use]
    pub fn chains(&self) -> &[Vec<NodeId>] {
        &self.chains
    }

    /// Length of the longest chain — the shift cycle count per load.
    #[must_use]
    pub fn max_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total flip-flops across chains.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Test time in cycles for `patterns` loads with overlapped
    /// shift-in/shift-out: `(max_length + 1) · patterns + max_length`.
    #[must_use]
    pub fn test_cycles(&self, patterns: u64) -> u64 {
        let l = self.max_length() as u64;
        (l + 1) * patterns + l
    }
}

/// One applied pattern's observable outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternResponse {
    /// Primary output values during the capture cycle.
    pub outputs: Vec<bool>,
    /// Captured scan state, per chain, in chain order.
    pub captured: Vec<Vec<bool>>,
}

/// Cycle-accurate scan-test simulator for a full-scan circuit.
///
/// Holds the current flip-flop state; [`ScanSimulator::apply_pattern`]
/// performs the shift–capture protocol of one test pattern.
#[derive(Debug)]
pub struct ScanSimulator<'a> {
    circuit: &'a Circuit,
    chains: &'a ScanChains,
    order: Vec<NodeId>,
    state: Vec<bool>,
}

impl<'a> ScanSimulator<'a> {
    /// Build a simulator with all flip-flops initialised to 0.
    ///
    /// # Errors
    ///
    /// Propagates circuit validation errors.
    pub fn new(
        circuit: &'a Circuit,
        chains: &'a ScanChains,
    ) -> Result<ScanSimulator<'a>, NetlistError> {
        circuit.validate()?;
        Ok(ScanSimulator {
            circuit,
            chains,
            order: circuit.topo_order()?,
            state: vec![false; circuit.node_count()],
        })
    }

    /// Current state of one flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is out of range.
    #[must_use]
    pub fn flip_flop_state(&self, ff: NodeId) -> bool {
        self.state[ff.index()]
    }

    /// Apply one test pattern via the scan protocol:
    ///
    /// 1. shift `scan_in[chain][k]` into every chain (bit `k` lands in
    ///    chain element `k`),
    /// 2. drive `primary_inputs`, evaluate, record primary outputs,
    /// 3. capture every flip-flop's data input,
    /// 4. return the captured state (which a tester would shift out
    ///    while shifting in the next pattern).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PortMismatch`] if vector widths disagree
    /// with the circuit/chains.
    pub fn apply_pattern(
        &mut self,
        primary_inputs: &[bool],
        scan_in: &[Vec<bool>],
    ) -> Result<PatternResponse, NetlistError> {
        if primary_inputs.len() != self.circuit.input_count() {
            return Err(NetlistError::PortMismatch {
                message: format!(
                    "expected {} primary inputs, got {}",
                    self.circuit.input_count(),
                    primary_inputs.len()
                ),
            });
        }
        if scan_in.len() != self.chains.chains().len()
            || scan_in
                .iter()
                .zip(self.chains.chains())
                .any(|(v, c)| v.len() != c.len())
        {
            return Err(NetlistError::PortMismatch {
                message: "scan-in vector shape does not match the chains".into(),
            });
        }
        // Shift phase, simulated faithfully cycle by cycle: each shift
        // cycle moves every chain one position (element i takes element
        // i-1's value; element 0 takes the scan-in pin). After `len`
        // cycles the scan-in word occupies the chain reversed — so feed
        // bits last-first to land bit k at element k.
        let max_len = self.chains.max_length();
        for cycle in 0..max_len {
            for (chain, word) in self.chains.chains().iter().zip(scan_in) {
                if chain.is_empty() {
                    continue;
                }
                // Chains shorter than max shift only their own length
                // (their scan enable gates off afterwards).
                if cycle >= chain.len() {
                    continue;
                }
                for i in (1..chain.len()).rev() {
                    self.state[chain[i].index()] = self.state[chain[i - 1].index()];
                }
                // Feed so that after the full shift, word[k] sits at
                // chain[k]: the last element to arrive at position 0 is
                // word[0], so feed in reverse order.
                let feed = word[chain.len() - 1 - cycle];
                self.state[chain[0].index()] = feed;
            }
        }
        // Functional evaluation with the shifted state.
        let values = self.evaluate(primary_inputs);
        let outputs = self
            .circuit
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect();
        // Capture: every flip-flop latches its data input.
        let mut captured = Vec::with_capacity(self.chains.chains().len());
        for chain in self.chains.chains() {
            let mut word = Vec::with_capacity(chain.len());
            for &ff in chain {
                let data = self.circuit.node(ff).fanin[0];
                word.push(values[data.index()]);
            }
            captured.push(word);
        }
        for (chain, word) in self.chains.chains().iter().zip(&captured) {
            for (&ff, &v) in chain.iter().zip(word) {
                self.state[ff.index()] = v;
            }
        }
        Ok(PatternResponse { outputs, captured })
    }

    fn evaluate(&self, primary_inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.circuit.node_count()];
        for (&pi, &v) in self.circuit.inputs().iter().zip(primary_inputs) {
            values[pi.index()] = v;
        }
        for &ff in self.circuit.dffs() {
            values[ff.index()] = self.state[ff.index()];
        }
        for &id in &self.order {
            let node = self.circuit.node(id);
            match node.kind {
                GateKind::Input | GateKind::Dff => {}
                _ => {
                    let word: u64 = node.kind.eval64(
                        &node
                            .fanin
                            .iter()
                            .map(|f| if values[f.index()] { u64::MAX } else { 0 })
                            .collect::<Vec<_>>(),
                    );
                    values[id.index()] = word & 1 == 1;
                }
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a 2-bit shift register with an AND observer.
    fn shiftreg() -> Circuit {
        let mut c = Circuit::new("sr");
        let d = c.add_input("d");
        let f1 = c.add_gate("f1", GateKind::Dff, &[d]).unwrap();
        let f2 = c.add_gate("f2", GateKind::Dff, &[f1]).unwrap();
        let y = c.add_gate("y", GateKind::And, &[f1, f2]).unwrap();
        c.mark_output(y);
        c
    }

    #[test]
    fn balanced_partitions() {
        let c = shiftreg();
        let chains = ScanChains::balanced(&c, 2).unwrap();
        assert_eq!(chains.chains().len(), 2);
        assert_eq!(chains.cell_count(), 2);
        assert_eq!(chains.max_length(), 1);
        let one = ScanChains::balanced(&c, 1).unwrap();
        assert_eq!(one.max_length(), 2);
        assert!(ScanChains::balanced(&c, 0).is_err());
    }

    #[test]
    fn test_cycles_formula() {
        let c = shiftreg();
        let chains = ScanChains::balanced(&c, 1).unwrap();
        // (2+1)*10 + 2 = 32.
        assert_eq!(chains.test_cycles(10), 32);
    }

    #[test]
    fn shift_lands_bits_in_order() {
        let c = shiftreg();
        let chains = ScanChains::balanced(&c, 1).unwrap();
        let mut sim = ScanSimulator::new(&c, &chains).unwrap();
        // Shift [1, 0] -> f1 = 1 (element 0), f2 = 0 (element 1).
        let r = sim.apply_pattern(&[false], &[vec![true, false]]).unwrap();
        // During capture f1 had 1, f2 had 0 -> y = 0.
        assert_eq!(r.outputs, vec![false]);
        // Captures: f1 <- d = 0; f2 <- f1 = 1.
        assert_eq!(r.captured, vec![vec![false, true]]);
    }

    #[test]
    fn capture_matches_functional_step() {
        let c = shiftreg();
        let chains = ScanChains::balanced(&c, 2).unwrap();
        let mut sim = ScanSimulator::new(&c, &chains).unwrap();
        let r = sim
            .apply_pattern(&[true], &[vec![true], vec![true]])
            .unwrap();
        assert_eq!(r.outputs, vec![true]); // AND(1,1)
        assert_eq!(r.captured, vec![vec![true], vec![true]]); // f1<-d=1, f2<-f1=1
                                                              // The new state is the captured one.
        assert!(sim.flip_flop_state(c.find("f1").unwrap()));
    }

    #[test]
    fn explicit_assignment_validated() {
        let c = shiftreg();
        let f1 = c.find("f1").unwrap();
        let f2 = c.find("f2").unwrap();
        assert!(ScanChains::from_assignment(&c, vec![vec![f1], vec![f2]]).is_ok());
        assert!(ScanChains::from_assignment(&c, vec![vec![f1, f1], vec![f2]]).is_err());
        assert!(ScanChains::from_assignment(&c, vec![vec![f1]]).is_err());
        let y = c.find("y").unwrap();
        assert!(ScanChains::from_assignment(&c, vec![vec![f1, y]]).is_err());
    }

    #[test]
    fn width_mismatches_rejected() {
        let c = shiftreg();
        let chains = ScanChains::balanced(&c, 1).unwrap();
        let mut sim = ScanSimulator::new(&c, &chains).unwrap();
        assert!(sim
            .apply_pattern(&[true, true], &[vec![true, false]])
            .is_err());
        assert!(sim.apply_pattern(&[true], &[vec![true]]).is_err());
    }

    #[test]
    fn combinational_circuit_has_empty_chains() {
        let mut c = Circuit::new("comb");
        let a = c.add_input("a");
        let g = c.add_gate("g", GateKind::Not, &[a]).unwrap();
        c.mark_output(g);
        let chains = ScanChains::balanced(&c, 2).unwrap();
        assert_eq!(chains.cell_count(), 0);
        let mut sim = ScanSimulator::new(&c, &chains).unwrap();
        let r = sim.apply_pattern(&[true], &[vec![], vec![]]).unwrap();
        assert_eq!(r.outputs, vec![false]);
    }
}
