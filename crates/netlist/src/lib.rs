//! Gate-level netlist substrate for modular SOC test analysis.
//!
//! This crate provides the circuit representation underneath the `modsoc`
//! workspace: a compact gate-level netlist with full-scan D flip-flops, the
//! transformations needed by a combinational ATPG (the scan *test model*),
//! the logic-cone analysis that the DATE 2008 paper's argument is built on,
//! IEEE 1500-style wrapper-cell insertion, bit-parallel logic simulation,
//! and an ISCAS'89 `.bench` format reader/writer.
//!
//! # Example
//!
//! Build a tiny full-scan circuit, extract its test model, and look at its
//! logic cones:
//!
//! ```
//! use modsoc_netlist::{Circuit, GateKind};
//!
//! # fn main() -> Result<(), modsoc_netlist::NetlistError> {
//! let mut c = Circuit::new("demo");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let ff = c.add_gate("ff", GateKind::Dff, &[a])?;
//! let g = c.add_gate("g", GateKind::And, &[ff, b])?;
//! c.mark_output(g);
//! c.validate()?;
//!
//! let model = c.to_test_model()?;
//! assert_eq!(model.circuit.input_count(), 3); // a, b + scan cell
//! let cones = modsoc_netlist::cone::extract_cones(&model.circuit)?;
//! assert_eq!(cones.cones().len(), 2);         // PO cone + pseudo-PO cone
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_format;
pub mod canonical;
pub mod circuit;
pub mod cone;
pub mod error;
pub mod gate;
pub mod index;
pub mod scan;
pub mod scan_chain;
pub mod sim;
pub mod stats;
pub mod verilog;
pub mod wide;
pub mod wrapper;

pub use canonical::canonical_bytes;
pub use circuit::{Circuit, NodeId, PortDirection};
pub use error::NetlistError;
pub use gate::GateKind;
pub use index::StructuralIndex;
pub use scan::{TestModel, TestPoint};
pub use stats::CircuitStats;
pub use wide::{PackedWord, SimBlock, BLOCK_BITS, BLOCK_WORDS};
