//! Canonical byte serialization of a [`Circuit`] for content addressing.
//!
//! The result store keys cached ATPG results by a hash of the circuit, so
//! the serialization here must be *stable*: two textual descriptions of
//! the same circuit (e.g. a `.bench` file with its gate lines shuffled)
//! must produce identical bytes. Plain node-id order is not stable —
//! ids follow declaration order — so the nodes are emitted in a
//! **lexicographic topological order**: Kahn's algorithm over the same
//! combinational edges as [`Circuit::topo_order`] (flip-flop outputs are
//! sources, their data inputs sinks), but with the ready set kept as a
//! min-heap on node *name*. Names are stable under line reordering, so
//! the canonical order — and therefore the bytes — is too.
//!
//! What the bytes encode (and what they deliberately leave out):
//!
//! * node kinds and fanin edges (as canonical positions, in pin order),
//! * the primary input, primary output and flip-flop lists **in
//!   declaration order** — pattern bit positions and scan order follow
//!   declaration order, so permuting them changes what a cached pattern
//!   set means and must change the hash;
//! * *not* the circuit name or the node names: renaming a design (or its
//!   nets, when the renaming preserves relative name order) does not
//!   change its tests. A rename that reorders name ties can change the
//!   canonical order and miss the cache — a safe false miss, never a
//!   false hit between structurally different circuits.

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// Format tag hashed into every serialization; bump on layout changes so
/// stale store entries key-miss instead of decoding garbage.
pub const CANONICAL_FORMAT: &str = "modsoc-canon-v1";

/// Stable one-byte tag per gate kind (append-only).
fn kind_tag(kind: GateKind) -> u8 {
    match kind {
        GateKind::Input => 0,
        GateKind::Buf => 1,
        GateKind::Not => 2,
        GateKind::And => 3,
        GateKind::Nand => 4,
        GateKind::Or => 5,
        GateKind::Nor => 6,
        GateKind::Xor => 7,
        GateKind::Xnor => 8,
        GateKind::Const0 => 9,
        GateKind::Const1 => 10,
        GateKind::Dff => 11,
    }
}

/// Compute the lexicographic topological order: same sequential-cut edge
/// set as [`Circuit::topo_order`], smallest node *name* first among the
/// ready nodes.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] exactly when
/// [`Circuit::topo_order`] does.
pub fn canonical_order(circuit: &Circuit) -> Result<Vec<NodeId>, NetlistError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = circuit.node_count();
    let mut indegree = vec![0u32; n];
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, node) in circuit.iter() {
        if node.kind == GateKind::Dff {
            // Sequential cut: a Dff's output does not depend
            // combinationally on its fanin.
            continue;
        }
        for f in &node.fanin {
            if f.index() >= n {
                return Err(NetlistError::DanglingFanin {
                    gate: node.name.clone(),
                    id: f.index() as u32,
                });
            }
            fanout[f.index()].push(id.index() as u32);
            indegree[id.index()] += 1;
        }
    }
    let mut heap: BinaryHeap<Reverse<(&str, u32)>> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(|i| Reverse((circuit.node(NodeId::from_index(i)).name.as_str(), i as u32)))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse((_, v))) = heap.pop() {
        order.push(NodeId::from_index(v as usize));
        for &w in &fanout[v as usize] {
            indegree[w as usize] -= 1;
            if indegree[w as usize] == 0 {
                heap.push(Reverse((
                    circuit.node(NodeId::from_index(w as usize)).name.as_str(),
                    w,
                )));
            }
        }
    }
    if order.len() != n {
        let stuck = indegree
            .iter()
            .position(|&d| d > 0)
            .expect("some node has nonzero indegree");
        return Err(NetlistError::CombinationalCycle {
            node: circuit.node(NodeId::from_index(stuck)).name.clone(),
        });
    }
    Ok(order)
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialize the circuit into its canonical byte form (see the module
/// docs for the exact invariances).
///
/// # Errors
///
/// Propagates cycle/fanin errors from [`canonical_order`].
pub fn canonical_bytes(circuit: &Circuit) -> Result<Vec<u8>, NetlistError> {
    let order = canonical_order(circuit)?;
    // position[i] = canonical index of node id i.
    let mut position = vec![0u32; circuit.node_count()];
    for (pos, id) in order.iter().enumerate() {
        position[id.index()] = pos as u32;
    }

    let mut out = Vec::with_capacity(16 + circuit.node_count() * 12);
    out.extend_from_slice(CANONICAL_FORMAT.as_bytes());
    out.push(b'\n');
    push_u32(&mut out, circuit.node_count() as u32);
    push_u32(&mut out, circuit.input_count() as u32);
    push_u32(&mut out, circuit.output_count() as u32);
    push_u32(&mut out, circuit.dff_count() as u32);
    for id in &order {
        let node = circuit.node(*id);
        out.push(kind_tag(node.kind));
        push_u32(&mut out, node.fanin.len() as u32);
        for f in &node.fanin {
            push_u32(&mut out, position[f.index()]);
        }
    }
    // Port lists in declaration order: they define pattern bit positions
    // (inputs + scan order), so their order is part of the identity.
    for list in [circuit.inputs(), circuit.outputs(), circuit.dffs()] {
        push_u32(&mut out, list.len() as u32);
        for id in list {
            push_u32(&mut out, position[id.index()]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;

    const BENCH_A: &str = "
INPUT(a)\nINPUT(b)\nINPUT(c)
OUTPUT(y)
n1 = NAND(a, b)
n2 = NAND(b, c)
y = NAND(n1, n2)
";

    // Same circuit, gate lines shuffled.
    const BENCH_A_SHUFFLED: &str = "
INPUT(a)\nINPUT(b)\nINPUT(c)
OUTPUT(y)
n2 = NAND(b, c)
n1 = NAND(a, b)
y = NAND(n1, n2)
";

    #[test]
    fn serialization_is_stable() {
        let c = parse_bench("t", BENCH_A).unwrap();
        assert_eq!(canonical_bytes(&c).unwrap(), canonical_bytes(&c).unwrap());
    }

    #[test]
    fn gate_line_reordering_is_invisible() {
        let a = parse_bench("t", BENCH_A).unwrap();
        let b = parse_bench("t", BENCH_A_SHUFFLED).unwrap();
        assert_eq!(canonical_bytes(&a).unwrap(), canonical_bytes(&b).unwrap());
    }

    #[test]
    fn circuit_name_is_excluded() {
        let a = parse_bench("one", BENCH_A).unwrap();
        let b = parse_bench("two", BENCH_A).unwrap();
        assert_eq!(canonical_bytes(&a).unwrap(), canonical_bytes(&b).unwrap());
    }

    #[test]
    fn structural_change_changes_bytes() {
        let a = parse_bench("t", BENCH_A).unwrap();
        let b = parse_bench("t", &BENCH_A.replace("y = NAND(n1, n2)", "y = NOR(n1, n2)")).unwrap();
        assert_ne!(canonical_bytes(&a).unwrap(), canonical_bytes(&b).unwrap());
    }

    #[test]
    fn input_order_is_part_of_the_identity() {
        // Swapping the input declaration order permutes pattern bit
        // positions, so the bytes must differ.
        let a = parse_bench("t", BENCH_A).unwrap();
        let b = parse_bench(
            "t",
            &BENCH_A.replace("INPUT(a)\nINPUT(b)", "INPUT(b)\nINPUT(a)"),
        )
        .unwrap();
        assert_ne!(canonical_bytes(&a).unwrap(), canonical_bytes(&b).unwrap());
    }

    #[test]
    fn sequential_circuit_serializes() {
        let c = parse_bench(
            "seq",
            "
INPUT(a)
OUTPUT(q)
ff = DFF(g)
g = AND(a, ff)
q = NOT(g)
",
        )
        .unwrap();
        let bytes = canonical_bytes(&c).unwrap();
        assert_eq!(canonical_bytes(&c).unwrap(), bytes);
        assert!(bytes.len() > CANONICAL_FORMAT.len());
    }

    #[test]
    fn canonical_order_matches_topo_constraints() {
        let c = parse_bench("t", BENCH_A).unwrap();
        let order = canonical_order(&c).unwrap();
        assert_eq!(order.len(), c.node_count());
        let mut pos = vec![0usize; c.node_count()];
        for (p, id) in order.iter().enumerate() {
            pos[id.index()] = p;
        }
        for (id, node) in c.iter() {
            if node.kind == GateKind::Dff {
                continue;
            }
            for f in &node.fanin {
                assert!(pos[f.index()] < pos[id.index()], "edge respects order");
            }
        }
    }
}
