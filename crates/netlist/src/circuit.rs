//! The gate-level circuit data structure.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::GateKind;

/// Identifier of a node (gate, input, or flip-flop) inside a [`Circuit`].
///
/// Node ids are dense indices assigned in creation order; they are only
/// meaningful relative to the circuit that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a node id from a raw index.
    ///
    /// Mostly useful for tables that were themselves indexed by
    /// [`NodeId::index`].
    #[must_use]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Direction of a port on a circuit treated as a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PortDirection {
    /// Primary input.
    Input,
    /// Primary output.
    Output,
}

/// One node of the circuit graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    /// Gate kind.
    pub kind: GateKind,
    /// Fanin node ids, in pin order.
    pub fanin: Vec<NodeId>,
    /// Human-readable unique name.
    pub name: String,
}

/// A gate-level netlist with optional full-scan flip-flops.
///
/// The circuit is a DAG of [`Node`]s; flip-flop outputs act as sequential
/// cut points so the combinational part must be acyclic *through logic*, but
/// feedback through flip-flops is allowed (as in any sequential circuit).
///
/// Primary outputs are *references* to driver nodes: a node can be both an
/// internal net and a primary output, exactly as in `.bench` files.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    #[cfg_attr(feature = "serde", serde(skip))]
    by_name: HashMap<String, NodeId>,
}

impl Circuit {
    /// Create an empty circuit with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Circuit {
        Circuit {
            name: name.into(),
            ..Circuit::default()
        }
    }

    /// The circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes (inputs + gates + flip-flops).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops (scan cells under full scan).
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational logic gates (excludes inputs, constants,
    /// flip-flops).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_logic()).count()
    }

    /// Primary input node ids, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output driver node ids, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flop node ids, in declaration order (scan-chain order under
    /// full scan).
    #[must_use]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate over `(NodeId, &Node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Look up a node by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Add a primary input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (inputs are normally created
    /// before anything can clash; use [`Circuit::add_gate`] for fallible
    /// creation).
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.try_add_node(name.into(), GateKind::Input, Vec::new())
            .expect("input arity is always valid and name must be fresh")
    }

    /// Add a gate (or flip-flop, or constant) driven by `fanin`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the fanin count is illegal for
    /// `kind`, [`NetlistError::DuplicateName`] if the name is taken, or
    /// [`NetlistError::DanglingFanin`] if a fanin id is out of range.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        self.try_add_node(name.into(), kind, fanin.to_vec())
    }

    fn try_add_node(
        &mut self,
        name: String,
        kind: GateKind,
        fanin: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        if !kind.arity_ok(fanin.len()) {
            return Err(NetlistError::BadArity {
                gate: name,
                kind,
                got: fanin.len(),
            });
        }
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName { name });
        }
        for f in &fanin {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingFanin {
                    gate: name,
                    id: f.0,
                });
            }
        }
        let id = NodeId::from_index(self.nodes.len());
        self.by_name.insert(name.clone(), id);
        match kind {
            GateKind::Input => self.inputs.push(id),
            GateKind::Dff => self.dffs.push(id),
            _ => {}
        }
        self.nodes.push(Node { kind, fanin, name });
        Ok(id)
    }

    /// Add a flip-flop whose data fanin will be connected later with
    /// [`Circuit::set_fanin`].
    ///
    /// This is how sequential feedback loops are built (the flip-flop's
    /// driver may itself depend on the flip-flop's output). Until the
    /// fanin is connected, [`Circuit::validate`] reports
    /// [`NetlistError::BadArity`] for this node.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_dff_deferred(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName { name });
        }
        let id = NodeId::from_index(self.nodes.len());
        self.by_name.insert(name.clone(), id);
        self.dffs.push(id);
        self.nodes.push(Node {
            kind: GateKind::Dff,
            fanin: Vec::new(),
            name,
        });
        Ok(id)
    }

    /// Reconnect the fanin of an existing node.
    ///
    /// Intended for closing feedback loops through flip-flops created with
    /// [`Circuit::add_dff_deferred`], but works for any node whose kind
    /// accepts the new arity.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] or [`NetlistError::DanglingFanin`]
    /// if the new fanin is illegal. Combinational cycles introduced by a
    /// rewire surface at the next [`Circuit::validate`] /
    /// [`Circuit::topo_order`] call.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn set_fanin(&mut self, id: NodeId, fanin: &[NodeId]) -> Result<(), NetlistError> {
        let node = &self.nodes[id.index()];
        if !node.kind.arity_ok(fanin.len()) {
            return Err(NetlistError::BadArity {
                gate: node.name.clone(),
                kind: node.kind,
                got: fanin.len(),
            });
        }
        for f in fanin {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingFanin {
                    gate: node.name.clone(),
                    id: f.0,
                });
            }
        }
        self.nodes[id.index()].fanin = fanin.to_vec();
        Ok(())
    }

    /// Mark an existing node as a primary output. A node may be marked more
    /// than once (multiple output pins on the same net), matching `.bench`
    /// semantics.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn mark_output(&mut self, id: NodeId) {
        assert!(id.index() < self.nodes.len(), "output id out of range");
        self.outputs.push(id);
    }

    /// Validate structural invariants: all fanins resolve, arities are
    /// legal, and the combinational logic is acyclic (flip-flops break
    /// cycles).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for node in &self.nodes {
            if !node.kind.arity_ok(node.fanin.len()) {
                return Err(NetlistError::BadArity {
                    gate: node.name.clone(),
                    kind: node.kind,
                    got: node.fanin.len(),
                });
            }
            for f in &node.fanin {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::DanglingFanin {
                        gate: node.name.clone(),
                        id: f.0,
                    });
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Compute a topological order of the *combinational* graph: flip-flop
    /// outputs and primary inputs are sources; flip-flop data inputs are
    /// sinks. Every node appears exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the logic (excluding
    /// paths through flip-flops) contains a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        // Kahn's algorithm over combinational edges. A Dff node consumes its
        // fanin (sink side) but its own output is a source: edges *out of* a
        // Dff do not depend on the Dff's fanin being ready.
        let n = self.nodes.len();
        let mut indegree = vec![0u32; n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind == GateKind::Dff {
                // Sequential cut: the Dff output value does not depend
                // combinationally on its fanin.
                continue;
            }
            for f in &node.fanin {
                fanout[f.index()].push(i as u32);
                indegree[i] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(NodeId(v));
            for &w in &fanout[v as usize] {
                indegree[w as usize] -= 1;
                if indegree[w as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() != n {
            let stuck = indegree
                .iter()
                .position(|&d| d > 0)
                .expect("some node has nonzero indegree");
            return Err(NetlistError::CombinationalCycle {
                node: self.nodes[stuck].name.clone(),
            });
        }
        Ok(order)
    }

    /// Compute per-node logic depth: inputs, constants and flip-flop
    /// outputs are level 0; every other node is 1 + max fanin level
    /// (through combinational edges).
    ///
    /// # Errors
    ///
    /// Propagates cycle detection from [`Circuit::topo_order`].
    pub fn levels(&self) -> Result<Vec<u32>, NetlistError> {
        let order = self.topo_order()?;
        let mut level = vec![0u32; self.nodes.len()];
        for id in order {
            let node = &self.nodes[id.index()];
            if node.kind == GateKind::Dff || node.fanin.is_empty() {
                level[id.index()] = 0;
            } else {
                level[id.index()] = 1 + node
                    .fanin
                    .iter()
                    .map(|f| level[f.index()])
                    .max()
                    .unwrap_or(0);
            }
        }
        Ok(level)
    }

    /// Build the fanout lists (combinational *and* sequential edges).
    #[must_use]
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut fo: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for f in &node.fanin {
                fo[f.index()].push(NodeId::from_index(i));
            }
        }
        fo
    }

    /// Whether the circuit is purely combinational (contains no flip-flops).
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        self.dffs.is_empty()
    }

    /// Rebuild the name index. Needed after deserializing a circuit with
    /// the `serde` feature, since the index is skipped during
    /// serialization.
    pub fn rebuild_name_index(&mut self) {
        self.by_name = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), NodeId::from_index(i)))
            .collect();
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, {} dffs",
            self.name,
            self.input_count(),
            self.output_count(),
            self.gate_count(),
            self.dff_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Circuit {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::Nand, &[a, b]).unwrap();
        let h = c.add_gate("h", GateKind::Not, &[g]).unwrap();
        c.mark_output(h);
        c
    }

    #[test]
    fn construction_and_counts() {
        let c = tiny();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.output_count(), 1);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.dff_count(), 0);
        assert!(c.is_combinational());
        c.validate().unwrap();
    }

    #[test]
    fn name_lookup() {
        let c = tiny();
        assert_eq!(c.find("g"), Some(NodeId(2)));
        assert_eq!(c.find("zz"), None);
        assert_eq!(c.node(NodeId(2)).name, "g");
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut c = Circuit::new("d");
        c.add_input("a");
        let err = c.add_gate("a", GateKind::Const0, &[]).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName { .. }));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut c = Circuit::new("d");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let err = c.add_gate("g", GateKind::Not, &[a, b]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 2, .. }));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let c = tiny();
        let order = c.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; c.node_count()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        // g after a,b; h after g.
        assert!(pos[2] > pos[0] && pos[2] > pos[1]);
        assert!(pos[3] > pos[2]);
    }

    #[test]
    fn dff_breaks_cycles() {
        // ff -> g -> ff feedback is legal under full scan.
        let mut c = Circuit::new("seq");
        let a = c.add_input("a");
        // Create the gate first with a placeholder fanin, then the ff; we
        // can't forward-reference, so build: ff over g requires g first.
        // Instead: g = AND(a, ff) where ff = DFF(g). Build ff over a dummy
        // then check cycle detection catches *combinational* loops only.
        let g = c.add_gate("g", GateKind::And, &[a, a]).unwrap();
        let ff = c.add_gate("ff", GateKind::Dff, &[g]).unwrap();
        let h = c.add_gate("h", GateKind::Or, &[ff, a]).unwrap();
        c.mark_output(h);
        c.validate().unwrap();
        let levels = c.levels().unwrap();
        assert_eq!(levels[ff.index()], 0, "dff output is level 0");
        assert_eq!(levels[h.index()], 1);
    }

    #[test]
    fn levels_computed() {
        let c = tiny();
        let lv = c.levels().unwrap();
        assert_eq!(lv, vec![0, 0, 1, 2]);
    }

    #[test]
    fn fanouts_built() {
        let c = tiny();
        let fo = c.fanouts();
        assert_eq!(fo[0], vec![NodeId(2)]);
        assert_eq!(fo[2], vec![NodeId(3)]);
        assert!(fo[3].is_empty());
    }

    #[test]
    fn display_summarizes() {
        let c = tiny();
        let s = c.to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("2 inputs"));
    }

    #[test]
    fn node_id_round_trips() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }
}
