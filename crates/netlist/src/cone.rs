//! Logic-cone extraction and overlap analysis.
//!
//! A *logic cone* is all the combinational logic driving one observation
//! point (a primary output or a flip-flop data input). The DATE 2008
//! paper's entire argument is phrased in terms of cones: the number of test
//! patterns a circuit needs is driven by its hardest cone, per-cone pattern
//! counts vary widely, and overlapping cones defeat pattern compaction.
//! This module makes those quantities measurable on real netlists.

use std::collections::HashMap;

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;

/// One logic cone: the transitive fanin of a single observation point.
#[derive(Debug, Clone)]
pub struct Cone {
    /// The observation point (an output driver node).
    pub output: NodeId,
    /// Index of this cone's observation point in `circuit.outputs()`.
    pub output_index: usize,
    /// All nodes in the cone (including the output node and the support
    /// inputs), in ascending id order.
    pub nodes: Vec<NodeId>,
    /// The cone's *support*: the primary inputs it depends on, ascending.
    pub support: Vec<NodeId>,
}

impl Cone {
    /// Number of gates in the cone (total nodes minus support inputs).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes.len() - self.support.len()
    }

    /// Cone width: the size of its input support. The paper's "number of
    /// scan flip-flops driving the cone" for full-scan models.
    #[must_use]
    pub fn width(&self) -> usize {
        self.support.len()
    }
}

/// The set of cones of a combinational circuit plus overlap statistics.
#[derive(Debug, Clone)]
pub struct ConeAnalysis {
    cones: Vec<Cone>,
    input_count: usize,
}

impl ConeAnalysis {
    /// The extracted cones, one per circuit output, in output order.
    #[must_use]
    pub fn cones(&self) -> &[Cone] {
        &self.cones
    }

    /// Number of cone pairs whose supports intersect.
    #[must_use]
    pub fn overlapping_pairs(&self) -> usize {
        let sets: Vec<std::collections::HashSet<NodeId>> = self
            .cones
            .iter()
            .map(|c| c.support.iter().copied().collect())
            .collect();
        let mut pairs = 0;
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                if !sets[i].is_disjoint(&sets[j]) {
                    pairs += 1;
                }
            }
        }
        pairs
    }

    /// The *overlap fraction*: average over inputs of
    /// `(cones sharing the input − 1) / (cones − 1)`, i.e. 0 when every
    /// input feeds exactly one cone (Figure 1(a) of the paper) and
    /// approaching 1 when every input feeds every cone (heavy overlap,
    /// Figure 1(b)).
    #[must_use]
    pub fn overlap_fraction(&self) -> f64 {
        if self.cones.len() <= 1 || self.input_count == 0 {
            return 0.0;
        }
        let mut sharing: HashMap<NodeId, usize> = HashMap::new();
        for cone in &self.cones {
            for &s in &cone.support {
                *sharing.entry(s).or_insert(0) += 1;
            }
        }
        if sharing.is_empty() {
            return 0.0;
        }
        let denom = (self.cones.len() - 1) as f64;
        let sum: f64 = sharing
            .values()
            .map(|&k| (k.saturating_sub(1)) as f64 / denom)
            .sum();
        sum / sharing.len() as f64
    }

    /// Maximum cone width (paper: the widest cone bounds per-pattern
    /// useful stimulus in a monolithic pattern).
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.cones.iter().map(Cone::width).max().unwrap_or(0)
    }

    /// Mean cone width.
    #[must_use]
    pub fn mean_width(&self) -> f64 {
        if self.cones.is_empty() {
            return 0.0;
        }
        self.cones.iter().map(Cone::width).sum::<usize>() as f64 / self.cones.len() as f64
    }
}

/// Extract all logic cones of a combinational circuit (one per output).
///
/// # Errors
///
/// Fails on sequential circuits ([`NetlistError::NotCombinational`]; use
/// [`Circuit::to_test_model`] first so flip-flop boundaries become cone
/// boundaries) and on circuits with no outputs.
pub fn extract_cones(circuit: &Circuit) -> Result<ConeAnalysis, NetlistError> {
    if let Some(&ff) = circuit.dffs().first() {
        return Err(NetlistError::NotCombinational {
            node: circuit.node(ff).name.clone(),
        });
    }
    if circuit.outputs().is_empty() {
        return Err(NetlistError::NoObservationPoints);
    }
    circuit.validate()?;
    let mut cones = Vec::with_capacity(circuit.output_count());
    let mut mark = vec![u32::MAX; circuit.node_count()];
    for (output_index, &out) in circuit.outputs().iter().enumerate() {
        let stamp = output_index as u32;
        let mut stack = vec![out];
        let mut nodes = Vec::new();
        let mut support = Vec::new();
        while let Some(id) = stack.pop() {
            if mark[id.index()] == stamp {
                continue;
            }
            mark[id.index()] = stamp;
            nodes.push(id);
            let node = circuit.node(id);
            if node.kind == crate::gate::GateKind::Input {
                support.push(id);
            }
            stack.extend(node.fanin.iter().copied());
        }
        nodes.sort_unstable();
        support.sort_unstable();
        cones.push(Cone {
            output: out,
            output_index,
            nodes,
            support,
        });
    }
    Ok(ConeAnalysis {
        cones,
        input_count: circuit.input_count(),
    })
}

/// Extract one cone as a stand-alone circuit: the cone's support inputs
/// become primary inputs and its observation point the single output.
///
/// This is the paper's §3 thought experiment made executable — ATPG on a
/// cone subcircuit yields that cone's *partial* pattern count, so
/// comparing `max` over cones with the whole-circuit count measures how
/// much compaction loses to overlapping cones.
///
/// # Errors
///
/// Propagates structural errors from circuit construction.
pub fn cone_subcircuit(circuit: &Circuit, cone: &Cone) -> Result<Circuit, NetlistError> {
    let mut sub = Circuit::new(format!("{}.cone{}", circuit.name(), cone.output_index));
    let mut map: Vec<Option<NodeId>> = vec![None; circuit.node_count()];
    for &s in &cone.support {
        let id = sub.add_input(circuit.node(s).name.clone());
        map[s.index()] = Some(id);
    }
    // Cone nodes are stored ascending; within the original circuit's
    // construction order every fanin of a combinational gate precedes it,
    // so ascending id order is a valid topological emission order here.
    let order = circuit.topo_order()?;
    for id in order {
        if map[id.index()].is_some() || !cone_contains(cone, id) {
            continue;
        }
        let node = circuit.node(id);
        let fanin: Vec<NodeId> = node
            .fanin
            .iter()
            .map(|f| map[f.index()].expect("cone closure places fanins first"))
            .collect();
        let nid = sub.add_gate(node.name.clone(), node.kind, &fanin)?;
        map[id.index()] = Some(nid);
    }
    sub.mark_output(map[cone.output.index()].expect("output is in the cone"));
    sub.validate()?;
    Ok(sub)
}

fn cone_contains(cone: &Cone, id: NodeId) -> bool {
    cone.nodes.binary_search(&id).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    /// Two disjoint cones (Figure 1(a) shape) and one shared-input pair
    /// builder (Figure 1(b) shape).
    fn disjoint_cones() -> Circuit {
        let mut c = Circuit::new("disjoint");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let y = c.add_input("y");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Or, &[x, y]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        c
    }

    fn overlapping_cones() -> Circuit {
        let mut c = Circuit::new("overlap");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Or, &[b, x]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        c
    }

    #[test]
    fn disjoint_supports() {
        let an = extract_cones(&disjoint_cones()).unwrap();
        assert_eq!(an.cones().len(), 2);
        assert_eq!(an.overlapping_pairs(), 0);
        assert_eq!(an.overlap_fraction(), 0.0);
        assert_eq!(an.cones()[0].width(), 2);
        assert_eq!(an.cones()[0].gate_count(), 1);
    }

    #[test]
    fn overlapping_supports_detected() {
        let an = extract_cones(&overlapping_cones()).unwrap();
        assert_eq!(an.overlapping_pairs(), 1);
        assert!(an.overlap_fraction() > 0.0);
    }

    #[test]
    fn cone_contains_transitive_fanin() {
        let mut c = Circuit::new("deep");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::Nand, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Not, &[g1]).unwrap();
        let g3 = c.add_gate("g3", GateKind::Buf, &[g2]).unwrap();
        c.mark_output(g3);
        let an = extract_cones(&c).unwrap();
        let cone = &an.cones()[0];
        assert_eq!(cone.nodes.len(), 5);
        assert_eq!(cone.support.len(), 2);
        assert_eq!(cone.gate_count(), 3);
    }

    #[test]
    fn reconvergence_counted_once() {
        // a feeds g1 twice (via two paths) — should appear once in support.
        let mut c = Circuit::new("reconv");
        let a = c.add_input("a");
        let n1 = c.add_gate("n1", GateKind::Not, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::And, &[a, n1]).unwrap();
        c.mark_output(g);
        let an = extract_cones(&c).unwrap();
        assert_eq!(an.cones()[0].support, vec![a]);
    }

    #[test]
    fn widths_and_means() {
        let an = extract_cones(&disjoint_cones()).unwrap();
        assert_eq!(an.max_width(), 2);
        assert!((an.mean_width() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_rejected() {
        let mut c = Circuit::new("seq");
        let a = c.add_input("a");
        let ff = c.add_gate("ff", GateKind::Dff, &[a]).unwrap();
        c.mark_output(ff);
        assert!(extract_cones(&c).is_err());
    }

    #[test]
    fn cone_subcircuit_extracts_closed_logic() {
        let mut c = Circuit::new("s");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let g1 = c.add_gate("g1", GateKind::Nand, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Not, &[g1]).unwrap();
        let g3 = c.add_gate("g3", GateKind::Or, &[x, b]).unwrap();
        c.mark_output(g2);
        c.mark_output(g3);
        let an = extract_cones(&c).unwrap();
        let sub = cone_subcircuit(&c, &an.cones()[0]).unwrap();
        assert_eq!(sub.input_count(), 2); // a, b
        assert_eq!(sub.output_count(), 1);
        assert_eq!(sub.gate_count(), 2); // g1, g2
        sub.validate().unwrap();
        let sub2 = cone_subcircuit(&c, &an.cones()[1]).unwrap();
        assert_eq!(sub2.input_count(), 2); // x, b
        assert_eq!(sub2.gate_count(), 1);
    }

    #[test]
    fn cone_subcircuit_functionally_equivalent() {
        use crate::sim::simulate_single;
        let mut c = Circuit::new("eq");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::Xor, &[a, b]).unwrap();
        let h = c.add_gate("h", GateKind::Not, &[g]).unwrap();
        c.mark_output(h);
        let an = extract_cones(&c).unwrap();
        let sub = cone_subcircuit(&c, &an.cones()[0]).unwrap();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let full = simulate_single(&c, &[va, vb]).unwrap();
            let part = simulate_single(&sub, &[va, vb]).unwrap();
            assert_eq!(full[c.outputs()[0].index()], part[sub.outputs()[0].index()]);
        }
    }

    #[test]
    fn full_overlap_fraction_is_one() {
        // Every input feeds both cones.
        let mut c = Circuit::new("full");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Or, &[a, b]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let an = extract_cones(&c).unwrap();
        assert!((an.overlap_fraction() - 1.0).abs() < 1e-12);
    }
}
