//! Property-based tests for the netlist crate.

use proptest::prelude::*;

use modsoc_netlist::bench_format::{parse_bench, write_bench};
use modsoc_netlist::cone::extract_cones;
use modsoc_netlist::sim::{simulate_single, Simulator};
use modsoc_netlist::{Circuit, GateKind};

/// A random combinational circuit description: per gate, (kind selector,
/// fanin selectors). Inputs come first; every gate may use any earlier
/// node, so the result is a DAG by construction.
#[derive(Debug, Clone)]
struct RandomCircuit {
    inputs: usize,
    gates: Vec<(u8, Vec<usize>)>,
    outputs: Vec<usize>,
}

fn kind_of(selector: u8) -> GateKind {
    match selector % 8 {
        0 => GateKind::And,
        1 => GateKind::Nand,
        2 => GateKind::Or,
        3 => GateKind::Nor,
        4 => GateKind::Xor,
        5 => GateKind::Xnor,
        6 => GateKind::Not,
        _ => GateKind::Buf,
    }
}

fn build(rc: &RandomCircuit) -> Circuit {
    let mut c = Circuit::new("rand");
    let mut nodes = Vec::new();
    for i in 0..rc.inputs {
        nodes.push(c.add_input(format!("i{i}")));
    }
    for (gi, (sel, fanin_sel)) in rc.gates.iter().enumerate() {
        let kind = kind_of(*sel);
        let arity = match kind {
            GateKind::Not | GateKind::Buf => 1,
            _ => 2.min(fanin_sel.len()).max(1),
        };
        let fanin: Vec<_> = fanin_sel
            .iter()
            .take(arity)
            .map(|&s| nodes[s % nodes.len()])
            .collect();
        let kind = if fanin.len() == 1 && !matches!(kind, GateKind::Not | GateKind::Buf) {
            GateKind::Buf
        } else {
            kind
        };
        nodes.push(
            c.add_gate(format!("g{gi}"), kind, &fanin)
                .expect("valid gate"),
        );
    }
    for &o in &rc.outputs {
        c.mark_output(nodes[o % nodes.len()]);
    }
    c
}

fn arb_circuit() -> impl Strategy<Value = RandomCircuit> {
    (2usize..6, 1usize..25, 1usize..5).prop_flat_map(|(inputs, n_gates, n_outputs)| {
        let gates = proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<usize>(), 1..3)),
            n_gates..=n_gates,
        );
        let outputs = proptest::collection::vec(any::<usize>(), n_outputs..=n_outputs);
        (Just(inputs), gates, outputs).prop_map(|(inputs, gates, outputs)| RandomCircuit {
            inputs,
            gates,
            outputs,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bench_round_trip_preserves_structure(rc in arb_circuit()) {
        let c1 = build(&rc);
        let text = write_bench(&c1);
        let c2 = parse_bench("rand", &text).expect("parses back");
        prop_assert_eq!(c1.input_count(), c2.input_count());
        prop_assert_eq!(c1.output_count(), c2.output_count());
        prop_assert_eq!(c1.gate_count(), c2.gate_count());
        // Function preserved: simulate both on a few vectors.
        for seed in 0..4u64 {
            let vec: Vec<bool> = (0..c1.input_count())
                .map(|i| (seed >> (i % 4)) & 1 == 1)
                .collect();
            let v1 = simulate_single(&c1, &vec).expect("sim");
            let v2 = simulate_single(&c2, &vec).expect("sim");
            let o1: Vec<bool> = c1.outputs().iter().map(|o| v1[o.index()]).collect();
            let o2: Vec<bool> = c2.outputs().iter().map(|o| v2[o.index()]).collect();
            prop_assert_eq!(o1, o2);
        }
    }

    #[test]
    fn topo_order_is_valid(rc in arb_circuit()) {
        let c = build(&rc);
        let order = c.topo_order().expect("acyclic by construction");
        prop_assert_eq!(order.len(), c.node_count());
        let mut pos = vec![usize::MAX; c.node_count()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for (id, node) in c.iter() {
            if node.kind == GateKind::Dff {
                continue;
            }
            for f in &node.fanin {
                prop_assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn packed_sim_matches_single_sim(rc in arb_circuit(), vectors in proptest::collection::vec(any::<u64>(), 1..4)) {
        let c = build(&rc);
        let sim = Simulator::new(&c).expect("combinational");
        for &bits in &vectors {
            let vec: Vec<bool> = (0..c.input_count()).map(|i| (bits >> (i % 64)) & 1 == 1).collect();
            let words: Vec<u64> = vec.iter().map(|&b| u64::from(b)).collect();
            let packed = sim.run_on(&c, &words);
            let single = simulate_single(&c, &vec).expect("sim");
            for (i, &s) in single.iter().enumerate() {
                prop_assert_eq!(packed[i] & 1 == 1, s, "node {}", i);
            }
        }
    }

    #[test]
    fn cones_cover_exactly_the_output_fanin(rc in arb_circuit()) {
        let c = build(&rc);
        let analysis = extract_cones(&c).expect("cones");
        prop_assert_eq!(analysis.cones().len(), c.output_count());
        // Union of cone nodes = nodes backward-reachable from outputs.
        let mut reach = vec![false; c.node_count()];
        let mut stack: Vec<_> = c.outputs().to_vec();
        while let Some(id) = stack.pop() {
            if reach[id.index()] {
                continue;
            }
            reach[id.index()] = true;
            stack.extend(c.node(id).fanin.iter().copied());
        }
        let mut in_cones = vec![false; c.node_count()];
        for cone in analysis.cones() {
            for &n in &cone.nodes {
                in_cones[n.index()] = true;
            }
        }
        prop_assert_eq!(reach, in_cones);
    }

    #[test]
    fn wrapper_preserves_interface_and_adds_cells(rc in arb_circuit()) {
        let c = build(&rc);
        let w = modsoc_netlist::wrapper::wrap_circuit(&c).expect("wraps");
        prop_assert_eq!(w.circuit.input_count(), c.input_count());
        prop_assert_eq!(w.circuit.output_count(), c.output_count());
        prop_assert_eq!(
            w.circuit.dff_count(),
            c.dff_count() + c.input_count() + c.output_count()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bench_parser_never_panics(text in ".{0,300}") {
        let _ = parse_bench("fuzz", &text);
    }

    #[test]
    fn bench_parser_structured_junk_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                "INPUT\\([a-z]{1,3}\\)".prop_map(|s| s),
                "OUTPUT\\([a-z]{1,3}\\)".prop_map(|s| s),
                "[a-z]{1,3} = (AND|NOT|DFF|XOR)\\([a-z]{1,3}(, [a-z]{1,3})?\\)".prop_map(|s| s),
                Just("# comment".to_string()),
            ],
            0..10,
        )
    ) {
        let text = lines.join("\n");
        if let Ok(c) = parse_bench("fuzz", &text) {
            c.validate().expect("parsed circuits are valid");
        }
    }
}
