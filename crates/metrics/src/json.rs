//! Minimal hand-rolled JSON reader/writer.
//!
//! The workspace has no serde_json (vendored-only policy), but the
//! metrics layer needs to *emit* run reports and *parse* checked-in
//! bench baselines. This module covers exactly that: objects (with
//! **preserved key order**, so reports serialize with a stable field
//! layout), arrays, strings, booleans, null, and finite numbers.
//!
//! Numbers are written via [`fmt_f64`], which never produces `NaN`,
//! `Infinity`, or exponent notation — non-finite inputs become `null`
//! (callers treat that as "measurement unavailable").

use std::fmt::Write as _;

/// A parsed JSON value. Object fields keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64; integers round-trip up to 2^53).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as u64, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace), preserving object order.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => out.push_str(&fmt_f64(*n)),
            JsonValue::String(s) => write_json_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Format a finite f64 without exponent notation; non-finite values
/// become `null`. Integral values print without a fractional part.
#[must_use]
pub fn fmt_f64(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        // Integral: print as integer so u64 counters round-trip textually.
        let mut s = String::new();
        let _ = write!(s, "{}", n as i64);
        return s;
    }
    // Shortest representation Rust gives is already round-trip exact; it
    // only uses exponent notation for extreme magnitudes, which metric
    // values (ms, ratios, counts) never reach — but guard anyway.
    let s = format!("{n}");
    if s.contains('e') || s.contains('E') {
        format!("{n:.6}")
    } else {
        s
    }
}

/// Append `s` as a JSON string literal (quotes + escapes) to `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates map to the replacement character;
                            // metric reports never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_object_preserving_order() {
        let src = r#"{"zeta":1,"alpha":[true,null,-2.5],"nested":{"k":"v"}}"#;
        let value = parse(src).unwrap();
        assert_eq!(value.to_compact(), src);
        assert_eq!(value.get("zeta").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            value
                .get("nested")
                .and_then(|n| n.get("k"))
                .and_then(JsonValue::as_str),
            Some("v")
        );
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let src = " { \"a\\n\\\"b\" : [ 1 , 2 ] , \"u\" : \"\\u0041\" } ";
        let value = parse(src).unwrap();
        assert_eq!(
            value
                .get("a\n\"b")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
        assert_eq!(value.get("u").and_then(JsonValue::as_str), Some("A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "01x", "\"abc", "{}extra"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn fmt_f64_never_emits_nan_or_exponent() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-7.0), "-7");
        assert_eq!(fmt_f64(0.125), "0.125");
        assert!(!fmt_f64(1e-9).contains('e'));
        assert!(!fmt_f64(1.5e12).contains('e'));
    }

    #[test]
    fn numbers_round_trip_through_as_u64() {
        let value = parse("{\"n\":18014398509481984}").unwrap(); // 2^54 — too big
        assert_eq!(value.get("n").and_then(JsonValue::as_u64), None);
        let value = parse("{\"n\":9007199254740992,\"m\":360}").unwrap();
        assert_eq!(value.get("m").and_then(JsonValue::as_u64), Some(360));
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut out = String::new();
        write_json_string("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
