//! Hand-rolled observability primitives for the modsoc workspace.
//!
//! The paper's analysis (§4–§5, Tables 1–4) is an accounting exercise —
//! pattern counts, top-off waste, ISOCOST bits — and the engine work that
//! feeds it (PODEM sweeps, fault-simulation passes, per-core dispatch)
//! is exactly the kind of pipeline where a perf regression hides until a
//! table takes minutes instead of seconds. This crate is the counter and
//! timer substrate that makes those runs observable without adding any
//! external dependency, in the same hand-rolled style as
//! `modsoc_core::parallel` and `modsoc_core::runctl`:
//!
//! * [`Counter`] — a *fixed*, enum-indexed set of run counters (PODEM
//!   decisions/backtracks, fault-sim events, pool tasks, …). Fixed so a
//!   sink is a flat atomic array and a report has a stable field order.
//! * [`Phase`] — the pipeline phases whose wall time is worth charging
//!   separately (fault enumeration, collapse, PODEM, compaction, the
//!   modular/monolithic experiment stages, …).
//! * [`MetricsSink`] — the trait instrumented code reports into. The
//!   default implementation of every method is a no-op, so the disabled
//!   path ([`NullSink`]) costs one virtual call per *phase*, not per
//!   event: hot loops count into plain `u64` locals and flush once.
//! * [`RecordingSink`] — the enabled implementation: relaxed atomic
//!   counters plus per-phase call/nanosecond accumulators, snapshotted
//!   into a plain [`MetricsSnapshot`] for reporting.
//! * [`json`] — a minimal JSON writer/parser (objects, arrays, strings,
//!   finite numbers) used for metrics reports and bench baselines.
//!
//! # Determinism contract
//!
//! Counters and phase *call counts* are deterministic wherever the
//! engine is deterministic: a `--jobs 1` and a `--jobs N` run of the
//! same workload produce identical values (the instrumented code only
//! counts partition-invariant quantities). Wall-clock fields
//! (`*_nanos`, worker rows) are explicitly exempt —
//! [`MetricsSnapshot::deterministic_eq`] compares exactly the
//! deterministic subset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifiers for the fixed set of run counters.
///
/// The enum order is the canonical report order; `Counter::ALL` and
/// [`Counter::name`] keep serialization stable across runs and releases
/// (new counters are appended, never reordered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names + `name()` strings are the documentation
pub enum Counter {
    FaultsUniverse,
    FaultsCollapsed,
    RandomPatternsKept,
    PodemCalls,
    PodemTests,
    PodemRedundant,
    PodemAborted,
    PodemDecisions,
    PodemBacktracks,
    FaultSimBatches,
    FaultSimFaultEvals,
    FaultSimDetections,
    StaticMergeSaved,
    RepairPatterns,
    ReverseCompactionRemoved,
    PatternsFinal,
    TdfFaults,
    TdfDetected,
    TdfPatterns,
    BistPatterns,
    BistTopUpPatterns,
    BudgetTrips,
    PoolTasks,
    PoolPanics,
    StoreHits,
    StoreMisses,
    StoreWrites,
    StoreEvictions,
    StoreRetries,
    ServeRequests,
    ServeShed,
    ServeCoalesceHits,
    ServePanics,
    ServeDeadlineTrips,
    ServeBatches,
    ServeBatchedUnits,
    ServeLaneLight,
    ServeLaneHeavy,
    ServeKeepAliveReuses,
    ServeRequestTimeouts,
    StoreRemoteGets,
    StoreRemotePuts,
    StoreRemoteJournalOps,
    StoreClaimsAcquired,
    StoreClaimsHeld,
    StoreClaimsExpired,
    TamPackCores,
    TamPackCandidates,
    TamPackBackfills,
    TamPackPowerRejects,
}

impl Counter {
    /// Every counter, in canonical report order.
    pub const ALL: [Counter; 50] = [
        Counter::FaultsUniverse,
        Counter::FaultsCollapsed,
        Counter::RandomPatternsKept,
        Counter::PodemCalls,
        Counter::PodemTests,
        Counter::PodemRedundant,
        Counter::PodemAborted,
        Counter::PodemDecisions,
        Counter::PodemBacktracks,
        Counter::FaultSimBatches,
        Counter::FaultSimFaultEvals,
        Counter::FaultSimDetections,
        Counter::StaticMergeSaved,
        Counter::RepairPatterns,
        Counter::ReverseCompactionRemoved,
        Counter::PatternsFinal,
        Counter::TdfFaults,
        Counter::TdfDetected,
        Counter::TdfPatterns,
        Counter::BistPatterns,
        Counter::BistTopUpPatterns,
        Counter::BudgetTrips,
        Counter::PoolTasks,
        Counter::PoolPanics,
        Counter::StoreHits,
        Counter::StoreMisses,
        Counter::StoreWrites,
        Counter::StoreEvictions,
        Counter::StoreRetries,
        Counter::ServeRequests,
        Counter::ServeShed,
        Counter::ServeCoalesceHits,
        Counter::ServePanics,
        Counter::ServeDeadlineTrips,
        Counter::ServeBatches,
        Counter::ServeBatchedUnits,
        Counter::ServeLaneLight,
        Counter::ServeLaneHeavy,
        Counter::ServeKeepAliveReuses,
        Counter::ServeRequestTimeouts,
        Counter::StoreRemoteGets,
        Counter::StoreRemotePuts,
        Counter::StoreRemoteJournalOps,
        Counter::StoreClaimsAcquired,
        Counter::StoreClaimsHeld,
        Counter::StoreClaimsExpired,
        Counter::TamPackCores,
        Counter::TamPackCandidates,
        Counter::TamPackBackfills,
        Counter::TamPackPowerRejects,
    ];

    /// Position in [`Counter::ALL`] (the sink's array index).
    #[must_use]
    pub fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|&c| c == self)
            .expect("every counter is listed in ALL")
    }

    /// Stable snake_case report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::FaultsUniverse => "faults_universe",
            Counter::FaultsCollapsed => "faults_collapsed",
            Counter::RandomPatternsKept => "random_patterns_kept",
            Counter::PodemCalls => "podem_calls",
            Counter::PodemTests => "podem_tests",
            Counter::PodemRedundant => "podem_redundant",
            Counter::PodemAborted => "podem_aborted",
            Counter::PodemDecisions => "podem_decisions",
            Counter::PodemBacktracks => "podem_backtracks",
            Counter::FaultSimBatches => "fault_sim_batches",
            Counter::FaultSimFaultEvals => "fault_sim_fault_evals",
            Counter::FaultSimDetections => "fault_sim_detections",
            Counter::StaticMergeSaved => "static_merge_saved",
            Counter::RepairPatterns => "repair_patterns",
            Counter::ReverseCompactionRemoved => "reverse_compaction_removed",
            Counter::PatternsFinal => "patterns_final",
            Counter::TdfFaults => "tdf_faults",
            Counter::TdfDetected => "tdf_detected",
            Counter::TdfPatterns => "tdf_patterns",
            Counter::BistPatterns => "bist_patterns",
            Counter::BistTopUpPatterns => "bist_top_up_patterns",
            Counter::BudgetTrips => "budget_trips",
            Counter::PoolTasks => "pool_tasks",
            Counter::PoolPanics => "pool_panics",
            // The store_* counters are *cache-state-dependent*: a warm
            // run reports hits where the cold run reported misses and
            // writes. They are excluded from the cross-run determinism
            // gates (the `"store_` filter) but are still deterministic
            // at a fixed cache state and --jobs-invariant.
            Counter::StoreHits => "store_hits",
            Counter::StoreMisses => "store_misses",
            Counter::StoreWrites => "store_writes",
            Counter::StoreEvictions => "store_evictions",
            // Retries depend on transient filesystem weather, so they
            // ride the same `"store_` exemption as the other store rows.
            Counter::StoreRetries => "store_retries",
            // The serve_* counters only move inside `modsoc serve`; CLI
            // runs report them as constant zeros, which keeps the
            // cross-run determinism diffs trivially green.
            Counter::ServeRequests => "serve_requests",
            Counter::ServeShed => "serve_shed",
            Counter::ServeCoalesceHits => "serve_coalesce_hits",
            Counter::ServePanics => "serve_panics",
            Counter::ServeDeadlineTrips => "serve_deadline_trips",
            Counter::ServeBatches => "serve_batches",
            Counter::ServeBatchedUnits => "serve_batched_units",
            Counter::ServeLaneLight => "serve_lane_light",
            Counter::ServeLaneHeavy => "serve_lane_heavy",
            Counter::ServeKeepAliveReuses => "serve_keepalive_reuses",
            Counter::ServeRequestTimeouts => "serve_request_timeouts",
            // Remote-store traffic: counted by the `modsoc serve`
            // daemon's `/store/*` endpoints (and by an `HttpBackend`
            // client on its side). Cache-state- and topology-dependent,
            // so they ride the `"store_` determinism-filter exemption.
            Counter::StoreRemoteGets => "store_remote_gets",
            Counter::StoreRemotePuts => "store_remote_puts",
            Counter::StoreRemoteJournalOps => "store_remote_journal_ops",
            // Claim/lease traffic from distributed `modsoc campaign`
            // workers partitioning a shared spec (CAS on unit + content
            // key). Contention-dependent, hence `store_`-exempted too.
            Counter::StoreClaimsAcquired => "store_claims_acquired",
            Counter::StoreClaimsHeld => "store_claims_held",
            Counter::StoreClaimsExpired => "store_claims_expired",
            // Rectangle bin-packing co-optimizer (`modsoc tam`): cores
            // packed, Pareto wrapper candidates enumerated, placements
            // that backfilled idle TAM windows, and placements bounced
            // off the power ceiling. All four are pure functions of the
            // input SOC and flags, so they sit under the full
            // determinism contract (no exemptions).
            Counter::TamPackCores => "tam_pack_cores",
            Counter::TamPackCandidates => "tam_pack_candidates",
            Counter::TamPackBackfills => "tam_pack_backfills",
            Counter::TamPackPowerRejects => "tam_pack_power_rejects",
        }
    }
}

/// Number of counters (the sink's array width).
pub const COUNTER_COUNT: usize = Counter::ALL.len();

/// Pipeline phases whose wall time is charged separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names + `name()` strings are the documentation
pub enum Phase {
    IndexBuild,
    FaultEnumerate,
    FaultCollapse,
    RandomPhase,
    PodemPhase,
    StaticCompaction,
    CoverageRepair,
    ReverseCompaction,
    FinalAccounting,
    Tdf,
    Bist,
    Flatten,
    ModularDispatch,
    MonolithicAtpg,
    TdvAnalysis,
    Parse,
    ServeRequest,
    ServeWaitLight,
    ServeWaitHeavy,
    TamPack,
}

impl Phase {
    /// Every phase, in canonical report order.
    pub const ALL: [Phase; 20] = [
        Phase::IndexBuild,
        Phase::FaultEnumerate,
        Phase::FaultCollapse,
        Phase::RandomPhase,
        Phase::PodemPhase,
        Phase::StaticCompaction,
        Phase::CoverageRepair,
        Phase::ReverseCompaction,
        Phase::FinalAccounting,
        Phase::Tdf,
        Phase::Bist,
        Phase::Flatten,
        Phase::ModularDispatch,
        Phase::MonolithicAtpg,
        Phase::TdvAnalysis,
        Phase::Parse,
        Phase::ServeRequest,
        Phase::ServeWaitLight,
        Phase::ServeWaitHeavy,
        Phase::TamPack,
    ];

    /// Position in [`Phase::ALL`] (the sink's array index).
    #[must_use]
    pub fn index(self) -> usize {
        Phase::ALL
            .iter()
            .position(|&p| p == self)
            .expect("every phase is listed in ALL")
    }

    /// Stable snake_case report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::IndexBuild => "index_build",
            Phase::FaultEnumerate => "fault_enumerate",
            Phase::FaultCollapse => "fault_collapse",
            Phase::RandomPhase => "random_phase",
            Phase::PodemPhase => "podem_phase",
            Phase::StaticCompaction => "static_compaction",
            Phase::CoverageRepair => "coverage_repair",
            Phase::ReverseCompaction => "reverse_compaction",
            Phase::FinalAccounting => "final_accounting",
            Phase::Tdf => "tdf",
            Phase::Bist => "bist",
            Phase::Flatten => "flatten",
            Phase::ModularDispatch => "modular_dispatch",
            Phase::MonolithicAtpg => "monolithic_atpg",
            Phase::TdvAnalysis => "tdv_analysis",
            Phase::Parse => "parse",
            Phase::ServeRequest => "serve_request",
            // Lane-queue wait time inside `modsoc serve`: how long a
            // parsed request sat in its admission lane before a worker
            // dispatched it. Like the serve_* counters, these never
            // move in CLI runs.
            Phase::ServeWaitLight => "serve_wait_light",
            Phase::ServeWaitHeavy => "serve_wait_heavy",
            Phase::TamPack => "tam_pack",
        }
    }
}

/// Number of phases (the sink's array width).
pub const PHASE_COUNT: usize = Phase::ALL.len();

/// Where instrumented code reports counters and phase timings.
///
/// Every method defaults to a no-op so that [`NullSink`] — the default
/// everywhere — keeps the disabled path branch-light: instrumented hot
/// loops accumulate into plain `u64` locals and *flush* through the sink
/// once per phase, so disabling metrics costs a handful of virtual
/// no-op calls per engine run, not per event.
pub trait MetricsSink: Send + Sync + std::fmt::Debug {
    /// Whether this sink records anything. Gates the `Instant::now()`
    /// calls in [`PhaseTimer`] so the null path never reads the clock.
    fn enabled(&self) -> bool {
        false
    }

    /// Add `delta` to a counter.
    fn add(&self, _counter: Counter, _delta: u64) {}

    /// Record one completed pass of `phase` taking `nanos` wall time.
    fn time(&self, _phase: Phase, _nanos: u64) {}

    /// Record a worker/shard row: `claimed` jobs executed in `busy_nanos`
    /// of wall time. `saturated` flags a `busy_nanos` that overflowed
    /// `u64` and was clamped — consumers must treat the clamped value as
    /// a floor, not a measurement. Worker rows are *scheduling-dependent*
    /// and excluded from the determinism contract.
    fn worker(&self, _worker: usize, _claimed: u64, _busy_nanos: u64, _saturated: bool) {}
}

/// The default sink: records nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl MetricsSink for NullSink {}

/// A sink that forwards every event to each of its children.
///
/// Used where one instrumented run must feed two observers at once —
/// e.g. the result store captures an engine run's counters for the cache
/// entry while the caller's own sink keeps seeing the run as usual.
#[derive(Debug, Clone, Default)]
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn MetricsSink>>,
}

impl TeeSink {
    /// A tee over the given children (order is the forwarding order).
    #[must_use]
    pub fn new(sinks: Vec<std::sync::Arc<dyn MetricsSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl MetricsSink for TeeSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn add(&self, counter: Counter, delta: u64) {
        for s in &self.sinks {
            s.add(counter, delta);
        }
    }

    fn time(&self, phase: Phase, nanos: u64) {
        for s in &self.sinks {
            s.time(phase, nanos);
        }
    }

    fn worker(&self, worker: usize, claimed: u64, busy_nanos: u64, saturated: bool) {
        for s in &self.sinks {
            s.worker(worker, claimed, busy_nanos, saturated);
        }
    }
}

/// One worker/shard utilization row (scheduling-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerRow {
    /// Worker (or shard) index within its pool.
    pub worker: usize,
    /// Jobs this worker claimed and executed.
    pub claimed: u64,
    /// Wall time spent executing jobs, in nanoseconds.
    pub busy_nanos: u64,
    /// Whether `busy_nanos` overflowed `u64` and was clamped to
    /// `u64::MAX` — the value is then a floor, not a measurement.
    pub saturated: bool,
}

/// The enabled sink: relaxed atomic counters and phase accumulators.
///
/// Cheap enough to leave on for whole-experiment runs (a few dozen
/// relaxed `fetch_add`s per engine run); snapshot with
/// [`RecordingSink::snapshot`].
#[derive(Debug)]
pub struct RecordingSink {
    counters: [AtomicU64; COUNTER_COUNT],
    phase_calls: [AtomicU64; PHASE_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
    workers: Mutex<Vec<WorkerRow>>,
}

impl Default for RecordingSink {
    fn default() -> RecordingSink {
        RecordingSink {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_calls: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            workers: Mutex::new(Vec::new()),
        }
    }
}

impl RecordingSink {
    /// A fresh sink with every counter at zero.
    #[must_use]
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// Copy the current state into a plain snapshot. Worker rows are
    /// sorted by `(worker, claimed, busy_nanos)` so a snapshot's
    /// non-deterministic section at least has a canonical layout.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut workers = self
            .workers
            .lock()
            .expect("metrics worker lock is never poisoned")
            .clone();
        workers.sort_unstable_by_key(|w| (w.worker, w.claimed, w.busy_nanos));
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            phase_calls: self
                .phase_calls
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            phase_nanos: self
                .phase_nanos
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            workers,
        }
    }
}

impl MetricsSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    fn time(&self, phase: Phase, nanos: u64) {
        self.phase_calls[phase.index()].fetch_add(1, Ordering::Relaxed);
        self.phase_nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    fn worker(&self, worker: usize, claimed: u64, busy_nanos: u64, saturated: bool) {
        self.workers
            .lock()
            .expect("metrics worker lock is never poisoned")
            .push(WorkerRow {
                worker,
                claimed,
                busy_nanos,
                saturated,
            });
    }
}

/// A plain-data copy of a sink's state: counters in [`Counter::ALL`]
/// order, phase accumulators in [`Phase::ALL`] order, plus the
/// scheduling-dependent worker rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, indexed by [`Counter::index`].
    pub counters: Vec<u64>,
    /// Completed passes per phase, indexed by [`Phase::index`].
    pub phase_calls: Vec<u64>,
    /// Accumulated wall nanoseconds per phase (non-deterministic).
    pub phase_nanos: Vec<u64>,
    /// Worker utilization rows (non-deterministic).
    pub workers: Vec<WorkerRow>,
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![0; COUNTER_COUNT],
            phase_calls: vec![0; PHASE_COUNT],
            phase_nanos: vec![0; PHASE_COUNT],
            workers: Vec::new(),
        }
    }
}

impl MetricsSnapshot {
    /// Value of one counter (zero when the snapshot predates the
    /// counter's introduction).
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.index()).copied().unwrap_or(0)
    }

    /// Completed passes of one phase.
    #[must_use]
    pub fn phase_calls(&self, p: Phase) -> u64 {
        self.phase_calls.get(p.index()).copied().unwrap_or(0)
    }

    /// Accumulated wall milliseconds of one phase (non-deterministic).
    #[must_use]
    pub fn phase_ms(&self, p: Phase) -> f64 {
        self.phase_nanos.get(p.index()).copied().unwrap_or(0) as f64 / 1e6
    }

    /// Whether the *deterministic* sections (counters and phase call
    /// counts) are equal; wall times and worker rows are exempt by
    /// contract.
    #[must_use]
    pub fn deterministic_eq(&self, other: &MetricsSnapshot) -> bool {
        self.counters == other.counters && self.phase_calls == other.phase_calls
    }

    /// Element-wise add `other` into `self` (worker rows are appended).
    /// Used to aggregate per-core snapshots into run totals — addition is
    /// order-invariant, so totals stay deterministic.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.phase_calls.iter_mut().zip(&other.phase_calls) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.phase_nanos.iter_mut().zip(&other.phase_nanos) {
            *a = a.saturating_add(*b);
        }
        self.workers.extend(other.workers.iter().copied());
    }
}

/// RAII wall-clock timer for one phase pass: reads the clock only when
/// the sink is enabled, and reports on drop.
///
/// ```
/// use modsoc_metrics::{MetricsSink, Phase, PhaseTimer, RecordingSink};
/// let sink = RecordingSink::new();
/// {
///     let _t = PhaseTimer::start(&sink, Phase::PodemPhase);
///     // ... timed work ...
/// }
/// assert_eq!(sink.snapshot().phase_calls(Phase::PodemPhase), 1);
/// ```
#[derive(Debug)]
pub struct PhaseTimer<'a> {
    sink: &'a dyn MetricsSink,
    phase: Phase,
    start: Option<Instant>,
}

impl<'a> PhaseTimer<'a> {
    /// Start timing `phase`. When the sink is disabled this never reads
    /// the clock and drop is a no-op.
    #[must_use]
    pub fn start(sink: &'a dyn MetricsSink, phase: Phase) -> PhaseTimer<'a> {
        PhaseTimer {
            sink,
            phase,
            start: sink.enabled().then(Instant::now),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.sink.time(self.phase, nanos);
        }
    }
}

/// Point-in-time consumption snapshot of a run budget — what was
/// configured and how much was drained. Produced by
/// `RunBudget::snapshot()` in `modsoc-atpg` and embedded in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSnapshot {
    /// Backtracks charged against the shared pool so far.
    pub backtracks_used: u64,
    /// Configured backtrack cap (`None` = unlimited).
    pub max_backtracks: Option<u64>,
    /// Configured pattern cap (`None` = unlimited).
    pub max_patterns: Option<u64>,
    /// Whether a wall-clock deadline was configured.
    pub deadline_set: bool,
    /// Whether the cancellation flag was raised.
    pub cancelled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_phase_tables_are_consistent() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
        // Names are unique (they become JSON keys).
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
        let mut pnames: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        pnames.sort_unstable();
        pnames.dedup();
        assert_eq!(pnames.len(), PHASE_COUNT);
    }

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.add(Counter::PodemCalls, 5);
        sink.time(Phase::PodemPhase, 100);
        sink.worker(0, 1, 1, false);
        // Nothing observable — NullSink has no state to inspect, the test
        // is that none of this panics and the timer skips the clock.
        let t = PhaseTimer::start(&sink, Phase::IndexBuild);
        assert!(t.start.is_none());
    }

    #[test]
    fn recording_sink_accumulates() {
        let sink = RecordingSink::new();
        sink.add(Counter::PodemDecisions, 3);
        sink.add(Counter::PodemDecisions, 4);
        sink.time(Phase::PodemPhase, 1_000);
        sink.time(Phase::PodemPhase, 2_000);
        sink.worker(1, 7, 500, false);
        sink.worker(2, 1, u64::MAX, true);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(Counter::PodemDecisions), 7);
        assert_eq!(snap.counter(Counter::PodemBacktracks), 0);
        assert_eq!(snap.phase_calls(Phase::PodemPhase), 2);
        assert!((snap.phase_ms(Phase::PodemPhase) - 0.003).abs() < 1e-9);
        assert_eq!(
            snap.workers,
            vec![
                WorkerRow {
                    worker: 1,
                    claimed: 7,
                    busy_nanos: 500,
                    saturated: false
                },
                WorkerRow {
                    worker: 2,
                    claimed: 1,
                    busy_nanos: u64::MAX,
                    saturated: true
                }
            ]
        );
    }

    #[test]
    fn phase_timer_records_once_on_drop() {
        let sink = RecordingSink::new();
        {
            let _t = PhaseTimer::start(&sink, Phase::FaultCollapse);
        }
        let snap = sink.snapshot();
        assert_eq!(snap.phase_calls(Phase::FaultCollapse), 1);
        assert_eq!(snap.phase_calls(Phase::IndexBuild), 0);
    }

    #[test]
    fn snapshot_absorb_sums_and_deterministic_eq_ignores_wall() {
        let a_sink = RecordingSink::new();
        a_sink.add(Counter::PoolTasks, 2);
        a_sink.time(Phase::ModularDispatch, 10);
        let b_sink = RecordingSink::new();
        b_sink.add(Counter::PoolTasks, 3);
        b_sink.time(Phase::ModularDispatch, 99_999);
        b_sink.worker(0, 3, 42, false);

        let mut total = MetricsSnapshot::default();
        total.absorb(&a_sink.snapshot());
        total.absorb(&b_sink.snapshot());
        assert_eq!(total.counter(Counter::PoolTasks), 5);
        assert_eq!(total.phase_calls(Phase::ModularDispatch), 2);
        assert_eq!(total.workers.len(), 1);

        // Same counters, wildly different wall time: deterministically equal.
        let mut other = total.clone();
        other.phase_nanos[Phase::ModularDispatch.index()] = 123_456_789;
        other.workers.clear();
        assert!(total.deterministic_eq(&other));
        assert_ne!(total, other);

        // A counter drift is a determinism violation.
        other.counters[Counter::PoolTasks.index()] += 1;
        assert!(!total.deterministic_eq(&other));
    }
}
