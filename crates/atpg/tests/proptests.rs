//! Property-based tests for the ATPG crate.

use proptest::prelude::*;

use modsoc_atpg::collapse::collapse_faults;
use modsoc_atpg::compact::merge_compatible;
use modsoc_atpg::fault::{enumerate_faults, Fault, FaultSite};
use modsoc_atpg::fault_sim::FaultSimulator;
use modsoc_atpg::pattern::{Bit, FillStrategy, TestCube, TestSet};
use modsoc_atpg::podem::{Podem, PodemOutcome};
use modsoc_netlist::sim::Simulator;
use modsoc_netlist::{Circuit, GateKind};

/// Random combinational circuit (same construction idea as the netlist
/// proptests: gates only reference earlier nodes).
fn build(inputs: usize, gates: &[(u8, Vec<usize>)], outputs: &[usize]) -> Circuit {
    let mut c = Circuit::new("rand");
    let mut nodes = Vec::new();
    for i in 0..inputs {
        nodes.push(c.add_input(format!("i{i}")));
    }
    for (gi, (sel, fanin_sel)) in gates.iter().enumerate() {
        let kind = match sel % 8 {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            5 => GateKind::Xnor,
            6 => GateKind::Not,
            _ => GateKind::Buf,
        };
        let arity = match kind {
            GateKind::Not | GateKind::Buf => 1,
            _ => fanin_sel.len().clamp(1, 3),
        };
        let fanin: Vec<_> = fanin_sel
            .iter()
            .take(arity)
            .map(|&s| nodes[s % nodes.len()])
            .collect();
        let kind = if fanin.len() == 1 && !matches!(kind, GateKind::Not | GateKind::Buf) {
            GateKind::Buf
        } else {
            kind
        };
        nodes.push(c.add_gate(format!("g{gi}"), kind, &fanin).expect("gate"));
    }
    for &o in outputs {
        c.mark_output(nodes[o % nodes.len()]);
    }
    c
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..6, 1usize..20, 1usize..4)
        .prop_flat_map(|(inputs, n_gates, n_outputs)| {
            (
                Just(inputs),
                proptest::collection::vec(
                    (any::<u8>(), proptest::collection::vec(any::<usize>(), 1..4)),
                    n_gates..=n_gates,
                ),
                proptest::collection::vec(any::<usize>(), n_outputs..=n_outputs),
            )
        })
        .prop_map(|(inputs, gates, outputs)| build(inputs, &gates, &outputs))
}

fn arb_patterns(width: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), width..=width),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn event_driven_fault_sim_matches_naive(circuit in arb_circuit(), seed in any::<u64>()) {
        let patterns: Vec<Vec<bool>> = (0..8u64)
            .map(|k| {
                (0..circuit.input_count())
                    .map(|i| (seed.rotate_left((k * 7 + i as u64) as u32)) & 1 == 1)
                    .collect()
            })
            .collect();
        let mut fsim = FaultSimulator::new(&circuit).expect("fsim");
        let sim = Simulator::new(&circuit).expect("sim");
        let mut words = vec![0u64; circuit.input_count()];
        for (slot, p) in patterns.iter().enumerate() {
            for (i, &b) in p.iter().enumerate() {
                if b {
                    words[i] |= 1 << slot;
                }
            }
        }
        let good = sim.run_on(&circuit, &words);
        let active = (1u64 << patterns.len()) - 1;
        for fault in enumerate_faults(&circuit) {
            if let FaultSite::Stem(site) = fault.site {
                let forced = if fault.stuck_at_one { u64::MAX } else { 0 };
                let bad = sim.run_with_forced_node(&circuit, &words, site, forced);
                let mut want = 0u64;
                for &po in circuit.outputs() {
                    want |= good[po.index()] ^ bad[po.index()];
                }
                want &= active;
                let masks = fsim.detection_masks(&patterns, &[fault]).expect("masks");
                prop_assert_eq!(masks[0], want, "fault {}", fault.describe(&circuit));
            }
        }
    }

    #[test]
    fn podem_results_are_sound(circuit in arb_circuit()) {
        let mut podem = Podem::new(&circuit, 500).expect("podem");
        let sim = Simulator::new(&circuit).expect("sim");
        for fault in collapse_faults(&circuit).representatives() {
            match podem.generate(*fault).expect("generate") {
                PodemOutcome::Test(cube) => {
                    // Detection must hold for EVERY fill of the cube.
                    for fill in [FillStrategy::Zeros, FillStrategy::Ones] {
                        let filled = cube.fill(fill);
                        let mut fsim = FaultSimulator::new(&circuit).expect("fsim");
                        let masks = fsim
                            .detection_masks(&[filled], &[*fault])
                            .expect("masks");
                        prop_assert_eq!(
                            masks[0] & 1,
                            1,
                            "cube for {} fails under {:?}",
                            fault.describe(&circuit),
                            fill
                        );
                    }
                    let _ = &sim;
                }
                PodemOutcome::Redundant => {
                    // Exhaustively verify on small input counts.
                    if circuit.input_count() <= 6 {
                        let all: Vec<Vec<bool>> = (0..(1usize << circuit.input_count()))
                            .map(|row| {
                                (0..circuit.input_count()).map(|i| (row >> i) & 1 == 1).collect()
                            })
                            .collect();
                        let mut fsim = FaultSimulator::new(&circuit).expect("fsim");
                        for chunk in all.chunks(64) {
                            let masks = fsim.detection_masks(chunk, &[*fault]).expect("masks");
                            prop_assert_eq!(
                                masks[0],
                                0,
                                "claimed redundant {} is detectable",
                                fault.describe(&circuit)
                            );
                        }
                    }
                }
                PodemOutcome::Aborted => {}
            }
        }
    }

    #[test]
    fn merge_preserves_specified_bits_and_count(
        cubes in proptest::collection::vec(
            proptest::collection::vec(0u8..3, 8..=8),
            1..12,
        )
    ) {
        let mut set = TestSet::new(8);
        for c in &cubes {
            set.push(TestCube::from_bits(
                c.iter()
                    .map(|&b| match b {
                        0 => Bit::Zero,
                        1 => Bit::One,
                        _ => Bit::X,
                    })
                    .collect(),
            ));
        }
        let merged = merge_compatible(&set);
        prop_assert!(merged.len() <= set.len());
        // Every original cube must be subsumed by some merged pattern.
        for cube in set.cubes() {
            let subsumed = merged.cubes().iter().any(|m| {
                (0..8).all(|i| cube.bit(i) == Bit::X || m.bit(i) == cube.bit(i))
            });
            prop_assert!(subsumed, "cube {} lost", cube);
        }
    }

    #[test]
    fn fill_respects_specified_bits(
        bits in proptest::collection::vec(0u8..3, 1..32),
        seed in any::<u64>(),
    ) {
        let cube = TestCube::from_bits(
            bits.iter()
                .map(|&b| match b {
                    0 => Bit::Zero,
                    1 => Bit::One,
                    _ => Bit::X,
                })
                .collect(),
        );
        for fill in [
            FillStrategy::Zeros,
            FillStrategy::Ones,
            FillStrategy::Random { seed },
        ] {
            let filled = cube.fill(fill);
            for (i, &b) in bits.iter().enumerate() {
                match b {
                    0 => prop_assert!(!filled[i]),
                    1 => prop_assert!(filled[i]),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn collapsing_never_loses_detection(circuit in arb_circuit(), patterns_seed in any::<u64>()) {
        // A pattern set detecting all representatives detects the whole
        // universe: every universe fault's class representative being
        // detected implies the member is detected by SOME pattern in a
        // complete set. Weaker checkable property: class_of is total and
        // representatives belong to the universe.
        let collapsed = collapse_faults(&circuit);
        let universe = enumerate_faults(&circuit);
        prop_assert_eq!(collapsed.universe_size(), universe.len());
        for f in &universe {
            prop_assert!(collapsed.class_of(*f).is_some());
        }
        for rep in collapsed.representatives() {
            prop_assert!(universe.contains(rep), "rep {rep} outside universe");
        }
        let _ = patterns_seed;
    }

    #[test]
    fn detection_masks_respect_active_window(circuit in arb_circuit(), patterns in arb_patterns(4)) {
        // Use only circuits with exactly 4 inputs for this property.
        if circuit.input_count() != 4 {
            return Ok(());
        }
        let mut fsim = FaultSimulator::new(&circuit).expect("fsim");
        let faults: Vec<Fault> = enumerate_faults(&circuit);
        let n = patterns.len().min(64);
        let masks = fsim
            .detection_masks(&patterns[..n], &faults)
            .expect("masks");
        let active = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        for m in masks {
            prop_assert_eq!(m & !active, 0);
        }
    }

    #[test]
    fn tail_widths_count_like_per_pattern_sim(circuit in arb_circuit(), seed in any::<u64>()) {
        // The word-boundary widths that exercise `active_mask` tail
        // handling: a lone pattern, one short of a full 64-pattern word,
        // exactly one word, and one pattern into a second word.
        use modsoc_atpg::fault_sim::{detection_counts, detection_counts_threaded};
        let faults: Vec<Fault> = collapse_faults(&circuit).representatives().to_vec();
        for width in [1usize, 63, 64, 65] {
            let patterns: Vec<Vec<bool>> = (0..width as u64)
                .map(|k| {
                    (0..circuit.input_count())
                        .map(|i| (seed.rotate_left((k * 11 + i as u64) as u32)) & 1 == 1)
                        .collect()
                })
                .collect();
            let counts = detection_counts(&circuit, &patterns, &faults).expect("counts");
            // Ground truth: one pattern at a time, so every call uses the
            // single-bit active window and no tail can leak.
            let mut per_pattern = vec![0u32; faults.len()];
            for p in &patterns {
                let single = detection_counts(&circuit, std::slice::from_ref(p), &faults)
                    .expect("single");
                for (acc, c) in per_pattern.iter_mut().zip(single) {
                    *acc += c;
                }
            }
            prop_assert_eq!(&counts, &per_pattern, "width {}", width);
            // And the sharded run is identical at any jobs value.
            let sharded = detection_counts_threaded(&circuit, &patterns, &faults, 3)
                .expect("sharded");
            prop_assert_eq!(&counts, &sharded, "width {} sharded", width);
        }
    }

    #[test]
    fn budgeted_masks_stay_inside_active_window(circuit in arb_circuit(), seed in any::<u64>()) {
        // The budget-trip regression (word-boundary widths): a partial
        // result returned mid-batch must still be confined to the active
        // pattern window, and an untripped budget must change nothing.
        use modsoc_atpg::budget::RunBudget;
        use modsoc_atpg::fault_sim::active_mask;
        let faults: Vec<Fault> = collapse_faults(&circuit).representatives().to_vec();
        for width in [63usize, 64, 65] {
            let patterns: Vec<Vec<bool>> = (0..width as u64)
                .map(|k| {
                    (0..circuit.input_count())
                        .map(|i| (seed.rotate_left((k * 13 + i as u64) as u32)) & 1 == 1)
                        .collect()
                })
                .collect();
            let mut fsim = FaultSimulator::new(&circuit).expect("fsim");
            // The budgeted API takes one ≤64-pattern batch, so width 65
            // exercises the caller-side chunking with a 1-pattern tail.
            for chunk in patterns.chunks(64) {
                let plain = fsim.detection_masks(chunk, &faults).expect("plain");
                let open = RunBudget::unlimited();
                let (unbudgeted, reason) = fsim
                    .detection_masks_budgeted(chunk, &faults, &open)
                    .expect("open");
                prop_assert_eq!(reason, None, "width {}", width);
                prop_assert_eq!(&unbudgeted, &plain, "width {} untripped", width);
                let tripped = RunBudget::unlimited();
                tripped.cancel();
                let (partial, reason) = fsim
                    .detection_masks_budgeted(chunk, &faults, &tripped)
                    .expect("tripped");
                prop_assert!(reason.is_some(), "width {} should trip", width);
                let tail = active_mask(chunk.len());
                for (m, full) in partial.iter().zip(&plain) {
                    prop_assert_eq!(m & !tail, 0, "width {} leaked past window", width);
                    // A partial mask only ever reports true detections.
                    prop_assert_eq!(m & !full, 0, "width {} invented detections", width);
                }
            }
        }
    }
}
