//! Bit-parallel stuck-at fault simulation (PPSFP).
//!
//! Simulates 64 fully-specified patterns per pass. The good circuit is
//! evaluated once per batch; each fault is then propagated event-driven
//! from its site through its fanout cone only, which keeps per-fault cost
//! proportional to the size of the affected region rather than the whole
//! circuit.

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use modsoc_metrics::{MetricsSink, NullSink};
use modsoc_netlist::sim::Simulator;
use modsoc_netlist::{Circuit, GateKind, NodeId, StructuralIndex};

use crate::budget::{ExhaustReason, RunBudget};
use crate::error::AtpgError;
use crate::fault::{Fault, FaultSite};

/// How many faults a budgeted sweep processes between budget polls
/// (polling costs an `Instant::now()`; per-fault propagation is usually
/// far cheaper, so polling every fault would dominate small cones).
pub const BUDGET_POLL_STRIDE: usize = 256;

/// Resolve a job-count request: `0` means "all available hardware
/// threads" (1 when detection fails); anything else is used as given.
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Mask of the valid pattern slots for a batch of `n` patterns: the low
/// `n` bits set, saturating at the full word for `n >= 64`.
///
/// This is the *one* place the `n == 64` shift-overflow special case
/// lives; every `chunks(64)` tail in the fault-sim/diagnosis/TDF paths
/// must come through here rather than hand-rolling `(1 << n) - 1`.
#[must_use]
pub fn active_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// A fault simulator bound to one combinational circuit.
///
/// Holds reusable scratch buffers; create once and call
/// [`FaultSimulator::detection_masks`] per 64-pattern batch. `Clone` is
/// cheap relative to [`FaultSimulator::new`] (the shared
/// [`StructuralIndex`] is reference-counted, not recomputed), which is
/// how the sharded entry points hand each worker thread its own
/// simulator.
#[derive(Debug, Clone)]
pub struct FaultSimulator<'a> {
    circuit: &'a Circuit,
    sim: Simulator,
    index: Arc<StructuralIndex>,
    // Scratch (epoch-stamped faulty values).
    faulty: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl<'a> FaultSimulator<'a> {
    /// Build a fault simulator (and its own [`StructuralIndex`]).
    ///
    /// # Errors
    ///
    /// Fails on sequential or invalid circuits.
    pub fn new(circuit: &'a Circuit) -> Result<FaultSimulator<'a>, AtpgError> {
        let index = Arc::new(StructuralIndex::build(circuit)?);
        FaultSimulator::with_index(circuit, index)
    }

    /// Build a fault simulator borrowing a prebuilt shared index instead
    /// of deriving a private one — the engine threads one index through
    /// collapsing, PODEM, and every fault-simulation pass.
    ///
    /// # Errors
    ///
    /// Fails on sequential or invalid circuits.
    ///
    /// # Panics
    ///
    /// Panics if `index` was built for a different circuit (node counts
    /// disagree).
    pub fn with_index(
        circuit: &'a Circuit,
        index: Arc<StructuralIndex>,
    ) -> Result<FaultSimulator<'a>, AtpgError> {
        assert_eq!(
            index.node_count(),
            circuit.node_count(),
            "structural index does not match circuit"
        );
        let sim = Simulator::new(circuit)?;
        Ok(FaultSimulator {
            circuit,
            sim,
            index,
            faulty: vec![0; circuit.node_count()],
            stamp: vec![0; circuit.node_count()],
            epoch: 0,
        })
    }

    /// Evaluate the good circuit for a batch of ≤64 patterns.
    ///
    /// Returns `(per-node packed values, number of patterns in the batch)`.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::PatternWidth`] if any pattern width differs
    /// from the circuit's input count.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 patterns are supplied.
    pub fn good_values(&self, patterns: &[Vec<bool>]) -> Result<(Vec<u64>, usize), AtpgError> {
        assert!(patterns.len() <= 64, "at most 64 patterns per batch");
        let width = self.circuit.input_count();
        for p in patterns {
            if p.len() != width {
                return Err(AtpgError::PatternWidth {
                    expected: width,
                    got: p.len(),
                });
            }
        }
        let mut words = vec![0u64; width];
        for (slot, p) in patterns.iter().enumerate() {
            for (i, &b) in p.iter().enumerate() {
                if b {
                    words[i] |= 1 << slot;
                }
            }
        }
        Ok((self.sim.run_on(self.circuit, &words), patterns.len()))
    }

    /// Which of the batch's patterns detect `fault`: bit `k` of the result
    /// is set iff pattern `k` produces a different value on some primary
    /// output in the faulty circuit.
    ///
    /// `good` must come from [`FaultSimulator::good_values`] for the same
    /// batch; `active` masks the valid pattern slots.
    pub fn detection_mask(&mut self, good: &[u64], active: u64, fault: Fault) -> u64 {
        self.propagate(good, fault);
        let mut mask = 0u64;
        for &po in self.circuit.outputs() {
            mask |= good[po.index()] ^ self.value_of(po, good);
        }
        mask & active
    }

    /// Per-output detection masks for one fault: element `k` is the
    /// pattern mask on which primary output `k` mismatches. One faulty
    /// propagation serves all outputs.
    pub fn output_detection_masks(&mut self, good: &[u64], active: u64, fault: Fault) -> Vec<u64> {
        self.propagate(good, fault);
        self.circuit
            .outputs()
            .iter()
            .map(|&po| (good[po.index()] ^ self.value_of(po, good)) & active)
            .collect()
    }

    /// Detection mask restricted to one primary output (by output
    /// index). Prefer [`FaultSimulator::output_detection_masks`] when
    /// several outputs are needed.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    pub fn output_detection_mask(
        &mut self,
        good: &[u64],
        active: u64,
        fault: Fault,
        output: usize,
    ) -> u64 {
        self.propagate(good, fault);
        let po = self.circuit.outputs()[output];
        (good[po.index()] ^ self.value_of(po, good)) & active
    }

    /// Event-driven faulty-value propagation; leaves the epoch state
    /// holding the faulty values for the current batch.
    fn propagate(&mut self, good: &[u64], fault: Fault) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap: invalidate everything once.
            self.stamp.fill(u32::MAX);
            self.epoch = 1;
        }
        let stuck_word = if fault.stuck_at_one { u64::MAX } else { 0 };

        // Seed the event queue.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();
        match fault.site {
            FaultSite::Stem(site) => {
                if good[site.index()] != stuck_word {
                    self.set_faulty(site, stuck_word);
                    for &fo in self.index.fanouts(site) {
                        heap.push(std::cmp::Reverse((
                            self.index.topo_pos(fo),
                            fo.index() as u32,
                        )));
                    }
                }
            }
            FaultSite::Pin { gate, pin } => {
                let v = self.eval_faulty(gate, good, Some((pin, stuck_word)));
                if v != good[gate.index()] {
                    self.set_faulty(gate, v);
                    for &fo in self.index.fanouts(gate) {
                        heap.push(std::cmp::Reverse((
                            self.index.topo_pos(fo),
                            fo.index() as u32,
                        )));
                    }
                }
            }
        }

        while let Some(std::cmp::Reverse((_, raw))) = heap.pop() {
            let id = NodeId::from_index(raw as usize);
            // A node can be queued multiple times; the first (lowest topo
            // position is unique per node) evaluation is authoritative —
            // dedupe by checking whether recomputation changes anything.
            let pinforce = match fault.site {
                FaultSite::Pin { gate, pin } if gate == id => {
                    Some((pin, if fault.stuck_at_one { u64::MAX } else { 0 }))
                }
                _ => None,
            };
            let v = self.eval_faulty(id, good, pinforce);
            let current = self.value_of(id, good);
            if v == current {
                continue;
            }
            // A stem fault site never re-evaluates (it has no upstream
            // events), so no special case needed here.
            self.set_faulty(id, v);
            for &fo in self.index.fanouts(id) {
                heap.push(std::cmp::Reverse((
                    self.index.topo_pos(fo),
                    fo.index() as u32,
                )));
            }
        }
    }

    /// Detection masks for a whole fault list against one batch.
    ///
    /// # Errors
    ///
    /// Propagates pattern width errors.
    pub fn detection_masks(
        &mut self,
        patterns: &[Vec<bool>],
        faults: &[Fault],
    ) -> Result<Vec<u64>, AtpgError> {
        let (good, n) = self.good_values(patterns)?;
        let active = active_mask(n);
        Ok(faults
            .iter()
            .map(|&f| self.detection_mask(&good, active, f))
            .collect())
    }

    /// [`FaultSimulator::detection_masks`] under a [`RunBudget`]: the
    /// deadline/cancellation flags are polled every
    /// [`BUDGET_POLL_STRIDE`] faults. On a trip the sweep stops early and
    /// the reason is returned alongside the masks; unprocessed faults
    /// keep an all-zero mask, which downstream fault dropping reads as
    /// "not detected" — conservative, never unsound.
    ///
    /// # Errors
    ///
    /// Propagates pattern width errors.
    pub fn detection_masks_budgeted(
        &mut self,
        patterns: &[Vec<bool>],
        faults: &[Fault],
        budget: &RunBudget,
    ) -> Result<(Vec<u64>, Option<ExhaustReason>), AtpgError> {
        let (good, n) = self.good_values(patterns)?;
        let active = active_mask(n);
        let mut masks = vec![0u64; faults.len()];
        for (i, &f) in faults.iter().enumerate() {
            if i % BUDGET_POLL_STRIDE == 0 {
                if let Some(reason) = budget.check() {
                    return Ok((masks, Some(reason)));
                }
            }
            masks[i] = self.detection_mask(&good, active, f);
        }
        Ok((masks, None))
    }

    fn value_of(&self, id: NodeId, good: &[u64]) -> u64 {
        if self.stamp[id.index()] == self.epoch {
            self.faulty[id.index()]
        } else {
            good[id.index()]
        }
    }

    fn set_faulty(&mut self, id: NodeId, v: u64) {
        self.stamp[id.index()] = self.epoch;
        self.faulty[id.index()] = v;
    }

    fn eval_faulty(&self, id: NodeId, good: &[u64], pinforce: Option<(usize, u64)>) -> u64 {
        let node = self.circuit.node(id);
        if node.kind == GateKind::Input {
            return good[id.index()];
        }
        let mut buf = [0u64; 16];
        let mut vec_buf;
        let fanin: &mut [u64] = if node.fanin.len() <= 16 {
            &mut buf[..node.fanin.len()]
        } else {
            vec_buf = vec![0u64; node.fanin.len()];
            &mut vec_buf
        };
        for (k, f) in node.fanin.iter().enumerate() {
            fanin[k] = self.value_of(*f, good);
        }
        if let Some((pin, w)) = pinforce {
            fanin[pin] = w;
        }
        node.kind.eval64(fanin)
    }
}

/// Fraction of `faults` detected by `patterns` (serial convenience used in
/// tests and coverage reporting).
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn fault_coverage(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
) -> Result<f64, AtpgError> {
    if faults.is_empty() {
        return Ok(1.0);
    }
    let mut fsim = FaultSimulator::new(circuit)?;
    let mut detected = vec![false; faults.len()];
    for chunk in patterns.chunks(64) {
        let masks = fsim.detection_masks(chunk, faults)?;
        for (d, m) in detected.iter_mut().zip(masks) {
            if m != 0 {
                *d = true;
            }
        }
    }
    Ok(detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64)
}

/// Shard `faults` into contiguous runs across `jobs` OS threads, each
/// worker owning a clone of one prototype simulator, and concatenate the
/// per-shard results **in fault order**. Because faults are independent,
/// the merged output is identical to running `per_shard` once over the
/// whole list — the parallel split is invisible in the results.
///
/// A worker panic is re-raised on the calling thread after the scope
/// joins (payload preserved).
///
/// When `sink` is enabled, each shard reports a worker-utilization row
/// (shard index, faults claimed, busy wall time). Rows are
/// scheduling-dependent and excluded from the determinism contract; the
/// computed results are unaffected.
fn run_sharded<T: Send>(
    mut proto: FaultSimulator<'_>,
    faults: &[Fault],
    jobs: usize,
    sink: &dyn MetricsSink,
    per_shard: impl Fn(&mut FaultSimulator<'_>, &[Fault]) -> Result<Vec<T>, AtpgError> + Sync,
) -> Result<Vec<T>, AtpgError> {
    let timed = |shard_idx: usize,
                 fsim: &mut FaultSimulator<'_>,
                 shard: &[Fault]|
     -> Result<Vec<T>, AtpgError> {
        let start = sink.enabled().then(Instant::now);
        let out = per_shard(fsim, shard);
        if let Some(start) = start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.worker(shard_idx, shard.len() as u64, nanos);
        }
        out
    };
    let jobs = jobs.max(1);
    if jobs == 1 || faults.len() < 2 * jobs {
        return timed(0, &mut proto, faults);
    }
    let chunk_len = faults.len().div_ceil(jobs);
    let results: Vec<Result<Vec<T>, AtpgError>> = std::thread::scope(|scope| {
        let proto = &proto;
        let timed = &timed;
        let handles: Vec<_> = faults
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || timed(i, &mut proto.clone(), chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut out = Vec::with_capacity(faults.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Per-fault *detection counts* of a pattern set: how many patterns
/// detect each fault. The industrial n-detect quality metric — faults
/// detected only once are fragile against timing/bridging defect
/// behaviour, so production flows often require `n ≥ 3..5`.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detection_counts(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
) -> Result<Vec<u32>, AtpgError> {
    detection_counts_threaded(circuit, patterns, faults, 1)
}

/// [`detection_counts`] with the collapsed fault list sharded across
/// `jobs` OS threads (each worker owns a [`FaultSimulator`] clone).
/// The order-preserving merge makes the result identical to the serial
/// run at any `jobs` value.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detection_counts_threaded(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
) -> Result<Vec<u32>, AtpgError> {
    run_sharded(
        FaultSimulator::new(circuit)?,
        faults,
        jobs,
        &NullSink,
        |fsim, shard| {
            let mut counts = vec![0u32; shard.len()];
            for chunk in patterns.chunks(64) {
                let masks = fsim.detection_masks(chunk, shard)?;
                for (c, m) in counts.iter_mut().zip(masks) {
                    *c += m.count_ones();
                }
            }
            Ok(counts)
        },
    )
}

/// Which faults the pattern set detects at all: the boolean reduction of
/// [`detection_counts_threaded`], sharded the same way. This is the
/// engine's final-accounting primitive (`detected[i]` ⇔ some pattern
/// flips some output under fault `i`).
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detected_faults(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
) -> Result<Vec<bool>, AtpgError> {
    detected_faults_via(FaultSimulator::new(circuit)?, patterns, faults, jobs)
}

/// [`detected_faults`] against a prebuilt shared [`StructuralIndex`]:
/// every worker clone borrows the same index instead of re-deriving the
/// fanout adjacency and topological order per call.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detected_faults_indexed(
    circuit: &Circuit,
    index: &Arc<StructuralIndex>,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
) -> Result<Vec<bool>, AtpgError> {
    detected_faults_indexed_metered(circuit, index, patterns, faults, jobs, &NullSink)
}

/// [`detected_faults_indexed`] reporting per-shard worker-utilization
/// rows into a [`MetricsSink`] (shard index, faults claimed, busy wall
/// time). The computed detection results are byte-identical to the
/// unmetered entry point at any `jobs` value.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detected_faults_indexed_metered(
    circuit: &Circuit,
    index: &Arc<StructuralIndex>,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
    sink: &dyn MetricsSink,
) -> Result<Vec<bool>, AtpgError> {
    detected_faults_via_sink(
        FaultSimulator::with_index(circuit, Arc::clone(index))?,
        patterns,
        faults,
        jobs,
        sink,
    )
}

fn detected_faults_via(
    proto: FaultSimulator<'_>,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
) -> Result<Vec<bool>, AtpgError> {
    detected_faults_via_sink(proto, patterns, faults, jobs, &NullSink)
}

fn detected_faults_via_sink(
    proto: FaultSimulator<'_>,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
    sink: &dyn MetricsSink,
) -> Result<Vec<bool>, AtpgError> {
    run_sharded(proto, faults, jobs, sink, |fsim, shard| {
        let mut detected = vec![false; shard.len()];
        for chunk in patterns.chunks(64) {
            let masks = fsim.detection_masks(chunk, shard)?;
            for (d, m) in detected.iter_mut().zip(masks) {
                if m != 0 {
                    *d = true;
                }
            }
        }
        Ok(detected)
    })
}

/// Detection masks for a whole fault list against one ≤64-pattern batch,
/// computed on `threads` OS threads (each with its own simulator and
/// scratch). Results are identical to the serial
/// [`FaultSimulator::detection_masks`] — faults are independent, so the
/// split is embarrassingly parallel and fully deterministic.
///
/// Worth using from roughly 10k faults × 10k gates upward; below that
/// the per-thread good-circuit evaluation dominates.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detection_masks_threaded(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    threads: usize,
) -> Result<Vec<u64>, AtpgError> {
    run_sharded(
        FaultSimulator::new(circuit)?,
        faults,
        threads,
        &NullSink,
        |fsim, shard| fsim.detection_masks(patterns, shard),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::enumerate_faults;
    use modsoc_netlist::bench_format::parse_bench;

    fn c17() -> Circuit {
        parse_bench(
            "c17",
            "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
",
        )
        .unwrap()
    }

    /// Reference: full re-simulation per fault via forced node (stems only).
    fn naive_stem_mask(c: &Circuit, patterns: &[Vec<bool>], fault: Fault) -> u64 {
        let sim = Simulator::new(c).unwrap();
        let mut words = vec![0u64; c.input_count()];
        for (slot, p) in patterns.iter().enumerate() {
            for (i, &b) in p.iter().enumerate() {
                if b {
                    words[i] |= 1 << slot;
                }
            }
        }
        let site = match fault.site {
            FaultSite::Stem(s) => s,
            _ => unreachable!(),
        };
        let forced = if fault.stuck_at_one { u64::MAX } else { 0 };
        let good = sim.run_on(c, &words);
        let bad = sim.run_with_forced_node(c, &words, site, forced);
        let mut mask = 0;
        for &po in c.outputs() {
            mask |= good[po.index()] ^ bad[po.index()];
        }
        mask & active_mask(patterns.len())
    }

    fn all_input_patterns(n: usize) -> Vec<Vec<bool>> {
        (0..(1usize << n))
            .map(|row| (0..n).map(|i| (row >> i) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn event_driven_matches_naive_on_c17_stems() {
        let c = c17();
        let patterns = all_input_patterns(5)
            .into_iter()
            .take(32)
            .collect::<Vec<_>>();
        let mut fsim = FaultSimulator::new(&c).unwrap();
        for fault in enumerate_faults(&c) {
            if !matches!(fault.site, FaultSite::Stem(_)) {
                continue;
            }
            let masks = fsim.detection_masks(&patterns, &[fault]).unwrap();
            let naive = naive_stem_mask(&c, &patterns, fault);
            assert_eq!(masks[0], naive, "mismatch for {}", fault.describe(&c));
        }
    }

    #[test]
    fn exhaustive_patterns_detect_all_c17_faults() {
        let c = c17();
        let patterns = all_input_patterns(5);
        let faults = enumerate_faults(&c);
        let cov = fault_coverage(&c, &patterns, &faults).unwrap();
        assert!(
            (cov - 1.0).abs() < 1e-12,
            "c17 is fully testable, got {cov}"
        );
    }

    #[test]
    fn pin_fault_differs_from_stem_fault() {
        // a fans to g1=AND(a,b) and g2=OR(a,b). Pattern a=0,b=1:
        // stem a s-a-1 flips g2's cone? g2 = OR(1,1)=1 vs good OR(0,1)=1 —
        // no; g1 = AND(1,1)=1 vs good 0 — detected at g1 AND g2 unchanged.
        // branch a->g2 s-a-1 with a=0,b=0: good g2=0, faulty OR(1,0)=1 ->
        // detected only via g2; g1 unaffected.
        let mut c = Circuit::new("br");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Or, &[a, b]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let patterns = vec![vec![false, false]];
        let masks = fsim
            .detection_masks(
                &patterns,
                &[Fault::pin(g2, 0, true), Fault::pin(g1, 0, true)],
            )
            .unwrap();
        assert_eq!(masks[0], 0b1, "branch to OR detected by 00");
        assert_eq!(
            masks[1], 0b0,
            "branch to AND not detected by 00 (b=0 blocks)"
        );
    }

    #[test]
    fn undetectable_fault_never_flags() {
        // g = OR(a, NOT(a)): g s-a-1 undetectable by any pattern.
        let mut c = Circuit::new("red");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::Or, &[a, n]).unwrap();
        c.mark_output(g);
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let patterns = all_input_patterns(1);
        let masks = fsim
            .detection_masks(&patterns, &[Fault::stem_sa1(g)])
            .unwrap();
        assert_eq!(masks[0], 0);
    }

    #[test]
    fn batch_active_mask_respected() {
        let c = c17();
        let mut fsim = FaultSimulator::new(&c).unwrap();
        // 3 patterns: mask must fit in low 3 bits.
        let patterns = all_input_patterns(5)
            .into_iter()
            .take(3)
            .collect::<Vec<_>>();
        let faults = enumerate_faults(&c);
        for m in fsim.detection_masks(&patterns, &faults).unwrap() {
            assert_eq!(m & !0b111, 0);
        }
    }

    #[test]
    fn detection_counts_sum_mask_bits() {
        let c = c17();
        let patterns = all_input_patterns(5);
        let faults = enumerate_faults(&c);
        let counts = detection_counts(&c, &patterns, &faults).unwrap();
        // Exhaustive patterns: every testable fault has n-detect >= 1,
        // and most well above (c17 is highly random-testable).
        assert!(counts.iter().all(|&n| n >= 1));
        assert!(counts.iter().any(|&n| n >= 4));
        // Cross-check one fault against the mask popcount.
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let mut manual = 0u32;
        for chunk in patterns.chunks(64) {
            manual += fsim.detection_masks(chunk, &faults[..1]).unwrap()[0].count_ones();
        }
        assert_eq!(counts[0], manual);
    }

    #[test]
    fn threaded_masks_match_serial() {
        let c = c17();
        let patterns = all_input_patterns(5);
        let faults = enumerate_faults(&c);
        let serial = FaultSimulator::new(&c)
            .unwrap()
            .detection_masks(&patterns[..32], &faults)
            .unwrap();
        for threads in [1, 2, 3, 8] {
            let parallel = detection_masks_threaded(&c, &patterns[..32], &faults, threads).unwrap();
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn threaded_on_larger_circuit() {
        // A bigger randomized circuit: build via repeated gates.
        let mut c = Circuit::new("big");
        let mut prev: Vec<_> = (0..12).map(|i| c.add_input(format!("i{i}"))).collect();
        for layer in 0..6 {
            let mut next = Vec::new();
            for (k, pair) in prev.chunks(2).enumerate() {
                let kind = match (layer + k) % 4 {
                    0 => GateKind::Nand,
                    1 => GateKind::Xor,
                    2 => GateKind::Or,
                    _ => GateKind::Nor,
                };
                let g = if pair.len() == 2 {
                    c.add_gate(format!("g{layer}_{k}"), kind, &[pair[0], pair[1]])
                        .unwrap()
                } else {
                    c.add_gate(format!("g{layer}_{k}"), GateKind::Not, &[pair[0]])
                        .unwrap()
                };
                next.push(g);
            }
            next.extend(prev.iter().skip(next.len() * 2).copied());
            prev = next;
            if prev.len() == 1 {
                break;
            }
        }
        for &p in &prev {
            c.mark_output(p);
        }
        let patterns: Vec<Vec<bool>> = (0..64u64)
            .map(|k| (0..12).map(|i| (k >> (i % 6)) & 1 == 1).collect())
            .collect();
        let faults = enumerate_faults(&c);
        let serial = FaultSimulator::new(&c)
            .unwrap()
            .detection_masks(&patterns, &faults)
            .unwrap();
        let parallel = detection_masks_threaded(&c, &patterns, &faults, 4).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn active_mask_tail_widths() {
        assert_eq!(active_mask(0), 0);
        assert_eq!(active_mask(1), 0b1);
        assert_eq!(active_mask(63), u64::MAX >> 1);
        assert_eq!(active_mask(64), u64::MAX);
        // Saturates rather than overflowing the shift for n > 64 (a
        // 65-pattern set is handled as chunks of 64 + 1 upstream, but the
        // helper itself must stay total).
        assert_eq!(active_mask(65), u64::MAX);
    }

    #[test]
    fn sharded_counts_and_detected_match_serial() {
        let c = c17();
        let patterns = all_input_patterns(5);
        let faults = enumerate_faults(&c);
        let serial_counts = detection_counts(&c, &patterns, &faults).unwrap();
        let serial_detected = detected_faults(&c, &patterns, &faults, 1).unwrap();
        for jobs in [2, 3, 8] {
            assert_eq!(
                detection_counts_threaded(&c, &patterns, &faults, jobs).unwrap(),
                serial_counts,
                "{jobs} jobs"
            );
            assert_eq!(
                detected_faults(&c, &patterns, &faults, jobs).unwrap(),
                serial_detected,
                "{jobs} jobs"
            );
        }
        // detected ⇔ count >= 1.
        for (d, n) in serial_detected.iter().zip(&serial_counts) {
            assert_eq!(*d, *n >= 1);
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let c = c17();
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let err = fsim.detection_masks(&[vec![true; 3]], &[]).unwrap_err();
        assert!(matches!(
            err,
            AtpgError::PatternWidth {
                expected: 5,
                got: 3
            }
        ));
    }
}
