//! Bit-parallel stuck-at fault simulation (PPSFP).
//!
//! The kernel is generic over a packed word width: the good circuit is
//! evaluated once per batch, then each fault is propagated event-driven
//! from its site through its fanout cone only, which keeps per-fault
//! cost proportional to the size of the affected region rather than the
//! whole circuit. The same kernel is monomorphized at two widths:
//!
//! - **`u64`** — 64 patterns per pass. Used wherever a 64-slot batch is
//!   semantically visible (the engine's random-phase keep/drop
//!   bookkeeping, single-pattern fault dropping in PODEM/TDF/BIST
//!   top-up, diagnosis syndromes).
//! - **[`SimBlock`]** (`[u64; 8]`) — 512 patterns per pass, written so
//!   the autovectorizer lifts the lane loops to 256/512-bit SIMD. The
//!   bulk sweeps (`detected_faults*`, `detection_counts*`,
//!   [`fault_coverage`], compaction/diagnosis matrices, TDF/BIST
//!   coverage) run on this width by default.
//!
//! Values are node-major (struct-of-arrays): each node's whole block is
//! contiguous, so wide gate evaluation streams cache lines. The sharded
//! entry points combine pattern-parallel and fault-parallel blocking:
//! good-value blocks are computed once on the calling thread and shared
//! read-only by every worker, which then streams its fault shard
//! against one cache-resident block at a time.
//!
//! Both widths produce bit-identical detection verdicts; setting
//! `MODSOC_FAULT_SIM=narrow` in the environment forces every blocked
//! sweep back onto the single-word path (the CI kernel smoke diffs the
//! two full-binary outputs).

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use modsoc_metrics::{MetricsSink, NullSink};
use modsoc_netlist::sim::Simulator;
use modsoc_netlist::{Circuit, GateKind, NodeId, StructuralIndex};
pub use modsoc_netlist::{PackedWord, SimBlock, BLOCK_BITS, BLOCK_WORDS};

use crate::budget::{ExhaustReason, RunBudget};
use crate::error::AtpgError;
use crate::fault::{Fault, FaultSite};

/// How many faults a budgeted sweep processes between budget polls
/// (polling costs an `Instant::now()`; per-fault propagation is usually
/// far cheaper, so polling every fault would dominate small cones).
pub const BUDGET_POLL_STRIDE: usize = 256;

/// Resolve a job-count request: `0` means "all available hardware
/// threads" (1 when detection fails); anything else is used as given.
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Mask of the valid pattern slots for a batch of `n` patterns: the low
/// `n` bits set, saturating at the full word for `n >= 64`.
///
/// This is the *one* place the `n == 64` shift-overflow special case
/// lives; every `chunks(64)` tail in the fault-sim/diagnosis/TDF paths
/// must come through here rather than hand-rolling `(1 << n) - 1`.
#[must_use]
pub fn active_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Block-wide tail mask for `n` patterns: word `w` covers pattern slots
/// `[64w, 64w + 64)` and is derived through [`active_mask`], so the
/// shift special case still has exactly one home. Every
/// `chunks(BLOCK_BITS)` tail in the blocked sweeps must come through
/// here — this is the tail-mask contract shared with the
/// diagnosis/TDF/compaction matrices.
#[must_use]
pub fn block_active_mask(n: usize) -> SimBlock {
    let mut mask = [0u64; BLOCK_WORDS];
    for (w, word) in mask.iter_mut().enumerate() {
        *word = active_mask(n.saturating_sub(w * 64));
    }
    mask
}

/// Whether `MODSOC_FAULT_SIM=narrow` is set, forcing every blocked
/// sweep back onto the single-`u64` path. CI uses this to diff the old
/// and new kernels end-to-end; it is read once per sweep, never in the
/// hot loop.
pub(crate) fn narrow_forced() -> bool {
    std::env::var_os("MODSOC_FAULT_SIM").is_some_and(|v| v == "narrow")
}

/// Epoch-stamped faulty-value scratch for one packed width.
///
/// `faulty[i]` is only meaningful when `stamp[i] == epoch`; bumping the
/// epoch invalidates the whole array in O(1). The event heap is reused
/// across propagations (it is always drained empty).
#[derive(Debug, Clone)]
struct Scratch<W> {
    faulty: Vec<W>,
    stamp: Vec<u32>,
    /// Queue-membership stamp: `queued[i] == epoch` means node `i` is
    /// already in the event heap for the current propagation, so further
    /// fanin changes must not enqueue (or later re-evaluate) it again.
    queued: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>>,
}

impl<W: PackedWord> Scratch<W> {
    fn new(nodes: usize) -> Scratch<W> {
        Scratch {
            faulty: vec![W::ZERO; nodes],
            stamp: vec![0; nodes],
            queued: vec![0; nodes],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    fn value_of(&self, id: NodeId, good: &[W]) -> W {
        if self.stamp[id.index()] == self.epoch {
            self.faulty[id.index()]
        } else {
            good[id.index()]
        }
    }

    #[inline]
    fn set_faulty(&mut self, id: NodeId, v: W) {
        self.stamp[id.index()] = self.epoch;
        self.faulty[id.index()] = v;
    }

    /// Faulty re-evaluation of one gate: fanin values come from the
    /// epoch overlay, with an optional pin forced to the stuck value.
    /// Overlay values stream straight into `eval_packed_iter`'s fold, so
    /// any fanin width — including the >16-fanin gates that used to take
    /// a heap-spill path — evaluates without a per-call buffer (at block
    /// width a buffered evaluation would zero and copy kilobytes per
    /// gate).
    fn eval_faulty(
        &self,
        circuit: &Circuit,
        id: NodeId,
        good: &[W],
        pinforce: Option<(usize, W)>,
    ) -> W {
        let node = circuit.node(id);
        if node.kind == GateKind::Input {
            return good[id.index()];
        }
        match pinforce {
            None => node
                .kind
                .eval_packed_iter(node.fanin.iter().map(|&f| self.value_of(f, good))),
            Some((pin, w)) => node
                .kind
                .eval_packed_iter(node.fanin.iter().enumerate().map(|(k, &f)| {
                    if k == pin {
                        w
                    } else {
                        self.value_of(f, good)
                    }
                })),
        }
    }

    /// Event-driven faulty-value propagation; leaves the epoch state
    /// holding the faulty values for the current batch.
    fn propagate(&mut self, circuit: &Circuit, index: &StructuralIndex, good: &[W], fault: Fault) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap: invalidate everything once.
            self.stamp.fill(u32::MAX);
            self.queued.fill(u32::MAX);
            self.epoch = 1;
        }
        let stuck_word = if fault.stuck_at_one { W::ONES } else { W::ZERO };

        // Seed the event queue. Events pop in topological order and a
        // node's fanins all sit strictly earlier in that order, so by the
        // time a node pops every upstream change has settled — one
        // evaluation per node is authoritative, and the `queued` stamp
        // keeps a node with several changed fanins from being enqueued
        // (and re-evaluated) once per fanin.
        debug_assert!(self.heap.is_empty());
        match fault.site {
            FaultSite::Stem(site) => {
                if good[site.index()] != stuck_word {
                    self.set_faulty(site, stuck_word);
                    for &fo in index.fanouts(site) {
                        self.enqueue(index, fo);
                    }
                }
            }
            FaultSite::Pin { gate, pin } => {
                let v = self.eval_faulty(circuit, gate, good, Some((pin, stuck_word)));
                if v != good[gate.index()] {
                    self.set_faulty(gate, v);
                    for &fo in index.fanouts(gate) {
                        self.enqueue(index, fo);
                    }
                }
            }
        }

        while let Some(std::cmp::Reverse((_, raw))) = self.heap.pop() {
            let id = NodeId::from_index(raw as usize);
            let pinforce = match fault.site {
                FaultSite::Pin { gate, pin } if gate == id => Some((pin, stuck_word)),
                _ => None,
            };
            let v = self.eval_faulty(circuit, id, good, pinforce);
            let current = self.value_of(id, good);
            if v == current {
                continue;
            }
            // A stem fault site never re-evaluates (it has no upstream
            // events), so no special case needed here.
            self.set_faulty(id, v);
            for &fo in index.fanouts(id) {
                self.enqueue(index, fo);
            }
        }
    }

    /// Enqueue `fo` for (re-)evaluation unless it is already pending in
    /// the current epoch.
    #[inline]
    fn enqueue(&mut self, index: &StructuralIndex, fo: NodeId) {
        if self.queued[fo.index()] != self.epoch {
            self.queued[fo.index()] = self.epoch;
            self.heap
                .push(std::cmp::Reverse((index.topo_pos(fo), fo.index() as u32)));
        }
    }

    /// Propagate `fault` and fold the output mismatches into one
    /// detection mask, tail-masked by `active`.
    fn detection_mask(
        &mut self,
        circuit: &Circuit,
        index: &StructuralIndex,
        good: &[W],
        active: W,
        fault: Fault,
    ) -> W {
        self.propagate(circuit, index, good, fault);
        let mut mask = W::ZERO;
        for &po in circuit.outputs() {
            let i = po.index();
            // An output the propagation never touched cannot mismatch;
            // gating on the stamp skips two block loads per untouched
            // output, which is most of them for a small fanout cone.
            if self.stamp[i] == self.epoch {
                mask = mask.or(good[i].xor(self.faulty[i]));
            }
        }
        mask.and(active)
    }
}

/// A fault simulator bound to one combinational circuit.
///
/// Holds reusable scratch buffers for both packed widths (the 512-slot
/// scratch is allocated lazily on first blocked sweep); create once and
/// call [`FaultSimulator::detection_masks`] per 64-pattern batch or
/// [`FaultSimulator::block_detection_mask`] per 512-pattern block.
/// `Clone` is cheap relative to [`FaultSimulator::new`] (the shared
/// [`StructuralIndex`] is reference-counted, not recomputed), which is
/// how the sharded entry points hand each worker thread its own
/// simulator.
#[derive(Debug, Clone)]
pub struct FaultSimulator<'a> {
    circuit: &'a Circuit,
    sim: Simulator,
    index: Arc<StructuralIndex>,
    narrow: Scratch<u64>,
    wide: Option<Scratch<SimBlock>>,
}

impl<'a> FaultSimulator<'a> {
    /// Build a fault simulator (and its own [`StructuralIndex`]).
    ///
    /// # Errors
    ///
    /// Fails on sequential or invalid circuits.
    pub fn new(circuit: &'a Circuit) -> Result<FaultSimulator<'a>, AtpgError> {
        let index = Arc::new(StructuralIndex::build(circuit)?);
        FaultSimulator::with_index(circuit, index)
    }

    /// Build a fault simulator borrowing a prebuilt shared index instead
    /// of deriving a private one — the engine threads one index through
    /// collapsing, PODEM, and every fault-simulation pass.
    ///
    /// # Errors
    ///
    /// Fails on sequential or invalid circuits.
    ///
    /// # Panics
    ///
    /// Panics if `index` was built for a different circuit (node counts
    /// disagree).
    pub fn with_index(
        circuit: &'a Circuit,
        index: Arc<StructuralIndex>,
    ) -> Result<FaultSimulator<'a>, AtpgError> {
        assert_eq!(
            index.node_count(),
            circuit.node_count(),
            "structural index does not match circuit"
        );
        let sim = Simulator::new(circuit)?;
        Ok(FaultSimulator {
            circuit,
            sim,
            index,
            narrow: Scratch::new(circuit.node_count()),
            wide: None,
        })
    }

    /// Evaluate the good circuit for a batch of ≤64 patterns.
    ///
    /// Returns `(per-node packed values, number of patterns in the batch)`.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::PatternWidth`] if any pattern width differs
    /// from the circuit's input count.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 patterns are supplied.
    pub fn good_values(&self, patterns: &[Vec<bool>]) -> Result<(Vec<u64>, usize), AtpgError> {
        assert!(patterns.len() <= 64, "at most 64 patterns per batch");
        let width = self.check_widths(patterns)?;
        let mut words = vec![0u64; width];
        for (slot, p) in patterns.iter().enumerate() {
            for (i, &b) in p.iter().enumerate() {
                if b {
                    words[i] |= 1 << slot;
                }
            }
        }
        Ok((self.sim.run_on(self.circuit, &words), patterns.len()))
    }

    /// Evaluate the good circuit for a block of ≤[`BLOCK_BITS`] (512)
    /// patterns, node-major: element `i` holds node `i`'s whole block.
    ///
    /// Returns `(per-node packed blocks, number of patterns)`.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::PatternWidth`] if any pattern width differs
    /// from the circuit's input count.
    ///
    /// # Panics
    ///
    /// Panics if more than [`BLOCK_BITS`] patterns are supplied.
    pub fn good_blocks(&self, patterns: &[Vec<bool>]) -> Result<(Vec<SimBlock>, usize), AtpgError> {
        assert!(
            patterns.len() <= BLOCK_BITS,
            "at most {BLOCK_BITS} patterns per block"
        );
        let width = self.check_widths(patterns)?;
        let mut blocks = vec![[0u64; BLOCK_WORDS]; width];
        for (slot, p) in patterns.iter().enumerate() {
            let (w, bit) = (slot / 64, slot % 64);
            for (i, &b) in p.iter().enumerate() {
                if b {
                    blocks[i][w] |= 1 << bit;
                }
            }
        }
        Ok((
            self.sim.run_packed_on(self.circuit, &blocks),
            patterns.len(),
        ))
    }

    fn check_widths(&self, patterns: &[Vec<bool>]) -> Result<usize, AtpgError> {
        let width = self.circuit.input_count();
        for p in patterns {
            if p.len() != width {
                return Err(AtpgError::PatternWidth {
                    expected: width,
                    got: p.len(),
                });
            }
        }
        Ok(width)
    }

    /// Which of the batch's patterns detect `fault`: bit `k` of the result
    /// is set iff pattern `k` produces a different value on some primary
    /// output in the faulty circuit.
    ///
    /// `good` must come from [`FaultSimulator::good_values`] for the same
    /// batch; `active` masks the valid pattern slots.
    pub fn detection_mask(&mut self, good: &[u64], active: u64, fault: Fault) -> u64 {
        self.narrow
            .detection_mask(self.circuit, &self.index, good, active, fault)
    }

    /// [`FaultSimulator::detection_mask`] at block width: slot `64w + k`
    /// of the result covers pattern `64w + k` of the block. `good` must
    /// come from [`FaultSimulator::good_blocks`] for the same block;
    /// `active` is the matching [`block_active_mask`].
    pub fn block_detection_mask(
        &mut self,
        good: &[SimBlock],
        active: &SimBlock,
        fault: Fault,
    ) -> SimBlock {
        let FaultSimulator {
            circuit,
            index,
            wide,
            ..
        } = self;
        wide.get_or_insert_with(|| Scratch::new(circuit.node_count()))
            .detection_mask(circuit, index, good, *active, fault)
    }

    /// Per-output detection masks for one fault: element `k` is the
    /// pattern mask on which primary output `k` mismatches. One faulty
    /// propagation serves all outputs.
    pub fn output_detection_masks(&mut self, good: &[u64], active: u64, fault: Fault) -> Vec<u64> {
        self.narrow
            .propagate(self.circuit, &self.index, good, fault);
        self.circuit
            .outputs()
            .iter()
            .map(|&po| (good[po.index()] ^ self.narrow.value_of(po, good)) & active)
            .collect()
    }

    /// Detection mask restricted to one primary output (by output
    /// index). Prefer [`FaultSimulator::output_detection_masks`] when
    /// several outputs are needed.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    pub fn output_detection_mask(
        &mut self,
        good: &[u64],
        active: u64,
        fault: Fault,
        output: usize,
    ) -> u64 {
        self.narrow
            .propagate(self.circuit, &self.index, good, fault);
        let po = self.circuit.outputs()[output];
        (good[po.index()] ^ self.narrow.value_of(po, good)) & active
    }

    /// Detection masks for a whole fault list against one batch.
    ///
    /// # Errors
    ///
    /// Propagates pattern width errors.
    pub fn detection_masks(
        &mut self,
        patterns: &[Vec<bool>],
        faults: &[Fault],
    ) -> Result<Vec<u64>, AtpgError> {
        let (good, n) = self.good_values(patterns)?;
        let active = active_mask(n);
        Ok(faults
            .iter()
            .map(|&f| self.detection_mask(&good, active, f))
            .collect())
    }

    /// [`FaultSimulator::detection_masks`] under a [`RunBudget`]: the
    /// deadline/cancellation flags are polled every
    /// [`BUDGET_POLL_STRIDE`] faults. On a trip the sweep stops early and
    /// the reason is returned alongside the masks; unprocessed faults
    /// keep an all-zero mask, which downstream fault dropping reads as
    /// "not detected" — conservative, never unsound. The partially
    /// accumulated prefix is re-masked with the batch's [`active_mask`]
    /// on the trip path, so ghost slots beyond the simulated prefix can
    /// never read as detections regardless of where the trip lands.
    ///
    /// # Errors
    ///
    /// Propagates pattern width errors.
    pub fn detection_masks_budgeted(
        &mut self,
        patterns: &[Vec<bool>],
        faults: &[Fault],
        budget: &RunBudget,
    ) -> Result<(Vec<u64>, Option<ExhaustReason>), AtpgError> {
        let (good, n) = self.good_values(patterns)?;
        let active = active_mask(n);
        let mut masks = vec![0u64; faults.len()];
        for (i, &f) in faults.iter().enumerate() {
            if i % BUDGET_POLL_STRIDE == 0 {
                if let Some(reason) = budget.check() {
                    // Budget tripped mid-sweep: re-assert the tail
                    // discipline on the partial prefix before handing it
                    // back (defense in depth — a mask produced by any
                    // future accumulation scheme must still obey it).
                    for m in &mut masks {
                        *m &= active;
                    }
                    return Ok((masks, Some(reason)));
                }
            }
            masks[i] = self.detection_mask(&good, active, f);
        }
        Ok((masks, None))
    }

    /// Which faults `patterns` (any count) detect, swept with the wide
    /// kernel on this simulator's scratch: patterns are consumed in
    /// [`BLOCK_BITS`] blocks, and a fault detected by an earlier block
    /// is dropped from later blocks (pure OR-reduction, so the result is
    /// identical to an undropped sweep). Honors `MODSOC_FAULT_SIM=narrow`.
    ///
    /// # Errors
    ///
    /// Propagates pattern width errors.
    pub fn detected_over(
        &mut self,
        patterns: &[Vec<bool>],
        faults: &[Fault],
    ) -> Result<Vec<bool>, AtpgError> {
        let mut detected = vec![false; faults.len()];
        if narrow_forced() {
            for chunk in patterns.chunks(64) {
                let masks = self.detection_masks(chunk, faults)?;
                for (d, m) in detected.iter_mut().zip(masks) {
                    if m != 0 {
                        *d = true;
                    }
                }
            }
            return Ok(detected);
        }
        for chunk in patterns.chunks(BLOCK_BITS) {
            let (good, n) = self.good_blocks(chunk)?;
            let active = block_active_mask(n);
            for (d, &f) in detected.iter_mut().zip(faults) {
                if *d {
                    continue;
                }
                if !self.block_detection_mask(&good, &active, f).is_zero() {
                    *d = true;
                }
            }
        }
        Ok(detected)
    }
}

/// Fraction of `faults` detected by `patterns` (serial convenience used in
/// tests and coverage reporting).
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn fault_coverage(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
) -> Result<f64, AtpgError> {
    if faults.is_empty() {
        return Ok(1.0);
    }
    let detected = FaultSimulator::new(circuit)?.detected_over(patterns, faults)?;
    Ok(detected.iter().filter(|&&d| d).count() as f64 / faults.len() as f64)
}

/// Shard `faults` into contiguous runs across `jobs` OS threads, each
/// worker owning a clone of one prototype simulator, and concatenate the
/// per-shard results **in fault order**. Because faults are independent,
/// the merged output is identical to running `per_shard` once over the
/// whole list — the parallel split is invisible in the results.
///
/// A worker panic is re-raised on the calling thread after the scope
/// joins (payload preserved).
///
/// When `sink` is enabled, each shard reports a worker-utilization row
/// (shard index, faults claimed, busy wall time; if the elapsed nanos
/// overflow `u64` the row is flagged saturated rather than inventing a
/// fake huge value). Rows are scheduling-dependent and excluded from the
/// determinism contract; the computed results are unaffected.
fn run_sharded<T: Send>(
    mut proto: FaultSimulator<'_>,
    faults: &[Fault],
    jobs: usize,
    sink: &dyn MetricsSink,
    per_shard: impl Fn(&mut FaultSimulator<'_>, &[Fault]) -> Result<Vec<T>, AtpgError> + Sync,
) -> Result<Vec<T>, AtpgError> {
    let timed = |shard_idx: usize,
                 fsim: &mut FaultSimulator<'_>,
                 shard: &[Fault]|
     -> Result<Vec<T>, AtpgError> {
        let start = sink.enabled().then(Instant::now);
        let out = per_shard(fsim, shard);
        if let Some(start) = start {
            let (nanos, saturated) = match u64::try_from(start.elapsed().as_nanos()) {
                Ok(n) => (n, false),
                Err(_) => (u64::MAX, true),
            };
            sink.worker(shard_idx, shard.len() as u64, nanos, saturated);
        }
        out
    };
    let jobs = jobs.max(1);
    if jobs == 1 || faults.len() < 2 * jobs {
        return timed(0, &mut proto, faults);
    }
    let chunk_len = faults.len().div_ceil(jobs);
    let results: Vec<Result<Vec<T>, AtpgError>> = std::thread::scope(|scope| {
        let proto = &proto;
        let timed = &timed;
        let handles: Vec<_> = faults
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| scope.spawn(move || timed(i, &mut proto.clone(), chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut out = Vec::with_capacity(faults.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Good-value blocks for a whole pattern set: one `(node-major blocks,
/// tail mask)` entry per [`BLOCK_BITS`] chunk, computed once on the
/// calling thread so sharded workers can stream them read-only (the
/// pattern-parallel half of the cache blocking).
fn good_block_sweep(
    proto: &FaultSimulator<'_>,
    patterns: &[Vec<bool>],
) -> Result<Vec<(Vec<SimBlock>, SimBlock)>, AtpgError> {
    patterns
        .chunks(BLOCK_BITS)
        .map(|chunk| {
            let (good, n) = proto.good_blocks(chunk)?;
            Ok((good, block_active_mask(n)))
        })
        .collect()
}

/// Per-fault *detection counts* of a pattern set: how many patterns
/// detect each fault. The industrial n-detect quality metric — faults
/// detected only once are fragile against timing/bridging defect
/// behaviour, so production flows often require `n ≥ 3..5`.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detection_counts(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
) -> Result<Vec<u32>, AtpgError> {
    detection_counts_threaded(circuit, patterns, faults, 1)
}

/// [`detection_counts`] with the collapsed fault list sharded across
/// `jobs` OS threads (each worker owns a [`FaultSimulator`] clone).
/// The order-preserving merge makes the result identical to the serial
/// run at any `jobs` value.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detection_counts_threaded(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
) -> Result<Vec<u32>, AtpgError> {
    let proto = FaultSimulator::new(circuit)?;
    if narrow_forced() {
        return run_sharded(proto, faults, jobs, &NullSink, |fsim, shard| {
            let mut counts = vec![0u32; shard.len()];
            for chunk in patterns.chunks(64) {
                let masks = fsim.detection_masks(chunk, shard)?;
                for (c, m) in counts.iter_mut().zip(masks) {
                    *c += m.count_ones();
                }
            }
            Ok(counts)
        });
    }
    let blocks = good_block_sweep(&proto, patterns)?;
    run_sharded(proto, faults, jobs, &NullSink, |fsim, shard| {
        let mut counts = vec![0u32; shard.len()];
        for (good, active) in &blocks {
            for (c, &f) in counts.iter_mut().zip(shard) {
                *c += fsim.block_detection_mask(good, active, f).count_ones();
            }
        }
        Ok(counts)
    })
}

/// Which faults the pattern set detects at all: the boolean reduction of
/// [`detection_counts_threaded`], sharded the same way. This is the
/// engine's final-accounting primitive (`detected[i]` ⇔ some pattern
/// flips some output under fault `i`).
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detected_faults(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
) -> Result<Vec<bool>, AtpgError> {
    detected_faults_via(FaultSimulator::new(circuit)?, patterns, faults, jobs)
}

/// [`detected_faults`] against a prebuilt shared [`StructuralIndex`]:
/// every worker clone borrows the same index instead of re-deriving the
/// fanout adjacency and topological order per call.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detected_faults_indexed(
    circuit: &Circuit,
    index: &Arc<StructuralIndex>,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
) -> Result<Vec<bool>, AtpgError> {
    detected_faults_indexed_metered(circuit, index, patterns, faults, jobs, &NullSink)
}

/// [`detected_faults_indexed`] reporting per-shard worker-utilization
/// rows into a [`MetricsSink`] (shard index, faults claimed, busy wall
/// time). The computed detection results are byte-identical to the
/// unmetered entry point at any `jobs` value.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detected_faults_indexed_metered(
    circuit: &Circuit,
    index: &Arc<StructuralIndex>,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
    sink: &dyn MetricsSink,
) -> Result<Vec<bool>, AtpgError> {
    detected_faults_via_sink(
        FaultSimulator::with_index(circuit, Arc::clone(index))?,
        patterns,
        faults,
        jobs,
        sink,
    )
}

fn detected_faults_via(
    proto: FaultSimulator<'_>,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
) -> Result<Vec<bool>, AtpgError> {
    detected_faults_via_sink(proto, patterns, faults, jobs, &NullSink)
}

fn detected_faults_via_sink(
    proto: FaultSimulator<'_>,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    jobs: usize,
    sink: &dyn MetricsSink,
) -> Result<Vec<bool>, AtpgError> {
    if narrow_forced() {
        return run_sharded(proto, faults, jobs, sink, |fsim, shard| {
            let mut detected = vec![false; shard.len()];
            for chunk in patterns.chunks(64) {
                let masks = fsim.detection_masks(chunk, shard)?;
                for (d, m) in detected.iter_mut().zip(masks) {
                    if m != 0 {
                        *d = true;
                    }
                }
            }
            Ok(detected)
        });
    }
    let blocks = good_block_sweep(&proto, patterns)?;
    run_sharded(proto, faults, jobs, sink, |fsim, shard| {
        let mut detected = vec![false; shard.len()];
        // Blocks outer, faults inner: each worker streams its fault
        // shard against one cache-resident good block at a time, and a
        // fault detected by an earlier block is dropped from later ones
        // (an OR-reduction, so results are identical with or without
        // the drop at any shard split).
        for (good, active) in &blocks {
            for (d, &f) in detected.iter_mut().zip(shard) {
                if *d {
                    continue;
                }
                if !fsim.block_detection_mask(good, active, f).is_zero() {
                    *d = true;
                }
            }
        }
        Ok(detected)
    })
}

/// Detection masks for a whole fault list against one ≤64-pattern batch,
/// computed on `threads` OS threads (each with its own simulator and
/// scratch). Results are identical to the serial
/// [`FaultSimulator::detection_masks`] — faults are independent, so the
/// split is embarrassingly parallel and fully deterministic.
///
/// Worth using from roughly 10k faults × 10k gates upward; below that
/// the per-thread good-circuit evaluation dominates.
///
/// # Errors
///
/// Propagates simulator construction and pattern width errors.
pub fn detection_masks_threaded(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    faults: &[Fault],
    threads: usize,
) -> Result<Vec<u64>, AtpgError> {
    run_sharded(
        FaultSimulator::new(circuit)?,
        faults,
        threads,
        &NullSink,
        |fsim, shard| fsim.detection_masks(patterns, shard),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::enumerate_faults;
    use modsoc_netlist::bench_format::parse_bench;

    fn c17() -> Circuit {
        parse_bench(
            "c17",
            "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
",
        )
        .unwrap()
    }

    /// Reference: full re-simulation per fault via forced node (stems only).
    fn naive_stem_mask(c: &Circuit, patterns: &[Vec<bool>], fault: Fault) -> u64 {
        let sim = Simulator::new(c).unwrap();
        let mut words = vec![0u64; c.input_count()];
        for (slot, p) in patterns.iter().enumerate() {
            for (i, &b) in p.iter().enumerate() {
                if b {
                    words[i] |= 1 << slot;
                }
            }
        }
        let site = match fault.site {
            FaultSite::Stem(s) => s,
            _ => unreachable!(),
        };
        let forced = if fault.stuck_at_one { u64::MAX } else { 0 };
        let good = sim.run_on(c, &words);
        let bad = sim.run_with_forced_node(c, &words, site, forced);
        let mut mask = 0;
        for &po in c.outputs() {
            mask |= good[po.index()] ^ bad[po.index()];
        }
        mask & active_mask(patterns.len())
    }

    fn all_input_patterns(n: usize) -> Vec<Vec<bool>> {
        (0..(1usize << n))
            .map(|row| (0..n).map(|i| (row >> i) & 1 == 1).collect())
            .collect()
    }

    /// A bigger layered circuit shared by the threaded and blocked
    /// differential tests.
    fn layered_circuit() -> Circuit {
        let mut c = Circuit::new("big");
        let mut prev: Vec<_> = (0..12).map(|i| c.add_input(format!("i{i}"))).collect();
        for layer in 0..6 {
            let mut next = Vec::new();
            for (k, pair) in prev.chunks(2).enumerate() {
                let kind = match (layer + k) % 4 {
                    0 => GateKind::Nand,
                    1 => GateKind::Xor,
                    2 => GateKind::Or,
                    _ => GateKind::Nor,
                };
                let g = if pair.len() == 2 {
                    c.add_gate(format!("g{layer}_{k}"), kind, &[pair[0], pair[1]])
                        .unwrap()
                } else {
                    c.add_gate(format!("g{layer}_{k}"), GateKind::Not, &[pair[0]])
                        .unwrap()
                };
                next.push(g);
            }
            next.extend(prev.iter().skip(next.len() * 2).copied());
            prev = next;
            if prev.len() == 1 {
                break;
            }
        }
        for &p in &prev {
            c.mark_output(p);
        }
        c
    }

    /// Deterministic mixed-density pattern generator.
    fn cyc_patterns(inputs: usize, count: usize) -> Vec<Vec<bool>> {
        (0..count)
            .map(|k| {
                (0..inputs)
                    .map(|i| (k * 31 + i * 7 + (k >> 3)) % 5 < 2)
                    .collect()
            })
            .collect()
    }

    /// Narrow reference sweep: per-fault detected flags and detection
    /// counts via the original `chunks(64)` path.
    fn narrow_reference(
        c: &Circuit,
        patterns: &[Vec<bool>],
        faults: &[Fault],
    ) -> (Vec<bool>, Vec<u32>) {
        let mut fsim = FaultSimulator::new(c).unwrap();
        let mut detected = vec![false; faults.len()];
        let mut counts = vec![0u32; faults.len()];
        for chunk in patterns.chunks(64) {
            let masks = fsim.detection_masks(chunk, faults).unwrap();
            for ((d, c), m) in detected.iter_mut().zip(counts.iter_mut()).zip(masks) {
                if m != 0 {
                    *d = true;
                }
                *c += m.count_ones();
            }
        }
        (detected, counts)
    }

    #[test]
    fn event_driven_matches_naive_on_c17_stems() {
        let c = c17();
        let patterns = all_input_patterns(5)
            .into_iter()
            .take(32)
            .collect::<Vec<_>>();
        let mut fsim = FaultSimulator::new(&c).unwrap();
        for fault in enumerate_faults(&c) {
            if !matches!(fault.site, FaultSite::Stem(_)) {
                continue;
            }
            let masks = fsim.detection_masks(&patterns, &[fault]).unwrap();
            let naive = naive_stem_mask(&c, &patterns, fault);
            assert_eq!(masks[0], naive, "mismatch for {}", fault.describe(&c));
        }
    }

    #[test]
    fn exhaustive_patterns_detect_all_c17_faults() {
        let c = c17();
        let patterns = all_input_patterns(5);
        let faults = enumerate_faults(&c);
        let cov = fault_coverage(&c, &patterns, &faults).unwrap();
        assert!(
            (cov - 1.0).abs() < 1e-12,
            "c17 is fully testable, got {cov}"
        );
    }

    #[test]
    fn pin_fault_differs_from_stem_fault() {
        // a fans to g1=AND(a,b) and g2=OR(a,b). Pattern a=0,b=1:
        // stem a s-a-1 flips g2's cone? g2 = OR(1,1)=1 vs good OR(0,1)=1 —
        // no; g1 = AND(1,1)=1 vs good 0 — detected at g1 AND g2 unchanged.
        // branch a->g2 s-a-1 with a=0,b=0: good g2=0, faulty OR(1,0)=1 ->
        // detected only via g2; g1 unaffected.
        let mut c = Circuit::new("br");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Or, &[a, b]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let patterns = vec![vec![false, false]];
        let masks = fsim
            .detection_masks(
                &patterns,
                &[Fault::pin(g2, 0, true), Fault::pin(g1, 0, true)],
            )
            .unwrap();
        assert_eq!(masks[0], 0b1, "branch to OR detected by 00");
        assert_eq!(
            masks[1], 0b0,
            "branch to AND not detected by 00 (b=0 blocks)"
        );
    }

    #[test]
    fn undetectable_fault_never_flags() {
        // g = OR(a, NOT(a)): g s-a-1 undetectable by any pattern.
        let mut c = Circuit::new("red");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::Or, &[a, n]).unwrap();
        c.mark_output(g);
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let patterns = all_input_patterns(1);
        let masks = fsim
            .detection_masks(&patterns, &[Fault::stem_sa1(g)])
            .unwrap();
        assert_eq!(masks[0], 0);
    }

    #[test]
    fn batch_active_mask_respected() {
        let c = c17();
        let mut fsim = FaultSimulator::new(&c).unwrap();
        // 3 patterns: mask must fit in low 3 bits.
        let patterns = all_input_patterns(5)
            .into_iter()
            .take(3)
            .collect::<Vec<_>>();
        let faults = enumerate_faults(&c);
        for m in fsim.detection_masks(&patterns, &faults).unwrap() {
            assert_eq!(m & !0b111, 0);
        }
    }

    #[test]
    fn detection_counts_sum_mask_bits() {
        let c = c17();
        let patterns = all_input_patterns(5);
        let faults = enumerate_faults(&c);
        let counts = detection_counts(&c, &patterns, &faults).unwrap();
        // Exhaustive patterns: every testable fault has n-detect >= 1,
        // and most well above (c17 is highly random-testable).
        assert!(counts.iter().all(|&n| n >= 1));
        assert!(counts.iter().any(|&n| n >= 4));
        // Cross-check one fault against the mask popcount.
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let mut manual = 0u32;
        for chunk in patterns.chunks(64) {
            manual += fsim.detection_masks(chunk, &faults[..1]).unwrap()[0].count_ones();
        }
        assert_eq!(counts[0], manual);
    }

    #[test]
    fn threaded_masks_match_serial() {
        let c = c17();
        let patterns = all_input_patterns(5);
        let faults = enumerate_faults(&c);
        let serial = FaultSimulator::new(&c)
            .unwrap()
            .detection_masks(&patterns[..32], &faults)
            .unwrap();
        for threads in [1, 2, 3, 8] {
            let parallel = detection_masks_threaded(&c, &patterns[..32], &faults, threads).unwrap();
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn threaded_on_larger_circuit() {
        let c = layered_circuit();
        let patterns: Vec<Vec<bool>> = (0..64u64)
            .map(|k| (0..12).map(|i| (k >> (i % 6)) & 1 == 1).collect())
            .collect();
        let faults = enumerate_faults(&c);
        let serial = FaultSimulator::new(&c)
            .unwrap()
            .detection_masks(&patterns, &faults)
            .unwrap();
        let parallel = detection_masks_threaded(&c, &patterns, &faults, 4).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn active_mask_tail_widths() {
        assert_eq!(active_mask(0), 0);
        assert_eq!(active_mask(1), 0b1);
        assert_eq!(active_mask(63), u64::MAX >> 1);
        assert_eq!(active_mask(64), u64::MAX);
        // Saturates rather than overflowing the shift for n > 64 (a
        // 65-pattern set is handled as chunks of 64 + 1 upstream, but the
        // helper itself must stay total).
        assert_eq!(active_mask(65), u64::MAX);
    }

    #[test]
    fn block_active_mask_tail_widths() {
        assert_eq!(block_active_mask(0), [0u64; BLOCK_WORDS]);
        assert_eq!(block_active_mask(BLOCK_BITS), [u64::MAX; BLOCK_WORDS]);
        assert_eq!(block_active_mask(BLOCK_BITS + 1), [u64::MAX; BLOCK_WORDS]);
        // Tail inside the first word.
        let m = block_active_mask(3);
        assert_eq!(m[0], 0b111);
        assert!(m[1..].iter().all(|&w| w == 0));
        // Word-boundary widths around 64: the per-word masks must agree
        // with the narrow helper on every sub-batch.
        for n in [1usize, 63, 64, 65, 127, 128, 129, 448, 511] {
            let m = block_active_mask(n);
            for (w, &word) in m.iter().enumerate() {
                let sub = n.saturating_sub(w * 64).min(64);
                assert_eq!(word, active_mask(sub), "n={n} word {w}");
            }
        }
    }

    #[test]
    fn sharded_counts_and_detected_match_serial() {
        let c = c17();
        let patterns = all_input_patterns(5);
        let faults = enumerate_faults(&c);
        let serial_counts = detection_counts(&c, &patterns, &faults).unwrap();
        let serial_detected = detected_faults(&c, &patterns, &faults, 1).unwrap();
        for jobs in [2, 3, 8] {
            assert_eq!(
                detection_counts_threaded(&c, &patterns, &faults, jobs).unwrap(),
                serial_counts,
                "{jobs} jobs"
            );
            assert_eq!(
                detected_faults(&c, &patterns, &faults, jobs).unwrap(),
                serial_detected,
                "{jobs} jobs"
            );
        }
        // detected ⇔ count >= 1.
        for (d, n) in serial_detected.iter().zip(&serial_counts) {
            assert_eq!(*d, *n >= 1);
        }
    }

    /// The differential oracle pinning the wide kernel to the old
    /// single-word path: for every fault, word `w` of the block mask
    /// must equal the narrow mask of sub-batch `w`, across tail widths
    /// straddling every word boundary that matters (63/64/65, exactly
    /// one block, one block + 1).
    #[test]
    fn block_masks_match_narrow_chunks_word_for_word() {
        let c = layered_circuit();
        let faults = enumerate_faults(&c);
        let mut fsim = FaultSimulator::new(&c).unwrap();
        for &count in &[1usize, 63, 64, 65, 100, 511, 512] {
            let patterns = cyc_patterns(12, count);
            let (good, n) = fsim.good_blocks(&patterns).unwrap();
            let active = block_active_mask(n);
            for &fault in &faults {
                let block = fsim.block_detection_mask(&good, &active, fault);
                for (w, chunk) in patterns.chunks(64).enumerate() {
                    let narrow = fsim.detection_masks(chunk, &[fault]).unwrap()[0];
                    assert_eq!(
                        block[w],
                        narrow,
                        "count={count} word={w} fault={}",
                        fault.describe(&c)
                    );
                }
                // Words past the tail stay silent.
                for (w, &word) in block.iter().enumerate().skip(count.div_ceil(64)) {
                    assert_eq!(word, 0, "count={count} ghost word {w}");
                }
            }
        }
    }

    /// Aggregate blocked entry points vs the narrow reference sweep,
    /// including multi-block pattern sets and every shard split.
    #[test]
    fn blocked_aggregates_match_narrow_reference() {
        let c = layered_circuit();
        let faults = enumerate_faults(&c);
        for &count in &[65usize, 512, 513, 700] {
            let patterns = cyc_patterns(12, count);
            let (ref_detected, ref_counts) = narrow_reference(&c, &patterns, &faults);
            for jobs in [1, 4] {
                assert_eq!(
                    detected_faults(&c, &patterns, &faults, jobs).unwrap(),
                    ref_detected,
                    "count={count} jobs={jobs}"
                );
                assert_eq!(
                    detection_counts_threaded(&c, &patterns, &faults, jobs).unwrap(),
                    ref_counts,
                    "count={count} jobs={jobs}"
                );
            }
            let mut fsim = FaultSimulator::new(&c).unwrap();
            assert_eq!(
                fsim.detected_over(&patterns, &faults).unwrap(),
                ref_detected,
                "count={count} detected_over"
            );
        }
    }

    /// Blocked vs narrow on a circuitgen-generated scan core (the same
    /// generator family the benches and experiments run on).
    #[test]
    fn blocked_matches_narrow_on_generated_core() {
        let core =
            modsoc_circuitgen::generate(&modsoc_circuitgen::profile::iscas::s713(11)).unwrap();
        let model = core.to_test_model().unwrap();
        let c = &model.circuit;
        let faults: Vec<Fault> = enumerate_faults(c).into_iter().take(300).collect();
        let patterns = cyc_patterns(c.input_count(), 130);
        let (ref_detected, ref_counts) = narrow_reference(c, &patterns, &faults);
        for jobs in [1, 4] {
            assert_eq!(
                detected_faults(c, &patterns, &faults, jobs).unwrap(),
                ref_detected,
                "jobs={jobs}"
            );
            assert_eq!(
                detection_counts_threaded(c, &patterns, &faults, jobs).unwrap(),
                ref_counts,
                "jobs={jobs}"
            );
        }
    }

    /// Build a circuitgen-derived circuit with gates far above the
    /// 16-fanin stack buffer, optionally rewiring one AND pin to a
    /// constant (the explicit-circuit oracle for a pin fault on that
    /// pin). Returns the circuit and the wide AND's node id.
    fn wide_fanin_circuit(pin_override: Option<(usize, bool)>) -> (Circuit, NodeId) {
        let core =
            modsoc_circuitgen::generate(&modsoc_circuitgen::profile::iscas::s713(7)).unwrap();
        let mut c = core.to_test_model().unwrap().circuit;
        let ins: Vec<NodeId> = c.inputs().to_vec();
        assert!(ins.len() >= 24, "s713 model has 54 inputs");
        let mut fan24: Vec<NodeId> = ins[..24].to_vec();
        let fan20: Vec<NodeId> = ins[..20].to_vec();
        if let Some((pin, stuck_at_one)) = pin_override {
            let kind = if stuck_at_one {
                GateKind::Const1
            } else {
                GateKind::Const0
            };
            let cst = c.add_gate("pin_const", kind, &[]).unwrap();
            fan24[pin] = cst;
        }
        let wide_and = c.add_gate("wide_and", GateKind::And, &fan24).unwrap();
        let wide_xor = c.add_gate("wide_xor", GateKind::Xor, &fan20).unwrap();
        let top = c
            .add_gate("wide_top", GateKind::Nor, &[wide_and, wide_xor])
            .unwrap();
        c.mark_output(top);
        (c, wide_and)
    }

    /// The `eval_faulty` spill path (fanin > 16 falls back from the
    /// stack buffer to a heap vec): pin faults with pin index beyond
    /// the stack capacity, checked against an explicit faulty-circuit
    /// re-simulation, plus stem faults through the wide gates checked
    /// against the naive forced-node oracle — on both kernel widths.
    #[test]
    fn eval_faulty_spill_path_matches_explicit_oracle() {
        let (c, wide_and) = wide_fanin_circuit(None);
        let patterns = cyc_patterns(c.input_count(), 100);
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let sim = Simulator::new(&c).unwrap();

        // Pack the patterns once for the oracle's output comparison.
        let mut words = vec![0u64; c.input_count()];
        for (slot, p) in patterns.iter().take(64).enumerate() {
            for (i, &b) in p.iter().enumerate() {
                if b {
                    words[i] |= 1 << slot;
                }
            }
        }

        for &(pin, sa1) in &[(17usize, true), (17, false), (23, true)] {
            let fault = Fault::pin(wide_and, pin, sa1);
            // Oracle: re-simulate a circuit with that pin hard-wired to
            // the stuck constant (legal because the pin feeds from a
            // primary input, so rewiring it is exactly the pin fault).
            let (twin, _) = wide_fanin_circuit(Some((pin, sa1)));
            let twin_sim = Simulator::new(&twin).unwrap();
            let good_outs = sim.run_outputs(&c, &words);
            let bad_outs = twin_sim.run_outputs(&twin, &words);
            let mut want = 0u64;
            for (g, b) in good_outs.iter().zip(&bad_outs) {
                want |= g ^ b;
            }
            want &= active_mask(64);

            let narrow = fsim.detection_masks(&patterns[..64], &[fault]).unwrap()[0];
            assert_eq!(narrow, want, "narrow spill pin={pin} sa1={sa1}");

            // Wide kernel: word 0 of the block mask must agree.
            let (good, n) = fsim.good_blocks(&patterns).unwrap();
            let active = block_active_mask(n);
            let block = fsim.block_detection_mask(&good, &active, fault);
            assert_eq!(block[0], want, "wide spill pin={pin} sa1={sa1}");
        }

        // Stem faults through the wide gates: downstream re-evaluation
        // of the 24-fanin AND takes the spill path too.
        for site in [wide_and, c.inputs()[3], c.inputs()[19]] {
            for fault in [Fault::stem_sa0(site), Fault::stem_sa1(site)] {
                let want = naive_stem_mask(&c, &patterns[..64], fault);
                let narrow = fsim.detection_masks(&patterns[..64], &[fault]).unwrap()[0];
                assert_eq!(narrow, want, "narrow stem {}", fault.describe(&c));
                let (good, n) = fsim.good_blocks(&patterns).unwrap();
                let active = block_active_mask(n);
                let block = fsim.block_detection_mask(&good, &active, fault);
                assert_eq!(block[0], want, "wide stem {}", fault.describe(&c));
            }
        }
    }

    /// Budget trip mid-sweep: the partial prefix keeps the tail
    /// discipline (no ghost-slot bits) and unprocessed faults read as
    /// undetected.
    #[test]
    fn budget_trip_returns_masked_partial_prefix() {
        let c = c17();
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let faults = enumerate_faults(&c);
        let patterns = all_input_patterns(5)
            .into_iter()
            .take(3)
            .collect::<Vec<_>>();
        let budget = RunBudget::unlimited();
        budget.cancel();
        let (masks, reason) = fsim
            .detection_masks_budgeted(&patterns, &faults, &budget)
            .unwrap();
        assert_eq!(reason, Some(ExhaustReason::Cancelled));
        let active = active_mask(patterns.len());
        assert!(masks.iter().all(|&m| m & !active == 0));
    }

    #[test]
    fn width_mismatch_rejected() {
        let c = c17();
        let mut fsim = FaultSimulator::new(&c).unwrap();
        let err = fsim.detection_masks(&[vec![true; 3]], &[]).unwrap_err();
        assert!(matches!(
            err,
            AtpgError::PatternWidth {
                expected: 5,
                got: 3
            }
        ));
        let err = fsim.good_blocks(&[vec![true; 3]]).unwrap_err();
        assert!(matches!(
            err,
            AtpgError::PatternWidth {
                expected: 5,
                got: 3
            }
        ));
    }
}
