//! Error type for the ATPG crate.

use std::fmt;

use modsoc_netlist::NetlistError;

/// Errors produced by test generation and fault simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtpgError {
    /// The underlying netlist is invalid or sequential.
    Netlist(NetlistError),
    /// A pattern's bit width does not match the circuit's input count.
    PatternWidth {
        /// Width the circuit expects.
        expected: usize,
        /// Width that was supplied.
        got: usize,
    },
    /// A fault references a node outside the circuit.
    ForeignFault {
        /// Debug rendering of the fault.
        fault: String,
    },
}

impl fmt::Display for AtpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtpgError::Netlist(e) => write!(f, "netlist error: {e}"),
            AtpgError::PatternWidth { expected, got } => {
                write!(
                    f,
                    "pattern width {got} does not match {expected} circuit inputs"
                )
            }
            AtpgError::ForeignFault { fault } => {
                write!(f, "fault {fault} does not belong to this circuit")
            }
        }
    }
}

impl std::error::Error for AtpgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtpgError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for AtpgError {
    fn from(e: NetlistError) -> AtpgError {
        AtpgError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = AtpgError::PatternWidth {
            expected: 3,
            got: 5,
        };
        assert!(e.to_string().contains('3'));
        let e2: AtpgError = NetlistError::NoObservationPoints.into();
        assert!(e2.to_string().contains("netlist"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: AtpgError = NetlistError::NoObservationPoints.into();
        assert!(e.source().is_some());
    }
}
