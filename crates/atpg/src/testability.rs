//! SCOAP-style testability measures.
//!
//! Combinational controllability `CC0`/`CC1` (effort to set a line to
//! 0/1) and observability `CO` (effort to propagate a line to an output).
//! PODEM uses these to pick the cheapest backtrace path; they are also
//! exposed for circuit-difficulty reporting in the synthetic generator.

use modsoc_netlist::{Circuit, GateKind, NodeId};

use crate::error::AtpgError;

/// Per-node SCOAP measures.
#[derive(Debug, Clone)]
pub struct Testability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

/// Saturating cap so unreachable lines do not overflow.
const CAP: u32 = 1_000_000;

impl Testability {
    /// Compute SCOAP measures for a combinational circuit.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors (including sequential
    /// circuits).
    pub fn compute(circuit: &Circuit) -> Result<Testability, AtpgError> {
        if let Some(&ff) = circuit.dffs().first() {
            return Err(modsoc_netlist::NetlistError::NotCombinational {
                node: circuit.node(ff).name.clone(),
            }
            .into());
        }
        let order = circuit.topo_order()?;
        let n = circuit.node_count();
        let mut cc0 = vec![CAP; n];
        let mut cc1 = vec![CAP; n];

        for &id in &order {
            let node = circuit.node(id);
            let i = id.index();
            match node.kind {
                GateKind::Input => {
                    cc0[i] = 1;
                    cc1[i] = 1;
                }
                GateKind::Const0 => {
                    cc0[i] = 0;
                    cc1[i] = CAP;
                }
                GateKind::Const1 => {
                    cc0[i] = CAP;
                    cc1[i] = 0;
                }
                GateKind::Buf | GateKind::Dff => {
                    cc0[i] = sat(cc0[node.fanin[0].index()], 1);
                    cc1[i] = sat(cc1[node.fanin[0].index()], 1);
                }
                GateKind::Not => {
                    cc0[i] = sat(cc1[node.fanin[0].index()], 1);
                    cc1[i] = sat(cc0[node.fanin[0].index()], 1);
                }
                GateKind::And | GateKind::Nand => {
                    let all1: u32 = node
                        .fanin
                        .iter()
                        .fold(0u32, |a, f| a.saturating_add(cc1[f.index()]));
                    let any0: u32 = node
                        .fanin
                        .iter()
                        .map(|f| cc0[f.index()])
                        .min()
                        .unwrap_or(CAP);
                    let (zero, one) = (sat(any0, 1), sat(all1, 1));
                    if node.kind == GateKind::And {
                        cc0[i] = zero;
                        cc1[i] = one;
                    } else {
                        cc0[i] = one;
                        cc1[i] = zero;
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let all0: u32 = node
                        .fanin
                        .iter()
                        .fold(0u32, |a, f| a.saturating_add(cc0[f.index()]));
                    let any1: u32 = node
                        .fanin
                        .iter()
                        .map(|f| cc1[f.index()])
                        .min()
                        .unwrap_or(CAP);
                    let (zero, one) = (sat(all0, 1), sat(any1, 1));
                    if node.kind == GateKind::Or {
                        cc0[i] = zero;
                        cc1[i] = one;
                    } else {
                        cc0[i] = one;
                        cc1[i] = zero;
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Exact parity-combination over fanins, folded
                    // pairwise: cost of parity-0 / parity-1.
                    let mut c0 = 0u32; // cost of producing parity 0 so far
                    let mut c1 = CAP; // cost of producing parity 1 so far
                    let mut first = true;
                    for f in &node.fanin {
                        let f0 = cc0[f.index()];
                        let f1 = cc1[f.index()];
                        if first {
                            c0 = f0;
                            c1 = f1;
                            first = false;
                        } else {
                            let n0 = (c0.saturating_add(f0)).min(c1.saturating_add(f1));
                            let n1 = (c0.saturating_add(f1)).min(c1.saturating_add(f0));
                            c0 = n0;
                            c1 = n1;
                        }
                    }
                    let (zero, one) = (sat(c0, 1), sat(c1, 1));
                    if node.kind == GateKind::Xor {
                        cc0[i] = zero;
                        cc1[i] = one;
                    } else {
                        cc0[i] = one;
                        cc1[i] = zero;
                    }
                }
            }
        }

        // Observability: reverse topological sweep.
        let mut co = vec![CAP; n];
        for &po in circuit.outputs() {
            co[po.index()] = 0;
        }
        for &id in order.iter().rev() {
            let node = circuit.node(id);
            let gate_co = co[id.index()];
            if gate_co >= CAP {
                continue;
            }
            match node.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => {}
                GateKind::Buf | GateKind::Not | GateKind::Dff => {
                    let f = node.fanin[0].index();
                    co[f] = co[f].min(sat(gate_co, 1));
                }
                GateKind::And | GateKind::Nand => {
                    for (k, f) in node.fanin.iter().enumerate() {
                        // Other inputs must be non-controlling (1).
                        let side: u32 = node
                            .fanin
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != k)
                            .fold(0u32, |a, (_, g)| a.saturating_add(cc1[g.index()]));
                        let f = f.index();
                        co[f] = co[f].min(sat(gate_co.saturating_add(side), 1));
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    for (k, f) in node.fanin.iter().enumerate() {
                        let side: u32 = node
                            .fanin
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != k)
                            .fold(0u32, |a, (_, g)| a.saturating_add(cc0[g.index()]));
                        let f = f.index();
                        co[f] = co[f].min(sat(gate_co.saturating_add(side), 1));
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    for (k, f) in node.fanin.iter().enumerate() {
                        // Other inputs need *some* known value; use the
                        // cheaper of each.
                        let side: u32 = node
                            .fanin
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != k)
                            .fold(0u32, |a, (_, g)| {
                                a.saturating_add(cc0[g.index()].min(cc1[g.index()]))
                            });
                        let f = f.index();
                        co[f] = co[f].min(sat(gate_co.saturating_add(side), 1));
                    }
                }
            }
        }

        Ok(Testability { cc0, cc1, co })
    }

    /// Effort to control the node to 0.
    #[must_use]
    pub fn cc0(&self, id: NodeId) -> u32 {
        self.cc0[id.index()]
    }

    /// Effort to control the node to 1.
    #[must_use]
    pub fn cc1(&self, id: NodeId) -> u32 {
        self.cc1[id.index()]
    }

    /// Effort to control the node to the given value.
    #[must_use]
    pub fn cc(&self, id: NodeId, value: bool) -> u32 {
        if value {
            self.cc1(id)
        } else {
            self.cc0(id)
        }
    }

    /// Effort to observe the node at an output.
    #[must_use]
    pub fn co(&self, id: NodeId) -> u32 {
        self.co[id.index()]
    }
}

fn sat(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(CAP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_netlist::Circuit;

    #[test]
    fn inputs_cost_one() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        c.mark_output(n);
        let t = Testability::compute(&c).unwrap();
        assert_eq!(t.cc0(a), 1);
        assert_eq!(t.cc1(a), 1);
        assert_eq!(t.cc0(n), 2); // via a=1
        assert_eq!(t.co(n), 0);
        assert_eq!(t.co(a), 1);
    }

    #[test]
    fn and_controllability_asymmetry() {
        // 3-input AND: cc1 = 3 inputs + 1 = 4; cc0 = 1 + 1 = 2.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g = c.add_gate("g", GateKind::And, &[a, b, d]).unwrap();
        c.mark_output(g);
        let t = Testability::compute(&c).unwrap();
        assert_eq!(t.cc1(g), 4);
        assert_eq!(t.cc0(g), 2);
        // Observing `a` requires b=1, d=1: co = 0 + 2 + 1 = 3.
        assert_eq!(t.co(a), 3);
    }

    #[test]
    fn deep_chain_costs_grow() {
        let mut c = Circuit::new("chain");
        let mut prev = c.add_input("i");
        for k in 0..10 {
            prev = c.add_gate(format!("b{k}"), GateKind::Buf, &[prev]).unwrap();
        }
        c.mark_output(prev);
        let t = Testability::compute(&c).unwrap();
        assert_eq!(t.cc0(prev), 11);
        assert_eq!(t.co(c.inputs()[0]), 10);
    }

    #[test]
    fn xor_controllability() {
        let mut c = Circuit::new("x");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::Xor, &[a, b]).unwrap();
        c.mark_output(g);
        let t = Testability::compute(&c).unwrap();
        // parity0: (0,0) or (1,1) -> 2; parity1 likewise 2; +1 each.
        assert_eq!(t.cc0(g), 3);
        assert_eq!(t.cc1(g), 3);
    }

    #[test]
    fn unobservable_line_saturates() {
        let mut c = Circuit::new("dead");
        let a = c.add_input("a");
        let _dead = c.add_gate("dead", GateKind::Not, &[a]).unwrap();
        let live = c.add_gate("live", GateKind::Buf, &[a]).unwrap();
        c.mark_output(live);
        let t = Testability::compute(&c).unwrap();
        assert_eq!(t.co(c.find("dead").unwrap()), CAP);
    }

    #[test]
    fn sequential_rejected() {
        let mut c = Circuit::new("s");
        let a = c.add_input("a");
        let ff = c.add_gate("ff", GateKind::Dff, &[a]).unwrap();
        c.mark_output(ff);
        assert!(Testability::compute(&c).is_err());
    }
}
