//! Test-set compaction.
//!
//! Two strategies, usually applied in sequence:
//!
//! * **Static cube merging** ([`merge_compatible`]): greedily merges
//!   compatible (non-conflicting) test cubes, the mechanism §3 of the
//!   paper describes for combining per-cone partial patterns into
//!   circuit-level patterns. Overlapping cones produce conflicting cubes
//!   that refuse to merge — exactly why monolithic pattern counts exceed
//!   the per-cone maximum.
//! * **Reverse-order fault simulation** ([`reverse_order_compaction`]):
//!   re-simulates the final filled patterns from last to first and drops
//!   any pattern that detects no fault that later-kept patterns miss.

use std::sync::Arc;

use modsoc_netlist::{Circuit, StructuralIndex};

use crate::error::AtpgError;
use crate::fault::Fault;
use crate::fault_sim::{block_active_mask, FaultSimulator, BLOCK_BITS};
use crate::pattern::{FillStrategy, TestCube, TestSet};

/// Greedy first-fit merging of compatible cubes.
///
/// Cubes are considered in descending care-bit order (hardest first) and
/// merged into the first existing pattern they are compatible with; the
/// result is a smaller set of more-specified cubes. The merge preserves
/// detection: a merged pattern subsumes each constituent cube, so any
/// fault detected by a cube under *every* fill remains detected (faults
/// detected incidentally by specific fills are re-established by the
/// engine's final fault-simulation pass).
#[must_use]
pub fn merge_compatible(cubes: &TestSet) -> TestSet {
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes.cubes()[i].specified_count()));
    let mut merged: Vec<TestCube> = Vec::new();
    for i in order {
        let cube = &cubes.cubes()[i];
        match merged.iter_mut().find(|m| m.compatible(cube)) {
            Some(m) => m.merge_in_place(cube),
            None => merged.push(cube.clone()),
        }
    }
    let mut out = TestSet::new(cubes.width());
    out.extend(merged);
    out
}

/// Drop patterns that contribute no unique detection, scanning in reverse
/// order of application.
///
/// `faults` is the target list; patterns are filled with `fill` before
/// simulation (the same strategy the engine uses for its final pattern
/// set, so what is measured is what ships). Returns the retained set, in
/// original relative order.
///
/// # Errors
///
/// Propagates fault-simulator construction and width errors.
pub fn reverse_order_compaction(
    circuit: &Circuit,
    patterns: &TestSet,
    faults: &[Fault],
    fill: FillStrategy,
) -> Result<TestSet, AtpgError> {
    if patterns.is_empty() || faults.is_empty() {
        return Ok(patterns.clone());
    }
    reverse_order_compaction_indexed(
        circuit,
        &Arc::new(StructuralIndex::build(circuit)?),
        patterns,
        faults,
        fill,
    )
}

/// [`reverse_order_compaction`] against a prebuilt shared
/// [`StructuralIndex`], so the engine's per-run index feeds the
/// compaction simulator instead of rebuilding the fanout adjacency.
///
/// # Errors
///
/// Propagates fault-simulator construction and width errors.
pub fn reverse_order_compaction_indexed(
    circuit: &Circuit,
    index: &Arc<StructuralIndex>,
    patterns: &TestSet,
    faults: &[Fault],
    fill: FillStrategy,
) -> Result<TestSet, AtpgError> {
    if patterns.is_empty() || faults.is_empty() {
        return Ok(patterns.clone());
    }
    let filled = patterns.fill_all(fill);
    let mut fsim = FaultSimulator::with_index(circuit, Arc::clone(index))?;

    // Detection matrix: per pattern, which fault indices it detects.
    // Swept with the wide kernel (pattern index = block * BLOCK_BITS +
    // word * 64 + bit); the narrow fallback preserves the pre-blocked
    // path for the CI kernel smoke.
    let mut detects: Vec<Vec<u32>> = vec![Vec::new(); patterns.len()];
    if crate::fault_sim::narrow_forced() {
        for (chunk_idx, chunk) in filled.chunks(64).enumerate() {
            let masks = fsim.detection_masks(chunk, faults)?;
            for (fi, mask) in masks.into_iter().enumerate() {
                let mut m = mask;
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    detects[chunk_idx * 64 + bit].push(fi as u32);
                    m &= m - 1;
                }
            }
        }
    } else {
        for (blk_idx, chunk) in filled.chunks(BLOCK_BITS).enumerate() {
            let (good, n) = fsim.good_blocks(chunk)?;
            let active = block_active_mask(n);
            for (fi, &fault) in faults.iter().enumerate() {
                let mask = fsim.block_detection_mask(&good, &active, fault);
                for (w, &word) in mask.iter().enumerate() {
                    let mut m = word;
                    while m != 0 {
                        let bit = m.trailing_zeros() as usize;
                        detects[blk_idx * BLOCK_BITS + w * 64 + bit].push(fi as u32);
                        m &= m - 1;
                    }
                }
            }
        }
    }

    let mut covered = vec![false; faults.len()];
    let mut keep: Vec<usize> = Vec::new();
    for i in (0..patterns.len()).rev() {
        let new = detects[i].iter().any(|&f| !covered[f as usize]);
        if new {
            for &f in &detects[i] {
                covered[f as usize] = true;
            }
            keep.push(i);
        }
    }
    keep.sort_unstable();
    let mut out = patterns.clone();
    out.retain_indices(&keep);
    Ok(out)
}

/// Conflict statistics of a cube set — the §3 mechanism made
/// measurable: conflicting cubes cannot merge, so the final pattern
/// count is wedged between a clique-based lower bound and the greedy
/// merge result.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConflictStats {
    /// Number of cubes analysed.
    pub cubes: usize,
    /// Cube pairs that conflict (some input assigned opposite values).
    pub conflicting_pairs: usize,
    /// Fraction of pairs that conflict, in `[0, 1]`.
    pub conflict_density: f64,
    /// A lower bound on the achievable pattern count: the size of a
    /// greedily-grown clique in the conflict graph (every member
    /// pairwise conflicts, so each needs its own pattern).
    pub clique_lower_bound: usize,
    /// The greedy merge result ([`merge_compatible`]) — an upper bound
    /// on the minimum pattern count.
    pub merge_upper_bound: usize,
}

/// Analyse pairwise cube conflicts in a test set.
///
/// `O(n²·w)`; intended for the cube sets real ATPG runs produce
/// (hundreds of cubes), not for millions.
#[must_use]
pub fn conflict_stats(cubes: &TestSet) -> ConflictStats {
    let n = cubes.len();
    let mut conflicting_pairs = 0usize;
    let mut conflicts: Vec<Vec<bool>> = vec![vec![false; n]; n];
    #[allow(clippy::needless_range_loop)] // symmetric matrix fill
    for i in 0..n {
        for j in (i + 1)..n {
            if !cubes.cubes()[i].compatible(&cubes.cubes()[j]) {
                conflicting_pairs += 1;
                conflicts[i][j] = true;
                conflicts[j][i] = true;
            }
        }
    }
    // Greedy clique: repeatedly add the cube conflicting with all
    // current members, preferring high conflict degree.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(conflicts[i].iter().filter(|&&c| c).count()));
    let mut clique: Vec<usize> = Vec::new();
    for &i in &order {
        if clique.iter().all(|&m| conflicts[i][m]) {
            clique.push(i);
        }
    }
    let pairs = n * n.saturating_sub(1) / 2;
    ConflictStats {
        cubes: n,
        conflicting_pairs,
        conflict_density: if pairs == 0 {
            0.0
        } else {
            conflicting_pairs as f64 / pairs as f64
        },
        clique_lower_bound: clique.len().max(usize::from(n > 0)),
        merge_upper_bound: merge_compatible(cubes).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::enumerate_faults;
    use crate::fault_sim::fault_coverage;
    use crate::pattern::Bit;
    use modsoc_netlist::bench_format::parse_bench;

    #[test]
    fn merge_disjoint_cubes() {
        let mut s = TestSet::new(4);
        s.push(TestCube::from_bits(vec![Bit::One, Bit::X, Bit::X, Bit::X]));
        s.push(TestCube::from_bits(vec![Bit::X, Bit::Zero, Bit::X, Bit::X]));
        s.push(TestCube::from_bits(vec![
            Bit::X,
            Bit::X,
            Bit::One,
            Bit::One,
        ]));
        let m = merge_compatible(&s);
        assert_eq!(m.len(), 1);
        assert_eq!(m.cubes()[0].specified_count(), 4);
    }

    #[test]
    fn merge_respects_conflicts() {
        let mut s = TestSet::new(2);
        s.push(TestCube::from_bits(vec![Bit::One, Bit::X]));
        s.push(TestCube::from_bits(vec![Bit::Zero, Bit::X]));
        s.push(TestCube::from_bits(vec![Bit::X, Bit::One]));
        let m = merge_compatible(&s);
        assert_eq!(m.len(), 2, "conflicting first bits cannot merge");
    }

    #[test]
    fn merge_never_increases_count() {
        let mut s = TestSet::new(3);
        for bits in [
            [Bit::One, Bit::One, Bit::X],
            [Bit::One, Bit::X, Bit::Zero],
            [Bit::Zero, Bit::X, Bit::X],
            [Bit::X, Bit::Zero, Bit::One],
        ] {
            s.push(TestCube::from_bits(bits.to_vec()));
        }
        let m = merge_compatible(&s);
        assert!(m.len() <= s.len());
    }

    #[test]
    fn reverse_compaction_preserves_coverage() {
        let c = parse_bench(
            "c17",
            "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
",
        )
        .unwrap();
        let faults = enumerate_faults(&c);
        // All 32 exhaustive patterns, fully specified.
        let mut s = TestSet::new(5);
        for row in 0..32usize {
            s.push(TestCube::from_bools(
                &(0..5).map(|i| (row >> i) & 1 == 1).collect::<Vec<_>>(),
            ));
        }
        let fill = FillStrategy::Zeros;
        let before = {
            let filled = s.fill_all(fill);
            fault_coverage(&c, &filled, &faults).unwrap()
        };
        let compacted = reverse_order_compaction(&c, &s, &faults, fill).unwrap();
        assert!(compacted.len() < s.len(), "redundant patterns dropped");
        let after = {
            let filled = compacted.fill_all(fill);
            fault_coverage(&c, &filled, &faults).unwrap()
        };
        assert!(
            after >= before - 1e-12,
            "coverage preserved: {before} -> {after}"
        );
    }

    #[test]
    fn conflict_stats_bounds_are_ordered() {
        // Disjoint cubes: no conflicts, everything merges to 1.
        let mut disjoint = TestSet::new(4);
        disjoint.push(TestCube::from_bits(vec![Bit::One, Bit::X, Bit::X, Bit::X]));
        disjoint.push(TestCube::from_bits(vec![Bit::X, Bit::Zero, Bit::X, Bit::X]));
        let s = conflict_stats(&disjoint);
        assert_eq!(s.conflicting_pairs, 0);
        assert_eq!(s.conflict_density, 0.0);
        assert_eq!(s.clique_lower_bound, 1);
        assert_eq!(s.merge_upper_bound, 1);

        // Pairwise conflicting cubes: clique = n = merge result.
        let mut clash = TestSet::new(2);
        clash.push(TestCube::from_bits(vec![Bit::Zero, Bit::Zero]));
        clash.push(TestCube::from_bits(vec![Bit::Zero, Bit::One]));
        clash.push(TestCube::from_bits(vec![Bit::One, Bit::X]));
        let s = conflict_stats(&clash);
        assert_eq!(s.conflicting_pairs, 3);
        assert!((s.conflict_density - 1.0).abs() < 1e-12);
        assert_eq!(s.clique_lower_bound, 3);
        assert_eq!(s.merge_upper_bound, 3);
        assert!(s.clique_lower_bound <= s.merge_upper_bound);
    }

    #[test]
    fn conflict_stats_on_real_atpg_cubes() {
        use crate::engine::{Atpg, AtpgOptions};
        let c = parse_bench(
            "c17",
            "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
",
        )
        .unwrap();
        let mut opts = AtpgOptions::deterministic_only();
        opts.merge_cubes = false;
        opts.reverse_compaction = false;
        let r = Atpg::new(opts).run(&c).unwrap();
        let s = conflict_stats(&r.patterns);
        assert!(s.clique_lower_bound <= s.merge_upper_bound);
        assert!(s.merge_upper_bound <= s.cubes);
        // c17's cones overlap heavily, so real cube sets do conflict.
        assert!(s.conflicting_pairs > 0);
    }

    #[test]
    fn reverse_compaction_empty_inputs() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let s = TestSet::new(1);
        let out = reverse_order_compaction(&c, &s, &[], FillStrategy::Zeros).unwrap();
        assert!(out.is_empty());
    }
}
