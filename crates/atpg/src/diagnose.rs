//! Cause-effect fault diagnosis.
//!
//! Given the observed pass/fail *syndrome* of a device under test (which
//! patterns failed, and on which outputs), rank the stuck-at fault
//! candidates whose simulated behaviour best explains it. This is the
//! classic dictionary-free diagnosis loop: re-simulate every candidate
//! fault against the applied patterns and score the match.

use modsoc_netlist::Circuit;

use crate::error::AtpgError;
use crate::fault::Fault;
use crate::fault_sim::{active_mask, block_active_mask, FaultSimulator, BLOCK_BITS};

/// The observed behaviour of one applied pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedPattern {
    /// The fully-specified input vector that was applied.
    pub inputs: Vec<bool>,
    /// Which primary outputs mismatched the expected (good) response.
    /// Empty means the pattern passed.
    pub failing_outputs: Vec<usize>,
}

/// A ranked diagnosis candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate fault.
    pub fault: Fault,
    /// Patterns where prediction and observation both fail (TFSF).
    pub matched_failures: usize,
    /// Observed failures the candidate does not predict (TFSP misses).
    pub missed_failures: usize,
    /// Predicted failures that did not occur (TPSF false alarms).
    pub false_alarms: usize,
}

impl Candidate {
    /// Match score in `[0, 1]`: Jaccard index of predicted vs observed
    /// failing-pattern sets (1.0 = perfect explanation).
    #[must_use]
    pub fn score(&self) -> f64 {
        let union = self.matched_failures + self.missed_failures + self.false_alarms;
        if union == 0 {
            return 0.0;
        }
        self.matched_failures as f64 / union as f64
    }

    /// Whether the candidate exactly explains the syndrome.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.matched_failures > 0 && self.missed_failures == 0 && self.false_alarms == 0
    }
}

/// Diagnose a failing device: rank `candidates` by how well each
/// explains the observed syndrome.
///
/// Pattern-level granularity is used for matching (a candidate "predicts
/// a failure" when any output mismatches); output-level refinement
/// breaks ties via [`diagnose_with_outputs`].
///
/// # Example
///
/// ```
/// use modsoc_atpg::collapse::collapse_faults;
/// use modsoc_atpg::diagnose::{diagnose, rank_of, syndrome_of_fault};
/// use modsoc_netlist::bench_format::parse_bench;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = parse_bench("x", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let candidates = collapse_faults(&circuit).representatives().to_vec();
/// let patterns: Vec<Vec<bool>> = (0..4)
///     .map(|k| vec![k & 1 == 1, k & 2 == 2])
///     .collect();
/// // "Manufacture" a defect and read back its tester syndrome.
/// let secret = candidates[0];
/// let syndrome = syndrome_of_fault(&circuit, &patterns, secret)?;
/// let ranked = diagnose(&circuit, &syndrome, &candidates)?;
/// // The true fault ties the top score.
/// let r = rank_of(&ranked, secret).expect("candidate present");
/// assert_eq!(ranked[r].score(), ranked[0].score());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates simulator construction and pattern-width errors.
pub fn diagnose(
    circuit: &Circuit,
    observations: &[ObservedPattern],
    candidates: &[Fault],
) -> Result<Vec<Candidate>, AtpgError> {
    let mut fsim = FaultSimulator::new(circuit)?;
    let observed_fail: Vec<bool> = observations
        .iter()
        .map(|o| !o.failing_outputs.is_empty())
        .collect();

    // Predicted failing-pattern masks per candidate, block by block on
    // the wide kernel (pattern index = block * BLOCK_BITS + word * 64 +
    // bit, sharing the blocked tail-mask discipline); the narrow
    // fallback preserves the pre-blocked path for the CI kernel smoke.
    let mut predicted: Vec<Vec<bool>> = vec![vec![false; observations.len()]; candidates.len()];
    let patterns: Vec<Vec<bool>> = observations.iter().map(|o| o.inputs.clone()).collect();
    if crate::fault_sim::narrow_forced() {
        for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            let masks = fsim.detection_masks(chunk, candidates)?;
            for (ci, mask) in masks.into_iter().enumerate() {
                let mut m = mask;
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    predicted[ci][chunk_idx * 64 + bit] = true;
                    m &= m - 1;
                }
            }
        }
    } else {
        for (blk_idx, chunk) in patterns.chunks(BLOCK_BITS).enumerate() {
            let (good, n) = fsim.good_blocks(chunk)?;
            let active = block_active_mask(n);
            for (ci, &fault) in candidates.iter().enumerate() {
                let mask = fsim.block_detection_mask(&good, &active, fault);
                for (w, &word) in mask.iter().enumerate() {
                    let mut m = word;
                    while m != 0 {
                        let bit = m.trailing_zeros() as usize;
                        predicted[ci][blk_idx * BLOCK_BITS + w * 64 + bit] = true;
                        m &= m - 1;
                    }
                }
            }
        }
    }

    let mut out: Vec<Candidate> = candidates
        .iter()
        .zip(predicted)
        .map(|(&fault, pred)| {
            let mut matched = 0;
            let mut missed = 0;
            let mut alarms = 0;
            for (p, &obs) in pred.iter().zip(&observed_fail) {
                match (*p, obs) {
                    (true, true) => matched += 1,
                    (false, true) => missed += 1,
                    (true, false) => alarms += 1,
                    (false, false) => {}
                }
            }
            Candidate {
                fault,
                matched_failures: matched,
                missed_failures: missed,
                false_alarms: alarms,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.score()
            .total_cmp(&a.score())
            .then_with(|| a.fault.cmp(&b.fault))
    });
    Ok(out)
}

/// Build the observed syndrome for a device whose behaviour is the
/// circuit with `actual_fault` injected — a testbench helper for
/// diagnosis experiments and tests.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn syndrome_of_fault(
    circuit: &Circuit,
    patterns: &[Vec<bool>],
    actual_fault: Fault,
) -> Result<Vec<ObservedPattern>, AtpgError> {
    let mut fsim = FaultSimulator::new(circuit)?;
    let mut observations = Vec::with_capacity(patterns.len());
    for chunk in patterns.chunks(64) {
        let (good, n) = fsim.good_values(chunk)?;
        let active = active_mask(n);
        let per_output = fsim.output_detection_masks(&good, active, actual_fault);
        for (slot, pattern) in chunk.iter().enumerate() {
            let failing: Vec<usize> = per_output
                .iter()
                .enumerate()
                .filter(|(_, m)| *m & (1 << slot) != 0)
                .map(|(k, _)| k)
                .collect();
            observations.push(ObservedPattern {
                inputs: pattern.clone(),
                failing_outputs: failing,
            });
        }
    }
    Ok(observations)
}

/// Relative diagnosis quality: position (0-based) of the true fault in
/// the ranked candidate list, if present.
#[must_use]
pub fn rank_of(candidates: &[Candidate], fault: Fault) -> Option<usize> {
    candidates.iter().position(|c| c.fault == fault)
}

/// Like [`diagnose`] but scoring at output granularity: candidates must
/// predict not just *that* a pattern fails but *which outputs* fail.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn diagnose_with_outputs(
    circuit: &Circuit,
    observations: &[ObservedPattern],
    candidates: &[Fault],
) -> Result<Vec<Candidate>, AtpgError> {
    let mut fsim = FaultSimulator::new(circuit)?;
    let patterns: Vec<Vec<bool>> = observations.iter().map(|o| o.inputs.clone()).collect();
    let mut out: Vec<Candidate> = Vec::with_capacity(candidates.len());
    for &fault in candidates {
        let mut matched = 0;
        let mut missed = 0;
        let mut alarms = 0;
        for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            let (good, n) = fsim.good_values(chunk)?;
            let active = active_mask(n);
            let per_output = fsim.output_detection_masks(&good, active, fault);
            for slot in 0..n {
                let obs = &observations[chunk_idx * 64 + slot];
                for (k, m) in per_output.iter().enumerate() {
                    let predicted = m & (1 << slot) != 0;
                    let observed = obs.failing_outputs.contains(&k);
                    match (predicted, observed) {
                        (true, true) => matched += 1,
                        (true, false) => alarms += 1,
                        (false, true) => missed += 1,
                        (false, false) => {}
                    }
                }
            }
        }
        out.push(Candidate {
            fault,
            matched_failures: matched,
            missed_failures: missed,
            false_alarms: alarms,
        });
    }
    out.sort_by(|a, b| {
        b.score()
            .total_cmp(&a.score())
            .then_with(|| a.fault.cmp(&b.fault))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collapse::collapse_faults;
    use modsoc_netlist::bench_format::parse_bench;

    fn c17() -> Circuit {
        parse_bench(
            "c17",
            "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
",
        )
        .unwrap()
    }

    fn all_patterns() -> Vec<Vec<bool>> {
        (0..32usize)
            .map(|row| (0..5).map(|i| (row >> i) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn true_fault_ranks_first_or_equivalent() {
        let c = c17();
        let candidates = collapse_faults(&c).representatives().to_vec();
        let patterns = all_patterns();
        for &actual in candidates.iter().step_by(3) {
            let syndrome = syndrome_of_fault(&c, &patterns, actual).unwrap();
            let ranked = diagnose(&c, &syndrome, &candidates).unwrap();
            let top_score = ranked[0].score();
            let actual_score = ranked[rank_of(&ranked, actual).unwrap()].score();
            assert_eq!(
                actual_score, top_score,
                "true fault {actual} must tie the best score"
            );
            assert!(ranked[rank_of(&ranked, actual).unwrap()].is_perfect());
        }
    }

    #[test]
    fn output_granularity_refines_ranking() {
        let c = c17();
        let candidates = collapse_faults(&c).representatives().to_vec();
        let patterns = all_patterns();
        let actual = candidates[0];
        let syndrome = syndrome_of_fault(&c, &patterns, actual).unwrap();
        let refined = diagnose_with_outputs(&c, &syndrome, &candidates).unwrap();
        let coarse = diagnose(&c, &syndrome, &candidates).unwrap();
        // Output-level matching can only shrink the perfect set.
        let perfect_refined = refined.iter().filter(|c| c.is_perfect()).count();
        let perfect_coarse = coarse.iter().filter(|c| c.is_perfect()).count();
        assert!(perfect_refined <= perfect_coarse);
        assert!(refined[rank_of(&refined, actual).unwrap()].is_perfect());
    }

    #[test]
    fn passing_device_has_no_perfect_candidate() {
        let c = c17();
        let candidates = collapse_faults(&c).representatives().to_vec();
        let observations: Vec<ObservedPattern> = all_patterns()
            .into_iter()
            .map(|inputs| ObservedPattern {
                inputs,
                failing_outputs: Vec::new(),
            })
            .collect();
        let ranked = diagnose(&c, &observations, &candidates).unwrap();
        assert!(ranked.iter().all(|c| !c.is_perfect()));
        assert!(ranked.iter().all(|c| c.score() == 0.0));
    }

    #[test]
    fn candidate_scoring() {
        let f = Fault::stem_sa0(modsoc_netlist::NodeId::from_index(0));
        let c = Candidate {
            fault: f,
            matched_failures: 3,
            missed_failures: 1,
            false_alarms: 0,
        };
        assert!((c.score() - 0.75).abs() < 1e-12);
        assert!(!c.is_perfect());
    }
}
