//! Test data compression: XOR stimulus decompression and X-tolerant
//! response compaction.
//!
//! The DATE 2008 paper quantifies how much test data *modularity* saves;
//! industrial flows stack *compression* on top — an on-chip XOR network
//! expands a few tester channels into many scan-chain inputs, exploiting
//! the very don't-care bits (test cubes) this crate's ATPG produces. This
//! module implements the linear-algebra core of that scheme:
//!
//! * [`XorDecompressor`] — a seeded pseudo-random XOR network mapping
//!   `channels × cycles` tester bits onto the scan load, with cube
//!   solving by Gaussian elimination over GF(2);
//! * [`XorCompactor`] — a response-side XOR space compactor with
//!   X-masking;
//! * [`evaluate_compression`] — end-to-end: how many of a test set's
//!   cubes encode at a given channel count, and the resulting external
//!   data volume against the uncompressed baseline.

use crate::pattern::{Bit, TestCube, TestSet};

/// A combinational XOR decompressor: scan-input bit `i` is the XOR of a
/// fixed pseudo-random subset of the `channels × cycles` tester bits.
///
/// Solving a cube means finding tester bits such that every *specified*
/// cube bit is satisfied; don't-care positions impose no constraint —
/// which is why low care-density cubes compress so well.
#[derive(Debug, Clone)]
pub struct XorDecompressor {
    scan_inputs: usize,
    tester_bits: usize,
    /// Per scan input: the tester-bit indices XORed into it.
    rows: Vec<Vec<u32>>,
}

impl XorDecompressor {
    /// Build a decompressor for `scan_inputs` outputs fed by
    /// `channels` tester channels over `cycles` shift cycles, with a
    /// deterministic pseudo-random network drawn from `seed`.
    ///
    /// Each scan input taps an odd number (3) of tester bits, the usual
    /// density for ring-generator-style networks.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(scan_inputs: usize, channels: usize, cycles: usize, seed: u64) -> XorDecompressor {
        assert!(
            scan_inputs > 0 && channels > 0 && cycles > 0,
            "dimensions must be positive"
        );
        let tester_bits = channels * cycles;
        // Simple xorshift for deterministic tap selection (self-contained
        // so the network is reproducible across rand versions).
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let rows = (0..scan_inputs)
            .map(|_| {
                let mut taps = Vec::with_capacity(3);
                while taps.len() < 3.min(tester_bits) {
                    let t = (next() % tester_bits as u64) as u32;
                    if !taps.contains(&t) {
                        taps.push(t);
                    }
                }
                taps.sort_unstable();
                taps
            })
            .collect();
        XorDecompressor {
            scan_inputs,
            tester_bits,
            rows,
        }
    }

    /// Number of tester bits per pattern (`channels × cycles`).
    #[must_use]
    pub fn tester_bits(&self) -> usize {
        self.tester_bits
    }

    /// Number of scan inputs driven.
    #[must_use]
    pub fn scan_inputs(&self) -> usize {
        self.scan_inputs
    }

    /// Expand a tester word into the scan load it produces.
    ///
    /// # Panics
    ///
    /// Panics if `tester.len() != tester_bits()`.
    #[must_use]
    pub fn expand(&self, tester: &[bool]) -> Vec<bool> {
        assert_eq!(tester.len(), self.tester_bits, "tester word width");
        self.rows
            .iter()
            .map(|taps| taps.iter().fold(false, |acc, &t| acc ^ tester[t as usize]))
            .collect()
    }

    /// Solve for a tester word whose expansion satisfies every specified
    /// bit of `cube` (don't-cares are unconstrained). Returns `None` when
    /// the GF(2) system is inconsistent — the cube is *uncompressible*
    /// at this channel count and must be topped up uncompressed.
    ///
    /// # Panics
    ///
    /// Panics if the cube width differs from [`XorDecompressor::scan_inputs`].
    #[must_use]
    pub fn solve(&self, cube: &TestCube) -> Option<Vec<bool>> {
        assert_eq!(cube.width(), self.scan_inputs, "cube width");
        // Build the constrained system: one equation per specified bit.
        let words = self.tester_bits.div_ceil(64);
        let mut matrix: Vec<(Vec<u64>, bool)> = Vec::new();
        for (i, taps) in self.rows.iter().enumerate() {
            let rhs = match cube.bit(i) {
                Bit::X => continue,
                Bit::One => true,
                Bit::Zero => false,
            };
            let mut row = vec![0u64; words];
            for &t in taps {
                row[(t / 64) as usize] ^= 1u64 << (t % 64);
            }
            matrix.push((row, rhs));
        }
        // Gaussian elimination over GF(2).
        let mut pivot_cols: Vec<usize> = Vec::new();
        let mut rank = 0usize;
        for col in 0..self.tester_bits {
            let (w, b) = (col / 64, col % 64);
            let Some(pivot) = (rank..matrix.len()).find(|&r| matrix[r].0[w] >> b & 1 == 1) else {
                continue;
            };
            matrix.swap(rank, pivot);
            let (pivot_row, pivot_rhs) = (matrix[rank].0.clone(), matrix[rank].1);
            for (r, (row, rhs)) in matrix.iter_mut().enumerate() {
                if r != rank && row[w] >> b & 1 == 1 {
                    for (x, p) in row.iter_mut().zip(&pivot_row) {
                        *x ^= p;
                    }
                    *rhs ^= pivot_rhs;
                }
            }
            pivot_cols.push(col);
            rank += 1;
            if rank == matrix.len() {
                break;
            }
        }
        // Inconsistent: a zero row with rhs = 1.
        for (row, rhs) in matrix.iter().skip(rank) {
            if *rhs && row.iter().all(|&w| w == 0) {
                return None;
            }
        }
        // Back-substitute with all free variables at 0: after the
        // Gauss–Jordan sweep each pivot row reads
        // `x_pivot ⊕ (free terms) = rhs`, so with frees at zero the pivot
        // variable is simply the row's rhs. (The row may still carry set
        // bits in *free* columns — possibly below the pivot — which is
        // why the pivot column is taken from `pivot_cols`, not inferred
        // from the row's bit pattern.)
        let mut solution = vec![false; self.tester_bits];
        for (r, &col) in pivot_cols.iter().enumerate() {
            solution[col] = matrix[r].1;
        }
        debug_assert!({
            let expanded = self.expand(&solution);
            (0..self.scan_inputs).all(|i| match cube.bit(i) {
                Bit::X => true,
                Bit::One => expanded[i],
                Bit::Zero => !expanded[i],
            })
        });
        Some(solution)
    }
}

/// A response-side XOR space compactor: `outputs` response bits fold
/// into `channels` signature bits per cycle; a mask register suppresses
/// unknown (X) responses before they corrupt the XOR trees.
#[derive(Debug, Clone)]
pub struct XorCompactor {
    outputs: usize,
    channels: usize,
}

impl XorCompactor {
    /// Build a compactor folding `outputs` bits into `channels`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(outputs: usize, channels: usize) -> XorCompactor {
        assert!(channels > 0, "at least one output channel");
        XorCompactor { outputs, channels }
    }

    /// Compact one response slice; `known[i] == false` masks bit `i`
    /// (the X-masking the paper's "useful bits" scoping sidesteps).
    ///
    /// # Panics
    ///
    /// Panics if slice widths disagree with the construction.
    #[must_use]
    pub fn compact(&self, response: &[bool], known: &[bool]) -> Vec<bool> {
        assert_eq!(response.len(), self.outputs);
        assert_eq!(known.len(), self.outputs);
        let mut out = vec![false; self.channels];
        for (i, (&r, &k)) in response.iter().zip(known).enumerate() {
            if k && r {
                out[i % self.channels] = !out[i % self.channels];
            }
        }
        out
    }

    /// Compression ratio `outputs / channels`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.outputs as f64 / self.channels as f64
    }
}

/// Outcome of evaluating a decompressor over a test set.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionOutcome {
    /// Cubes that encoded successfully.
    pub encoded: usize,
    /// Cubes that had to ship uncompressed (GF(2) system inconsistent).
    pub rejected: usize,
    /// External stimulus bits with compression (encoded cubes at
    /// `tester_bits` each, rejects at full width).
    pub compressed_stimulus_bits: u64,
    /// External stimulus bits without compression.
    pub raw_stimulus_bits: u64,
}

impl CompressionOutcome {
    /// Stimulus compression factor (`raw / compressed`; > 1 is a win).
    #[must_use]
    pub fn compression_factor(&self) -> f64 {
        if self.compressed_stimulus_bits == 0 {
            return 1.0;
        }
        self.raw_stimulus_bits as f64 / self.compressed_stimulus_bits as f64
    }

    /// Fraction of cubes that encoded.
    #[must_use]
    pub fn encode_rate(&self) -> f64 {
        let total = self.encoded + self.rejected;
        if total == 0 {
            return 1.0;
        }
        self.encoded as f64 / total as f64
    }
}

/// Try to encode every cube of `patterns` through `decompressor`.
///
/// # Example
///
/// ```
/// use modsoc_atpg::compress::{evaluate_compression, XorDecompressor};
/// use modsoc_atpg::{Bit, TestCube, TestSet};
///
/// let mut set = TestSet::new(64);
/// let mut cube = TestCube::all_x(64);
/// cube.set(3, Bit::One);
/// cube.set(40, Bit::Zero);
/// set.push(cube);
///
/// let decompressor = XorDecompressor::new(64, 2, 8, 1);
/// let outcome = evaluate_compression(&set, &decompressor);
/// assert_eq!(outcome.encoded, 1);
/// assert!(outcome.compression_factor() > 3.0); // 16 tester bits vs 64
/// ```
///
/// # Panics
///
/// Panics if the set width differs from the decompressor's scan inputs.
#[must_use]
pub fn evaluate_compression(
    patterns: &TestSet,
    decompressor: &XorDecompressor,
) -> CompressionOutcome {
    let mut encoded = 0usize;
    let mut rejected = 0usize;
    for cube in patterns.cubes() {
        if decompressor.solve(cube).is_some() {
            encoded += 1;
        } else {
            rejected += 1;
        }
    }
    let raw = patterns.stimulus_bits();
    let compressed = encoded as u64 * decompressor.tester_bits() as u64
        + rejected as u64 * patterns.width() as u64;
    CompressionOutcome {
        encoded,
        rejected,
        compressed_stimulus_bits: compressed,
        raw_stimulus_bits: raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(bits: &str) -> TestCube {
        TestCube::from_bits(
            bits.chars()
                .map(|c| match c {
                    '0' => Bit::Zero,
                    '1' => Bit::One,
                    _ => Bit::X,
                })
                .collect(),
        )
    }

    #[test]
    fn expand_is_linear() {
        let d = XorDecompressor::new(16, 2, 8, 42);
        let a: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..16).map(|i| i % 5 == 0).collect();
        let xor: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        let ea = d.expand(&a);
        let eb = d.expand(&b);
        let exor = d.expand(&xor);
        for i in 0..16 {
            assert_eq!(exor[i], ea[i] ^ eb[i], "linearity at {i}");
        }
    }

    #[test]
    fn solve_satisfies_care_bits() {
        let d = XorDecompressor::new(32, 4, 8, 7);
        let c = cube("1XX0XXXX1XXXXX0XXX1XXXXXXXX0XXXX");
        let tester = d.solve(&c).expect("sparse cube encodes");
        let expanded = d.expand(&tester);
        for (i, &e) in expanded.iter().enumerate() {
            match c.bit(i) {
                Bit::One => assert!(e, "bit {i}"),
                Bit::Zero => assert!(!e, "bit {i}"),
                Bit::X => {}
            }
        }
    }

    #[test]
    fn dense_cubes_eventually_reject() {
        // 64 scan inputs from 8 tester bits: a fully-specified cube has
        // 64 constraints over 8 unknowns — overwhelmingly inconsistent.
        let d = XorDecompressor::new(64, 2, 4, 3);
        let dense = TestCube::from_bools(&(0..64).map(|i| i % 7 < 3).collect::<Vec<_>>());
        assert!(d.solve(&dense).is_none(), "dense cube should not encode");
        // But the all-X cube always encodes.
        assert!(d.solve(&TestCube::all_x(64)).is_some());
    }

    #[test]
    fn care_density_drives_encode_rate() {
        let d = XorDecompressor::new(64, 2, 8, 9);
        let sparse_rate = {
            let mut s = TestSet::new(64);
            for k in 0..30usize {
                let mut c = TestCube::all_x(64);
                for j in 0..4 {
                    c.set(
                        (k * 7 + j * 13) % 64,
                        if j % 2 == 0 { Bit::One } else { Bit::Zero },
                    );
                }
                s.push(c);
            }
            evaluate_compression(&s, &d).encode_rate()
        };
        let dense_rate = {
            let mut s = TestSet::new(64);
            for k in 0..30usize {
                let mut c = TestCube::all_x(64);
                for j in 0..40 {
                    c.set(
                        (k + j) % 64,
                        if (k + j) % 3 == 0 {
                            Bit::One
                        } else {
                            Bit::Zero
                        },
                    );
                }
                s.push(c);
            }
            evaluate_compression(&s, &d).encode_rate()
        };
        assert!(sparse_rate > dense_rate, "{sparse_rate} vs {dense_rate}");
        assert!(
            sparse_rate > 0.9,
            "sparse cubes nearly always encode: {sparse_rate}"
        );
    }

    #[test]
    fn compression_factor_on_sparse_set() {
        let d = XorDecompressor::new(256, 4, 16, 5);
        let mut s = TestSet::new(256);
        for k in 0..20usize {
            let mut c = TestCube::all_x(256);
            for j in 0..10 {
                c.set((k * 11 + j * 23) % 256, Bit::One);
            }
            s.push(c);
        }
        let outcome = evaluate_compression(&s, &d);
        assert_eq!(outcome.encoded + outcome.rejected, 20);
        assert!(
            outcome.compression_factor() > 2.0,
            "factor {}",
            outcome.compression_factor()
        );
    }

    #[test]
    fn compactor_folds_and_masks() {
        let c = XorCompactor::new(8, 2);
        assert!((c.ratio() - 4.0).abs() < 1e-12);
        let response = vec![true, false, true, true, false, false, true, false];
        let all_known = vec![true; 8];
        let folded = c.compact(&response, &all_known);
        // channel 0 gets bits 0,2,4,6 = T,T,F,T -> odd count of trues = true
        assert_eq!(folded, vec![true, true]);
        // Masking the bit-6 response flips channel 0.
        let mut known = all_known.clone();
        known[6] = false;
        assert_eq!(c.compact(&response, &known), vec![false, true]);
    }

    #[test]
    fn solve_always_satisfies_when_some() {
        // Regression sweep for the back-substitution path: many random
        // networks x cubes; every returned word must expand to a load
        // satisfying the cube (checked here explicitly so release builds
        // exercise it too, not only the debug_assert).
        for seed in 0..40u64 {
            let d = XorDecompressor::new(48, 3, 6, seed.wrapping_mul(0x9E37_79B9) | 1);
            let mut c = TestCube::all_x(48);
            for j in 0..(4 + (seed as usize % 20)) {
                let pos = (seed as usize * 17 + j * 29) % 48;
                c.set(
                    pos,
                    if (seed as usize + j).is_multiple_of(2) {
                        Bit::One
                    } else {
                        Bit::Zero
                    },
                );
            }
            if let Some(word) = d.solve(&c) {
                let expanded = d.expand(&word);
                for (i, &e) in expanded.iter().enumerate() {
                    match c.bit(i) {
                        Bit::One => assert!(e, "seed {seed} bit {i}"),
                        Bit::Zero => assert!(!e, "seed {seed} bit {i}"),
                        Bit::X => {}
                    }
                }
            }
        }
    }

    #[test]
    fn decompressor_deterministic() {
        let a = XorDecompressor::new(16, 2, 4, 99);
        let b = XorDecompressor::new(16, 2, 4, 99);
        let word: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        assert_eq!(a.expand(&word), b.expand(&word));
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_dimensions_panic() {
        let _ = XorDecompressor::new(0, 1, 1, 1);
    }
}
