//! The five-valued D-calculus used by PODEM.
//!
//! Each value describes a line simultaneously in the good and the faulty
//! circuit: `D` means good-1/faulty-0 and `Dbar` means good-0/faulty-1, so
//! a test is found exactly when a `D`/`Dbar` reaches an output.

use modsoc_netlist::GateKind;

/// Five-valued logic value: 0, 1, X (unassigned), D (1/0), D̄ (0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum V5 {
    /// Logic 0 in both circuits.
    Zero,
    /// Logic 1 in both circuits.
    One,
    /// Unassigned / unknown.
    #[default]
    X,
    /// Good circuit 1, faulty circuit 0.
    D,
    /// Good circuit 0, faulty circuit 1.
    Dbar,
}

impl V5 {
    /// The value in the good circuit, if determined.
    #[must_use]
    pub fn good(self) -> Option<bool> {
        match self {
            V5::Zero | V5::Dbar => Some(false),
            V5::One | V5::D => Some(true),
            V5::X => None,
        }
    }

    /// The value in the faulty circuit, if determined.
    #[must_use]
    pub fn faulty(self) -> Option<bool> {
        match self {
            V5::Zero | V5::D => Some(false),
            V5::One | V5::Dbar => Some(true),
            V5::X => None,
        }
    }

    /// Build a five-valued value from (good, faulty) components.
    /// `None` on either side yields [`V5::X`].
    #[must_use]
    pub fn from_pair(good: Option<bool>, faulty: Option<bool>) -> V5 {
        match (good, faulty) {
            (Some(false), Some(false)) => V5::Zero,
            (Some(true), Some(true)) => V5::One,
            (Some(true), Some(false)) => V5::D,
            (Some(false), Some(true)) => V5::Dbar,
            _ => V5::X,
        }
    }

    /// Whether this value carries a fault effect (`D` or `D̄`).
    #[must_use]
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::Dbar)
    }

    /// Five-valued AND.
    #[must_use]
    pub fn and(self, other: V5) -> V5 {
        // Componentwise on (good, faulty), with X handled by dominance:
        // 0 AND anything = 0 even if the other side is X.
        let good = and_opt(self.good(), other.good());
        let faulty = and_opt(self.faulty(), other.faulty());
        V5::from_pair(good, faulty)
    }

    /// Five-valued OR.
    #[must_use]
    pub fn or(self, other: V5) -> V5 {
        let good = or_opt(self.good(), other.good());
        let faulty = or_opt(self.faulty(), other.faulty());
        V5::from_pair(good, faulty)
    }

    /// Five-valued XOR (any X makes the result X).
    #[must_use]
    pub fn xor(self, other: V5) -> V5 {
        let good = xor_opt(self.good(), other.good());
        let faulty = xor_opt(self.faulty(), other.faulty());
        V5::from_pair(good, faulty)
    }
}

fn and_opt(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or_opt(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

impl std::ops::Not for V5 {
    type Output = V5;

    /// Logical complement: `!D = D̄` (good and faulty values both
    /// invert), `!X = X`.
    fn not(self) -> V5 {
        match self {
            V5::Zero => V5::One,
            V5::One => V5::Zero,
            V5::X => V5::X,
            V5::D => V5::Dbar,
            V5::Dbar => V5::D,
        }
    }
}

fn xor_opt(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x ^ y),
        _ => None,
    }
}

/// Evaluate a gate over five-valued fanin values.
///
/// `Input` and `Dff` act as identity (the caller supplies their value);
/// constants ignore fanins.
#[must_use]
pub fn eval_gate(kind: GateKind, fanin: &[V5]) -> V5 {
    match kind {
        GateKind::Input => fanin.first().copied().unwrap_or(V5::X),
        GateKind::Const0 => V5::Zero,
        GateKind::Const1 => V5::One,
        GateKind::Buf | GateKind::Dff => fanin[0],
        GateKind::Not => !fanin[0],
        GateKind::And => fanin.iter().fold(V5::One, |acc, &v| acc.and(v)),
        GateKind::Nand => !fanin.iter().fold(V5::One, |acc, &v| acc.and(v)),
        GateKind::Or => fanin.iter().fold(V5::Zero, |acc, &v| acc.or(v)),
        GateKind::Nor => !fanin.iter().fold(V5::Zero, |acc, &v| acc.or(v)),
        GateKind::Xor => fanin.iter().fold(V5::Zero, |acc, &v| acc.xor(v)),
        GateKind::Xnor => !fanin.iter().fold(V5::Zero, |acc, &v| acc.xor(v)),
    }
}

impl std::fmt::Display for V5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            V5::Zero => "0",
            V5::One => "1",
            V5::X => "X",
            V5::D => "D",
            V5::Dbar => "D'",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V5; 5] = [V5::Zero, V5::One, V5::X, V5::D, V5::Dbar];

    #[test]
    fn pair_round_trip() {
        for v in ALL {
            assert_eq!(V5::from_pair(v.good(), v.faulty()), v);
        }
    }

    #[test]
    fn not_involution() {
        for v in ALL {
            assert_eq!(!!v, v);
        }
    }

    #[test]
    fn d_semantics() {
        assert_eq!(V5::D.good(), Some(true));
        assert_eq!(V5::D.faulty(), Some(false));
        assert_eq!(!V5::D, V5::Dbar);
        assert!(V5::D.is_fault_effect());
        assert!(!V5::One.is_fault_effect());
    }

    #[test]
    fn and_table_classics() {
        // Classic D-calculus identities.
        assert_eq!(V5::D.and(V5::One), V5::D);
        assert_eq!(V5::D.and(V5::Zero), V5::Zero);
        assert_eq!(V5::D.and(V5::D), V5::D);
        assert_eq!(V5::D.and(V5::Dbar), V5::Zero);
        assert_eq!(V5::D.and(V5::X), V5::X); // could be 0 or D
        assert_eq!(V5::X.and(V5::Zero), V5::Zero); // 0 dominates X
    }

    #[test]
    fn or_table_classics() {
        assert_eq!(V5::D.or(V5::Zero), V5::D);
        assert_eq!(V5::D.or(V5::One), V5::One);
        assert_eq!(V5::D.or(V5::Dbar), V5::One);
        assert_eq!(V5::X.or(V5::One), V5::One);
        assert_eq!(V5::D.or(V5::X), V5::X);
    }

    #[test]
    fn xor_classics() {
        assert_eq!(V5::D.xor(V5::D), V5::Zero);
        assert_eq!(V5::D.xor(V5::Dbar), V5::One);
        assert_eq!(V5::D.xor(V5::Zero), V5::D);
        assert_eq!(V5::D.xor(V5::One), V5::Dbar);
        assert_eq!(V5::D.xor(V5::X), V5::X);
    }

    #[test]
    fn and_or_commutative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                assert_eq!(a.xor(b), b.xor(a));
            }
        }
    }

    #[test]
    fn and_or_associative_up_to_x() {
        // The five-valued calculus is associative up to information
        // precision: grouping can only change a result by weakening it to
        // X (the classic calculus cannot represent "0 or D̄", so X stands
        // in). Two definite results must always agree.
        fn consistent(a: V5, b: V5) -> bool {
            a == b || a == V5::X || b == V5::X
        }
        for a in ALL {
            for b in ALL {
                for c in ALL {
                    assert!(consistent(a.and(b).and(c), a.and(b.and(c))), "{a} {b} {c}");
                    assert!(consistent(a.or(b).or(c), a.or(b.or(c))), "{a} {b} {c}");
                }
            }
        }
    }

    #[test]
    fn de_morgan() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!a.and(b), (!a).or(!b));
            }
        }
    }

    #[test]
    fn gate_eval_consistency_with_two_valued() {
        use modsoc_netlist::GateKind as GK;
        for kind in [GK::And, GK::Nand, GK::Or, GK::Nor, GK::Xor, GK::Xnor] {
            for a in [V5::Zero, V5::One] {
                for b in [V5::Zero, V5::One] {
                    let aw = if a == V5::One { u64::MAX } else { 0 };
                    let bw = if b == V5::One { u64::MAX } else { 0 };
                    let want = kind.eval64(&[aw, bw]) & 1 == 1;
                    let got = eval_gate(kind, &[a, b]);
                    assert_eq!(got.good(), Some(want), "{kind} {a}{b}");
                }
            }
        }
    }

    #[test]
    fn nand_propagates_d() {
        // NAND(D, 1) = D'.
        assert_eq!(eval_gate(GateKind::Nand, &[V5::D, V5::One]), V5::Dbar);
        // NAND(D, 0) = 1 (fault masked).
        assert_eq!(eval_gate(GateKind::Nand, &[V5::D, V5::Zero]), V5::One);
    }

    #[test]
    fn display_forms() {
        assert_eq!(V5::Dbar.to_string(), "D'");
        assert_eq!(V5::X.to_string(), "X");
    }
}
