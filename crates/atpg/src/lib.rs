//! Combinational stuck-at ATPG for full-scan circuits.
//!
//! This crate is the workspace's stand-in for the commercial/academic ATPG
//! tooling (ATALANTA in the paper) that the DATE 2008 experiments depend
//! on. It implements the classic structural test-generation stack from
//! scratch:
//!
//! * a five-valued **D-calculus** ([`value`]),
//! * a single-stuck-at **fault universe** with equivalence collapsing
//!   ([`fault`], [`collapse`]),
//! * SCOAP-style **testability measures** used as search guidance
//!   ([`testability`]),
//! * the **PODEM** test generation algorithm ([`podem`]),
//! * bit-parallel (64 patterns/pass) **fault simulation** with fault
//!   dropping ([`fault_sim`]),
//! * test **cubes/pattern sets** with don't-cares, merging and fill
//!   ([`pattern`]),
//! * static, dynamic and reverse-order **compaction** ([`compact`],
//!   [`engine`]),
//! * a top-level engine that sequences random-pattern bootstrap,
//!   deterministic PODEM and compaction ([`engine`]),
//! * cause-effect **fault diagnosis** from tester syndromes
//!   ([`diagnose`]),
//! * logic **BIST** — Galois LFSR/MISR, coverage ramps and a hybrid
//!   BIST + deterministic top-up flow ([`bist`]),
//! * EDT-style **test data compression** with a GF(2) cube solver
//!   ([`compress`]), and
//! * **transition-delay fault ATPG** under launch-on-capture and
//!   launch-on-shift ([`tdf`]).
//!
//! The engine's observable behaviour reproduces the phenomena the paper's
//! analysis rests on: per-cone pattern counts vary widely, compaction can
//! only merge non-conflicting cubes, and a flattened SOC needs more
//! patterns than its hardest core.
//!
//! # Example
//!
//! ```
//! use modsoc_netlist::bench_format::parse_bench;
//! use modsoc_atpg::{Atpg, AtpgOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = parse_bench("c17ish", "
//! INPUT(a)\nINPUT(b)\nINPUT(c)
//! OUTPUT(y)
//! n1 = NAND(a, b)
//! n2 = NAND(b, c)
//! y = NAND(n1, n2)
//! ")?;
//! let result = Atpg::new(AtpgOptions::default()).run(&c)?;
//! assert!(result.fault_coverage() > 0.99);
//! assert!(result.patterns.len() >= 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bist;
pub mod budget;
pub mod cache;
pub mod collapse;
pub mod compact;
pub mod compress;
pub mod diagnose;
pub mod engine;
pub mod error;
pub mod fault;
pub mod fault_sim;
pub mod pattern;
pub mod podem;
pub mod tdf;
pub mod testability;
pub mod value;

pub use budget::{BudgetExhausted, ExhaustReason, RunBudget};
pub use cache::{cache_key, options_fingerprint};
pub use engine::{Atpg, AtpgOptions, AtpgResult, AtpgStats};
pub use error::AtpgError;
pub use fault::{Fault, FaultSite, FaultStatus};
pub use pattern::{Bit, FillStrategy, TestCube, TestSet};
pub use value::V5;
