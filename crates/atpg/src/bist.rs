//! Logic BIST: LFSR pattern generation and MISR response compaction.
//!
//! The paper's reference architecture (Zorian et al., its ref 1) allows
//! each module's test source/sink to be *on-chip* — an LFSR feeding the
//! scan chains and a MISR compacting responses — instead of ATE-stored
//! patterns. BIST trades external test data volume (zero stimulus bits
//! from the tester) against pattern count and coverage; this module makes
//! that trade measurable with the same fault-simulation machinery the
//! deterministic flow uses.

use modsoc_netlist::Circuit;

use crate::error::AtpgError;
use crate::fault::Fault;
use crate::fault_sim::{block_active_mask, FaultSimulator, SimBlock, BLOCK_BITS};

/// A Fibonacci LFSR with a programmable feedback polynomial.
///
/// Bit 0 is the output bit; `taps` holds the exponents of the feedback
/// polynomial (e.g. `x^16 + x^14 + x^13 + x^11 + 1` is
/// `Lfsr::new(16, &[16, 14, 13, 11], seed)`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lfsr {
    width: u32,
    tap_mask: u64,
    state: u64,
}

impl Lfsr {
    /// A maximal-length default: the 32-bit polynomial
    /// `x^32 + x^22 + x^2 + x^1 + 1`.
    #[must_use]
    pub fn standard(seed: u64) -> Lfsr {
        Lfsr::new(32, &[32, 22, 2, 1], seed)
    }

    /// Build an LFSR with the given width (1..=64) and tap exponents.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64` or a tap exceeds the width.
    #[must_use]
    pub fn new(width: u32, taps: &[u32], seed: u64) -> Lfsr {
        assert!((1..=64).contains(&width), "lfsr width must be 1..=64");
        let mut tap_mask = 0u64;
        for &t in taps {
            assert!(t >= 1 && t <= width, "tap {t} outside 1..={width}");
            tap_mask |= 1 << (t - 1);
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        let mut state = seed & mask;
        if state == 0 {
            state = 1; // the all-zero state is the LFSR's fixed point
        }
        Lfsr {
            width,
            tap_mask,
            state,
        }
    }

    /// Advance one cycle (Galois form) and return the output bit.
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if out {
            self.state ^= self.tap_mask;
        }
        out
    }

    /// Produce the next `n`-bit test vector (one step per bit).
    pub fn next_pattern(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.step()).collect()
    }

    /// The current internal state.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// A multiple-input signature register: compacts per-pattern responses
/// into one signature word.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Misr {
    width: u32,
    tap_mask: u64,
    state: u64,
}

impl Misr {
    /// A 32-bit MISR with the same polynomial as [`Lfsr::standard`].
    #[must_use]
    pub fn standard() -> Misr {
        Misr::new(32, &[32, 22, 2, 1])
    }

    /// Build a MISR (same parameter rules as [`Lfsr::new`]).
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Lfsr::new`].
    #[must_use]
    pub fn new(width: u32, taps: &[u32]) -> Misr {
        let lfsr = Lfsr::new(width, taps, 0);
        Misr {
            width,
            tap_mask: lfsr.tap_mask,
            state: 0,
        }
    }

    /// Absorb one response slice (e.g. one pattern's primary outputs and
    /// scan-out bits): a Galois LFSR step per bit with the bit injected
    /// at the top of the register.
    pub fn absorb(&mut self, response: &[bool]) {
        for &bit in response {
            let out = self.state & 1 == 1;
            self.state >>= 1;
            if out {
                self.state ^= self.tap_mask;
            }
            if bit {
                self.state ^= 1 << (self.width - 1);
            }
        }
    }

    /// The accumulated signature.
    #[must_use]
    pub fn signature(&self) -> u64 {
        self.state
    }
}

/// Result of a BIST coverage evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BistOutcome {
    /// Patterns applied.
    pub patterns: usize,
    /// Fault coverage over the supplied fault list.
    pub coverage: f64,
    /// The good-circuit MISR signature (what the comparator would be
    /// programmed with).
    pub good_signature: u64,
    /// Coverage after each 64-pattern block (the coverage ramp used to
    /// pick a pattern budget).
    pub ramp: Vec<f64>,
}

/// Evaluate pseudo-random BIST on a combinational (test-model) circuit:
/// run `pattern_count` LFSR patterns, fault-simulate against `faults`,
/// and compute the good signature.
///
/// # Example
///
/// ```
/// use modsoc_atpg::bist::{evaluate_bist, Lfsr};
/// use modsoc_atpg::collapse::collapse_faults;
/// use modsoc_netlist::bench_format::parse_bench;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = parse_bench("x", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")?;
/// let faults = collapse_faults(&circuit).representatives().to_vec();
/// let outcome = evaluate_bist(&circuit, &faults, Lfsr::standard(1), 64)?;
/// assert!((outcome.coverage - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates fault-simulator errors.
pub fn evaluate_bist(
    circuit: &Circuit,
    faults: &[Fault],
    mut lfsr: Lfsr,
    pattern_count: usize,
) -> Result<BistOutcome, AtpgError> {
    let mut fsim = FaultSimulator::new(circuit)?;
    let width = circuit.input_count();
    let mut detected = vec![false; faults.len()];
    let mut misr = Misr::standard();
    let mut ramp = Vec::new();
    let mut applied = 0usize;
    if crate::fault_sim::narrow_forced() {
        while applied < pattern_count {
            let block: Vec<Vec<bool>> = (0..64.min(pattern_count - applied))
                .map(|_| lfsr.next_pattern(width))
                .collect();
            applied += block.len();
            let undetected: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
            let targets: Vec<Fault> = undetected.iter().map(|&i| faults[i]).collect();
            let masks = fsim.detection_masks(&block, &targets)?;
            for (k, m) in masks.into_iter().enumerate() {
                if m != 0 {
                    detected[undetected[k]] = true;
                }
            }
            // Good-machine signature over primary outputs, per pattern.
            let (good, _) = fsim.good_values(&block)?;
            for (slot, _) in block.iter().enumerate() {
                let response: Vec<bool> = circuit
                    .outputs()
                    .iter()
                    .map(|o| good[o.index()] & (1 << slot) != 0)
                    .collect();
                misr.absorb(&response);
            }
            ramp.push(detected.iter().filter(|&&d| d).count() as f64 / faults.len().max(1) as f64);
        }
        return Ok(BistOutcome {
            patterns: applied,
            coverage: detected.iter().filter(|&&d| d).count() as f64 / faults.len().max(1) as f64,
            good_signature: misr.signature(),
            ramp,
        });
    }
    while applied < pattern_count {
        let block: Vec<Vec<bool>> = (0..BLOCK_BITS.min(pattern_count - applied))
            .map(|_| lfsr.next_pattern(width))
            .collect();
        applied += block.len();
        let (good, n) = fsim.good_blocks(&block)?;
        let active = block_active_mask(n);
        // One 512-wide detection mask per still-undetected fault; marking
        // is then replayed one 64-bit word at a time so the per-64 ramp
        // matches the narrow path bit for bit (the ramp's granularity is
        // part of the report contract, not an implementation detail).
        let mut masks: Vec<(usize, SimBlock)> = Vec::new();
        for (i, &f) in faults.iter().enumerate() {
            if detected[i] {
                continue;
            }
            masks.push((i, fsim.block_detection_mask(&good, &active, f)));
        }
        for w in 0..n.div_ceil(64) {
            for &(i, m) in &masks {
                if m[w] != 0 {
                    detected[i] = true;
                }
            }
            ramp.push(detected.iter().filter(|&&d| d).count() as f64 / faults.len().max(1) as f64);
        }
        // Good-machine signature over primary outputs, per pattern.
        for slot in 0..n {
            let response: Vec<bool> = circuit
                .outputs()
                .iter()
                .map(|o| good[o.index()][slot / 64] & (1 << (slot % 64)) != 0)
                .collect();
            misr.absorb(&response);
        }
    }
    Ok(BistOutcome {
        patterns: applied,
        coverage: detected.iter().filter(|&&d| d).count() as f64 / faults.len().max(1) as f64,
        good_signature: misr.signature(),
        ramp,
    })
}

/// Outcome of a hybrid BIST + deterministic top-up flow.
#[derive(Debug, Clone)]
pub struct HybridOutcome {
    /// The BIST phase's result.
    pub bist: BistOutcome,
    /// Deterministic top-up patterns (external data) for the faults BIST
    /// missed.
    pub top_up: crate::pattern::TestSet,
    /// Combined fault coverage.
    pub coverage: f64,
    /// External stimulus bits of the top-up set (the only tester-stored
    /// stimulus in the hybrid flow).
    pub external_stimulus_bits: u64,
}

/// Run the hybrid flow on a combinational (test-model) circuit:
/// `bist_patterns` LFSR patterns first, then PODEM top-up for whatever
/// remains undetected.
///
/// This is the industrial compromise the paper's TDV analysis applies
/// to: the *external* data volume is only the top-up set, and its size
/// still scales with the per-core pattern counts that drive Equations
/// 1–8.
///
/// # Errors
///
/// Propagates fault-simulation and test-generation errors.
pub fn run_hybrid(
    circuit: &Circuit,
    lfsr: Lfsr,
    bist_patterns: usize,
    backtrack_limit: u32,
) -> Result<HybridOutcome, AtpgError> {
    run_hybrid_metered(
        circuit,
        lfsr,
        bist_patterns,
        backtrack_limit,
        &modsoc_metrics::NullSink,
    )
}

/// [`run_hybrid`] reporting into a
/// [`MetricsSink`](modsoc_metrics::MetricsSink): the whole flow is timed
/// as one `bist` phase, with the applied-BIST and top-up pattern counts
/// on the BIST counters. Results are identical to the unmetered entry
/// point.
///
/// # Errors
///
/// Propagates fault-simulation and test-generation errors.
pub fn run_hybrid_metered(
    circuit: &Circuit,
    lfsr: Lfsr,
    bist_patterns: usize,
    backtrack_limit: u32,
    sink: &dyn modsoc_metrics::MetricsSink,
) -> Result<HybridOutcome, AtpgError> {
    use crate::pattern::TestSet;
    use crate::podem::{Podem, PodemOutcome};
    use modsoc_metrics::{Counter, Phase, PhaseTimer};

    let timer = PhaseTimer::start(sink, Phase::Bist);

    let sindex = std::sync::Arc::new(modsoc_netlist::StructuralIndex::build(circuit)?);
    let reps = crate::collapse::collapse_faults_with(circuit, &sindex)
        .representatives()
        .to_vec();
    let width = circuit.input_count();
    let bist = evaluate_bist(circuit, &reps, lfsr.clone(), bist_patterns)?;

    // Per-fault BIST detection status (evaluate_bist reports aggregates;
    // it is deterministic, so replaying a clone of the caller's LFSR
    // reproduces the exact stream). This replay stays on the narrow
    // 64-pattern path: the early break below makes the applied-pattern
    // counter visible at 64-pattern granularity, and widening the block
    // would change the reported BistPatterns value.
    let mut fsim = FaultSimulator::with_index(circuit, std::sync::Arc::clone(&sindex))?;
    let mut detected = vec![false; reps.len()];
    let mut replay = lfsr;
    let mut applied = 0usize;
    while applied < bist_patterns {
        let block: Vec<Vec<bool>> = (0..64.min(bist_patterns - applied))
            .map(|_| replay.next_pattern(width))
            .collect();
        applied += block.len();
        let undetected: Vec<usize> = (0..reps.len()).filter(|&i| !detected[i]).collect();
        if undetected.is_empty() {
            break;
        }
        let targets: Vec<crate::fault::Fault> = undetected.iter().map(|&i| reps[i]).collect();
        for (k, m) in fsim
            .detection_masks(&block, &targets)?
            .into_iter()
            .enumerate()
        {
            if m != 0 {
                detected[undetected[k]] = true;
            }
        }
    }

    // Deterministic top-up for the leftovers, with fault dropping.
    let mut podem = Podem::with_index(circuit, sindex, backtrack_limit)?;
    let mut top_up = TestSet::new(width);
    for i in 0..reps.len() {
        if detected[i] {
            continue;
        }
        if let PodemOutcome::Test(cube) = podem.generate(reps[i])? {
            detected[i] = true;
            let filled = vec![cube.fill_keyed(crate::pattern::FillStrategy::default())];
            let undetected: Vec<usize> = (0..reps.len()).filter(|&j| !detected[j]).collect();
            let targets: Vec<crate::fault::Fault> = undetected.iter().map(|&j| reps[j]).collect();
            for (k, m) in fsim
                .detection_masks(&filled, &targets)?
                .into_iter()
                .enumerate()
            {
                if m != 0 {
                    detected[undetected[k]] = true;
                }
            }
            top_up.push(cube);
        }
    }

    let coverage = detected.iter().filter(|&&d| d).count() as f64 / reps.len().max(1) as f64;
    let external_stimulus_bits = top_up.stimulus_bits();
    drop(timer);
    sink.add(Counter::BistPatterns, applied as u64);
    sink.add(Counter::BistTopUpPatterns, top_up.len() as u64);
    Ok(HybridOutcome {
        bist,
        top_up,
        coverage,
        external_stimulus_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collapse::collapse_faults;
    use modsoc_netlist::bench_format::parse_bench;

    #[test]
    fn lfsr_is_maximal_enough() {
        // A 16-bit maximal polynomial must not repeat within 1000 steps.
        let mut l = Lfsr::new(16, &[16, 14, 13, 11], 0xACE1);
        let start = l.state();
        for step in 1..1000u32 {
            l.step();
            assert_ne!(l.state(), start, "period too short at {step}");
        }
    }

    #[test]
    fn lfsr_zero_seed_coerced() {
        let mut l = Lfsr::new(8, &[8, 6, 5, 4], 0);
        assert_ne!(l.state(), 0);
        l.step();
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn lfsr_deterministic() {
        let mut a = Lfsr::standard(42);
        let mut b = Lfsr::standard(42);
        assert_eq!(a.next_pattern(100), b.next_pattern(100));
    }

    #[test]
    fn misr_distinguishes_responses() {
        let mut good = Misr::standard();
        let mut bad = Misr::standard();
        for k in 0..50u32 {
            let resp: Vec<bool> = (0..8).map(|i| (k >> (i % 4)) & 1 == 1).collect();
            good.absorb(&resp);
            let mut flipped = resp.clone();
            if k == 25 {
                flipped[3] = !flipped[3]; // single-bit error once
            }
            bad.absorb(&flipped);
        }
        assert_ne!(good.signature(), bad.signature());
    }

    #[test]
    fn misr_same_stream_same_signature() {
        let mut a = Misr::standard();
        let mut b = Misr::standard();
        for k in 0..20u32 {
            let resp: Vec<bool> = (0..5).map(|i| (k >> i) & 1 == 1).collect();
            a.absorb(&resp);
            b.absorb(&resp);
        }
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn bist_coverage_ramps_on_c17() {
        let c = parse_bench(
            "c17",
            "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
",
        )
        .unwrap();
        let faults = collapse_faults(&c).representatives().to_vec();
        let outcome = evaluate_bist(&c, &faults, Lfsr::standard(7), 256).unwrap();
        assert_eq!(outcome.patterns, 256);
        assert!(
            (outcome.coverage - 1.0).abs() < 1e-12,
            "c17 is random-testable: {}",
            outcome.coverage
        );
        // Ramp is monotone nondecreasing.
        for pair in outcome.ramp.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }

    #[test]
    fn bist_signature_reproducible() {
        let c = parse_bench("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let faults = collapse_faults(&c).representatives().to_vec();
        let a = evaluate_bist(&c, &faults, Lfsr::standard(1), 128).unwrap();
        let b = evaluate_bist(&c, &faults, Lfsr::standard(1), 128).unwrap();
        assert_eq!(a.good_signature, b.good_signature);
        let other_seed = evaluate_bist(&c, &faults, Lfsr::standard(2), 128).unwrap();
        assert_ne!(a.good_signature, other_seed.good_signature);
    }

    #[test]
    fn hybrid_reaches_full_coverage_with_less_external_data() {
        // A random-resistant-ish circuit: the hybrid flow should reach
        // the deterministic flow's coverage with fewer external bits.
        let src = "
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)
OUTPUT(y)\nOUTPUT(z)
t1 = AND(a, b, c)
t2 = AND(d, e, f)
t3 = AND(t1, t2)
t4 = NOR(a, d)
y = OR(t3, t4)
z = XOR(t1, t2)
";
        let c = parse_bench("rr", src).unwrap();
        let full_det = crate::engine::Atpg::new(crate::engine::AtpgOptions::deterministic_only())
            .run(&c)
            .unwrap();
        let hybrid = run_hybrid(&c, Lfsr::standard(3), 128, 200).unwrap();
        assert!(
            (hybrid.coverage - full_det.fault_coverage()).abs() < 1e-9,
            "hybrid {} vs det {}",
            hybrid.coverage,
            full_det.fault_coverage()
        );
        let det_bits = full_det.pattern_count() as u64 * c.input_count() as u64;
        assert!(
            hybrid.external_stimulus_bits <= det_bits,
            "hybrid external {} vs det {det_bits}",
            hybrid.external_stimulus_bits
        );
    }

    #[test]
    fn hybrid_with_zero_bist_equals_pure_deterministic_coverage() {
        let c = parse_bench(
            "c17",
            "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
",
        )
        .unwrap();
        let hybrid = run_hybrid(&c, Lfsr::standard(1), 0, 200).unwrap();
        assert!((hybrid.coverage - 1.0).abs() < 1e-12);
        assert!(!hybrid.top_up.is_empty());
        assert_eq!(hybrid.bist.patterns, 0);
    }

    #[test]
    #[should_panic(expected = "lfsr width")]
    fn bad_width_panics() {
        let _ = Lfsr::new(0, &[], 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_tap_panics() {
        let _ = Lfsr::new(8, &[9], 1);
    }
}
