//! Structural fault-equivalence collapsing.
//!
//! Two faults are *equivalent* when every test for one detects the other;
//! targeting one representative per equivalence class shrinks the ATPG's
//! work list without losing coverage. The classic structural rules are:
//!
//! * `BUF`: input s-a-v ≡ output s-a-v; `NOT`: input s-a-v ≡ output s-a-v̄.
//! * `AND`: any input s-a-0 ≡ output s-a-0 (`NAND`: ≡ output s-a-1).
//! * `OR`: any input s-a-1 ≡ output s-a-1 (`NOR`: ≡ output s-a-0).
//! * A single-fanout stem is equivalent to the pin it drives (handled at
//!   enumeration time by [`crate::fault::enumerate_faults`], which only
//!   creates pin faults on true fanout branches).
//!
//! XOR-family gates admit no structural collapsing.

use std::collections::HashMap;

use modsoc_metrics::{Counter, MetricsSink, NullSink, Phase, PhaseTimer};
use modsoc_netlist::{Circuit, GateKind, StructuralIndex};

use crate::fault::{enumerate_faults_with, Fault, FaultSite};

/// The result of collapsing: representative faults plus the class map.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    representatives: Vec<Fault>,
    class_of: HashMap<Fault, usize>,
}

impl CollapsedFaults {
    /// The representative fault of each equivalence class.
    #[must_use]
    pub fn representatives(&self) -> &[Fault] {
        &self.representatives
    }

    /// Number of equivalence classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.representatives.len()
    }

    /// The class index of a fault from the original universe, if known.
    #[must_use]
    pub fn class_of(&self, fault: Fault) -> Option<usize> {
        self.class_of.get(&fault).copied()
    }

    /// Total faults in the original universe.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.class_of.len()
    }

    /// Collapse ratio `universe / classes` (≥ 1).
    #[must_use]
    pub fn collapse_ratio(&self) -> f64 {
        if self.representatives.is_empty() {
            return 1.0;
        }
        self.class_of.len() as f64 / self.representatives.len() as f64
    }
}

/// Enumerate and collapse the stuck-at fault universe of a circuit.
///
/// Uses union-find over the structural equivalence rules above. The
/// representative of each class is its smallest fault in the natural
/// ordering, which puts representatives as close to primary inputs as the
/// rules allow (checkpoint-like behaviour).
#[must_use]
pub fn collapse_faults(circuit: &Circuit) -> CollapsedFaults {
    let index = StructuralIndex::build(circuit)
        .expect("fault collapsing requires an indexable (acyclic) circuit");
    collapse_faults_with(circuit, &index)
}

/// [`collapse_faults`] against a prebuilt [`StructuralIndex`]; the engine
/// threads its per-run index through here so the fanout adjacency is
/// computed exactly once per circuit.
#[must_use]
pub fn collapse_faults_with(circuit: &Circuit, sidx: &StructuralIndex) -> CollapsedFaults {
    collapse_faults_metered(circuit, sidx, &NullSink)
}

/// [`collapse_faults_with`] reporting into a [`MetricsSink`]: enumeration
/// and collapsing are timed as separate phases, and the universe/class
/// sizes land on the [`Counter::FaultsUniverse`] /
/// [`Counter::FaultsCollapsed`] counters.
#[must_use]
pub fn collapse_faults_metered(
    circuit: &Circuit,
    sidx: &StructuralIndex,
    sink: &dyn MetricsSink,
) -> CollapsedFaults {
    let universe = {
        let _t = PhaseTimer::start(sink, Phase::FaultEnumerate);
        enumerate_faults_with(circuit, sidx)
    };
    let _t = PhaseTimer::start(sink, Phase::FaultCollapse);
    let index: HashMap<Fault, usize> = universe.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let mut uf = UnionFind::new(universe.len());

    // The fault on the line feeding pin `pin` of `gate`: a true branch has
    // its own pin fault; a single-fanout line aliases the driver's stem.
    let line_fault = |gate: modsoc_netlist::NodeId, pin: usize, sa1: bool| -> Fault {
        let driver = circuit.node(gate).fanin[pin];
        if sidx.branch_count(driver) > 1 {
            Fault::pin(gate, pin, sa1)
        } else {
            Fault {
                site: FaultSite::Stem(driver),
                stuck_at_one: sa1,
            }
        }
    };

    for (id, node) in circuit.iter() {
        let out_sa = |sa1: bool| Fault {
            site: FaultSite::Stem(id),
            stuck_at_one: sa1,
        };
        match node.kind {
            GateKind::Buf | GateKind::Dff => {
                for sa1 in [false, true] {
                    join(&mut uf, &index, line_fault(id, 0, sa1), out_sa(sa1));
                }
            }
            GateKind::Not => {
                for sa1 in [false, true] {
                    join(&mut uf, &index, line_fault(id, 0, sa1), out_sa(!sa1));
                }
            }
            GateKind::And | GateKind::Nand => {
                let out = out_sa(node.kind == GateKind::Nand);
                for pin in 0..node.fanin.len() {
                    join(&mut uf, &index, line_fault(id, pin, false), out);
                }
            }
            GateKind::Or | GateKind::Nor => {
                let out = out_sa(node.kind == GateKind::Nor);
                for pin in 0..node.fanin.len() {
                    join(&mut uf, &index, line_fault(id, pin, true), out);
                }
            }
            _ => {}
        }
    }

    // Pick the smallest member of each class as representative.
    let mut best: HashMap<usize, Fault> = HashMap::new();
    for (i, &f) in universe.iter().enumerate() {
        let root = uf.find(i);
        best.entry(root)
            .and_modify(|b| {
                if f < *b {
                    *b = f;
                }
            })
            .or_insert(f);
    }
    let mut class_of = HashMap::with_capacity(universe.len());
    let mut class_index: HashMap<usize, usize> = HashMap::new();
    let mut representatives: Vec<Fault> = Vec::with_capacity(best.len());
    // Deterministic order: sort representatives.
    let mut roots: Vec<(Fault, usize)> = best.iter().map(|(&r, &f)| (f, r)).collect();
    roots.sort_unstable();
    for (f, r) in roots {
        class_index.insert(r, representatives.len());
        representatives.push(f);
    }
    for (i, &f) in universe.iter().enumerate() {
        let root = uf.find(i);
        class_of.insert(f, class_index[&root]);
    }
    sink.add(Counter::FaultsUniverse, class_of.len() as u64);
    sink.add(Counter::FaultsCollapsed, representatives.len() as u64);
    CollapsedFaults {
        representatives,
        class_of,
    }
}

fn join(uf: &mut UnionFind, index: &HashMap<Fault, usize>, a: Fault, b: Fault) {
    if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
        uf.union(ia, ib);
    }
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_netlist::Circuit;

    #[test]
    fn inverter_chain_collapses_to_two_classes() {
        // a -> NOT -> NOT -> out: all 6 stem faults collapse to 2 classes.
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let n1 = c.add_gate("n1", GateKind::Not, &[a]).unwrap();
        let n2 = c.add_gate("n2", GateKind::Not, &[n1]).unwrap();
        c.mark_output(n2);
        let col = collapse_faults(&c);
        assert_eq!(col.universe_size(), 6);
        assert_eq!(col.class_count(), 2);
        // a s-a-0 ≡ n1 s-a-1 ≡ n2 s-a-0.
        let ca = col.class_of(Fault::stem_sa0(a)).unwrap();
        let cn1 = col.class_of(Fault::stem_sa1(n1)).unwrap();
        let cn2 = col.class_of(Fault::stem_sa0(n2)).unwrap();
        assert_eq!(ca, cn1);
        assert_eq!(ca, cn2);
    }

    #[test]
    fn and_gate_collapse() {
        // 2-input AND, no fanout: universe = 3 stems * 2 = 6.
        // a sa0 ≡ b sa0 ≡ g sa0 -> classes: {a0,b0,g0}, {a1}, {b1}, {g1} = 4.
        let mut c = Circuit::new("and");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::And, &[a, b]).unwrap();
        c.mark_output(g);
        let col = collapse_faults(&c);
        assert_eq!(col.universe_size(), 6);
        assert_eq!(col.class_count(), 4);
        assert_eq!(
            col.class_of(Fault::stem_sa0(a)),
            col.class_of(Fault::stem_sa0(g))
        );
        assert_ne!(
            col.class_of(Fault::stem_sa1(a)),
            col.class_of(Fault::stem_sa1(g))
        );
    }

    #[test]
    fn nand_collapse_inverts_output_polarity() {
        let mut c = Circuit::new("nand");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::Nand, &[a, b]).unwrap();
        c.mark_output(g);
        let col = collapse_faults(&c);
        assert_eq!(
            col.class_of(Fault::stem_sa0(a)),
            col.class_of(Fault::stem_sa1(g))
        );
    }

    #[test]
    fn fanout_branches_not_collapsed_across_stem() {
        // a fans out to g1 (AND with b) and g2 (OR with b): the branch
        // faults a->g1 sa0 and a->g2 sa0 are NOT equivalent.
        let mut c = Circuit::new("fan");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Or, &[a, b]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let col = collapse_faults(&c);
        let f1 = col.class_of(Fault::pin(g1, 0, false)).unwrap();
        let f2 = col.class_of(Fault::pin(g2, 0, false)).unwrap();
        assert_ne!(f1, f2);
        // But a->g1 sa0 ≡ g1 sa0 (AND rule).
        assert_eq!(Some(f1), col.class_of(Fault::stem_sa0(g1)));
    }

    #[test]
    fn xor_does_not_collapse() {
        let mut c = Circuit::new("xor");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::Xor, &[a, b]).unwrap();
        c.mark_output(g);
        let col = collapse_faults(&c);
        assert_eq!(col.class_count(), col.universe_size());
    }

    #[test]
    fn collapse_ratio_at_least_one() {
        let mut c = Circuit::new("r");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        c.mark_output(n);
        let col = collapse_faults(&c);
        assert!(col.collapse_ratio() >= 1.0);
    }
}
