//! Test cubes, pattern sets, compatibility merging and don't-care fill.
//!
//! A *test cube* assigns 0/1/X to every circuit input; it is the ATPG's
//! native output (only the bits a fault needs are specified). Two cubes
//! are *compatible* when no input is assigned conflicting values — exactly
//! the paper's §3 notion of non-conflicting partial test patterns — and
//! compatible cubes can be merged into one pattern by compaction.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One bit of a test cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Bit {
    /// Specified 0.
    Zero,
    /// Specified 1.
    One,
    /// Don't care.
    #[default]
    X,
}

impl Bit {
    /// Whether the bit is specified (not X).
    #[must_use]
    pub fn is_specified(self) -> bool {
        self != Bit::X
    }

    /// Two bits are compatible if equal or either is X.
    #[must_use]
    pub fn compatible(self, other: Bit) -> bool {
        self == Bit::X || other == Bit::X || self == other
    }

    /// Merge two compatible bits (specified value wins over X).
    ///
    /// # Panics
    ///
    /// Panics if the bits conflict; check [`Bit::compatible`] first.
    #[must_use]
    pub fn merge(self, other: Bit) -> Bit {
        assert!(self.compatible(other), "merging conflicting bits");
        if self == Bit::X {
            other
        } else {
            self
        }
    }

    /// Convert a boolean to a specified bit.
    #[must_use]
    pub fn from_bool(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Bit::Zero => "0",
            Bit::One => "1",
            Bit::X => "X",
        })
    }
}

/// How to fill don't-care bits when a fully-specified pattern is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FillStrategy {
    /// Fill X with 0 (minimum-transition style).
    Zeros,
    /// Fill X with 1.
    Ones,
    /// Fill X with seeded pseudo-random values (maximises incidental
    /// detection; the ATPG engine's default).
    Random {
        /// RNG seed; the same seed always produces the same fill.
        seed: u64,
    },
}

impl Default for FillStrategy {
    fn default() -> FillStrategy {
        FillStrategy::Random { seed: 0xD1CE }
    }
}

/// A test cube: one 0/1/X assignment per circuit input.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TestCube {
    bits: Vec<Bit>,
}

impl TestCube {
    /// An all-X cube of the given width.
    #[must_use]
    pub fn all_x(width: usize) -> TestCube {
        TestCube {
            bits: vec![Bit::X; width],
        }
    }

    /// Build a cube from bits.
    #[must_use]
    pub fn from_bits(bits: Vec<Bit>) -> TestCube {
        TestCube { bits }
    }

    /// Build a fully-specified cube from booleans.
    #[must_use]
    pub fn from_bools(values: &[bool]) -> TestCube {
        TestCube {
            bits: values.iter().map(|&b| Bit::from_bool(b)).collect(),
        }
    }

    /// Number of inputs this cube spans.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bits.
    #[must_use]
    pub fn bits(&self) -> &[Bit] {
        &self.bits
    }

    /// Read one bit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bit(&self, i: usize) -> Bit {
        self.bits[i]
    }

    /// Set one bit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, b: Bit) {
        self.bits[i] = b;
    }

    /// Number of specified (non-X) bits — the cube's *care count*.
    #[must_use]
    pub fn specified_count(&self) -> usize {
        self.bits.iter().filter(|b| b.is_specified()).count()
    }

    /// Whether every bit position is compatible with `other`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn compatible(&self, other: &TestCube) -> bool {
        assert_eq!(self.width(), other.width(), "cube width mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .all(|(a, b)| a.compatible(*b))
    }

    /// Merge a compatible cube into this one.
    ///
    /// # Panics
    ///
    /// Panics if the cubes conflict or widths differ.
    pub fn merge_in_place(&mut self, other: &TestCube) {
        assert_eq!(self.width(), other.width(), "cube width mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a = a.merge(*b);
        }
    }

    /// Merged copy of two compatible cubes.
    ///
    /// # Panics
    ///
    /// Panics if the cubes conflict or widths differ.
    #[must_use]
    pub fn merged(&self, other: &TestCube) -> TestCube {
        let mut out = self.clone();
        out.merge_in_place(other);
        out
    }

    /// A content hash of the cube (FNV-1a over the trits), used to key
    /// random fill so that equal cubes always fill identically
    /// regardless of their position in a [`TestSet`].
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &self.bits {
            let v = match b {
                Bit::Zero => 1u64,
                Bit::One => 2,
                Bit::X => 3,
            };
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Fill with the strategy, keying random fill by the cube's content
    /// (see [`TestCube::content_hash`]); deterministic fills pass
    /// through unchanged.
    #[must_use]
    pub fn fill_keyed(&self, strategy: FillStrategy) -> Vec<bool> {
        match strategy {
            FillStrategy::Random { seed } => self.fill(FillStrategy::Random {
                seed: seed ^ self.content_hash(),
            }),
            other => self.fill(other),
        }
    }

    /// Produce a fully-specified boolean pattern by filling X bits.
    #[must_use]
    pub fn fill(&self, strategy: FillStrategy) -> Vec<bool> {
        let mut rng = match strategy {
            FillStrategy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        self.bits
            .iter()
            .map(|b| match b {
                Bit::Zero => false,
                Bit::One => true,
                Bit::X => match strategy {
                    FillStrategy::Zeros => false,
                    FillStrategy::Ones => true,
                    FillStrategy::Random { .. } => {
                        rng.as_mut().expect("rng present for random fill").gen()
                    }
                },
            })
            .collect()
    }
}

impl fmt::Display for TestCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bits {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<Bit> for TestCube {
    fn from_iter<I: IntoIterator<Item = Bit>>(iter: I) -> TestCube {
        TestCube {
            bits: iter.into_iter().collect(),
        }
    }
}

/// An ordered set of test cubes of equal width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TestSet {
    width: usize,
    cubes: Vec<TestCube>,
}

impl TestSet {
    /// An empty set for cubes of the given width.
    #[must_use]
    pub fn new(width: usize) -> TestSet {
        TestSet {
            width,
            cubes: Vec::new(),
        }
    }

    /// The input width each cube spans.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Append a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube width differs from the set width.
    pub fn push(&mut self, cube: TestCube) {
        assert_eq!(cube.width(), self.width, "cube width mismatch");
        self.cubes.push(cube);
    }

    /// The cubes in order.
    #[must_use]
    pub fn cubes(&self) -> &[TestCube] {
        &self.cubes
    }

    /// Iterate over cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, TestCube> {
        self.cubes.iter()
    }

    /// Remove and return the cube at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove(&mut self, index: usize) -> TestCube {
        self.cubes.remove(index)
    }

    /// Keep only the cubes at the given (sorted, deduplicated) indices.
    pub fn retain_indices(&mut self, keep: &[usize]) {
        let mut flag = vec![false; self.cubes.len()];
        for &k in keep {
            if k < flag.len() {
                flag[k] = true;
            }
        }
        let mut i = 0;
        self.cubes.retain(|_| {
            let k = flag[i];
            i += 1;
            k
        });
    }

    /// Total stimulus bits if every pattern is applied to all inputs
    /// (`patterns × width`) — the monolithic-view stimulus volume of §3.
    #[must_use]
    pub fn stimulus_bits(&self) -> u64 {
        self.cubes.len() as u64 * self.width as u64
    }

    /// Total *specified* stimulus bits (care bits only).
    #[must_use]
    pub fn care_bits(&self) -> u64 {
        self.cubes.iter().map(|c| c.specified_count() as u64).sum()
    }

    /// Fill every cube into fully-specified boolean patterns.
    ///
    /// Random fill derives each cube's stream from the cube's *content*
    /// (see [`TestCube::fill_keyed`]), so the filled vector of a given
    /// cube is stable under reordering or subsetting of the set — the
    /// property that keeps fault-coverage accounting consistent across
    /// compaction passes.
    #[must_use]
    pub fn fill_all(&self, strategy: FillStrategy) -> Vec<Vec<bool>> {
        self.cubes.iter().map(|c| c.fill_keyed(strategy)).collect()
    }
}

impl TestSet {
    /// Serialize as plain text: one cube per line, `0`/`1`/`X` per
    /// input. The inverse of [`TestSet::from_text`].
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.len() * (self.width + 1));
        for cube in &self.cubes {
            use std::fmt::Write as _;
            let _ = writeln!(out, "{cube}");
        }
        out
    }

    /// Parse the text form produced by [`TestSet::to_text`]: one cube
    /// per line of `0`/`1`/`X` (case-insensitive, `#` comments and blank
    /// lines ignored).
    ///
    /// # Errors
    ///
    /// Returns [`crate::AtpgError::PatternWidth`] if lines disagree in
    /// width, wrapped parse info for bad characters.
    pub fn from_text(text: &str) -> Result<TestSet, crate::error::AtpgError> {
        let mut set: Option<TestSet> = None;
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bits: Result<Vec<Bit>, ()> = line
                .chars()
                .map(|c| match c {
                    '0' => Ok(Bit::Zero),
                    '1' => Ok(Bit::One),
                    'x' | 'X' => Ok(Bit::X),
                    _ => Err(()),
                })
                .collect();
            let bits = bits.map_err(|()| crate::error::AtpgError::PatternWidth {
                expected: set.as_ref().map_or(0, TestSet::width),
                got: line.len(),
            })?;
            match &mut set {
                None => {
                    let mut s = TestSet::new(bits.len());
                    s.push(TestCube::from_bits(bits));
                    set = Some(s);
                }
                Some(s) => {
                    if bits.len() != s.width() {
                        return Err(crate::error::AtpgError::PatternWidth {
                            expected: s.width(),
                            got: bits.len(),
                        });
                    }
                    s.push(TestCube::from_bits(bits));
                }
            }
        }
        Ok(set.unwrap_or_default())
    }
}

impl<'a> IntoIterator for &'a TestSet {
    type Item = &'a TestCube;
    type IntoIter = std::slice::Iter<'a, TestCube>;
    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

impl Extend<TestCube> for TestSet {
    fn extend<I: IntoIterator<Item = TestCube>>(&mut self, iter: I) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_compatibility() {
        assert!(Bit::X.compatible(Bit::One));
        assert!(Bit::Zero.compatible(Bit::Zero));
        assert!(!Bit::Zero.compatible(Bit::One));
        assert_eq!(Bit::X.merge(Bit::One), Bit::One);
        assert_eq!(Bit::Zero.merge(Bit::X), Bit::Zero);
    }

    #[test]
    #[should_panic(expected = "conflicting")]
    fn conflicting_merge_panics() {
        let _ = Bit::Zero.merge(Bit::One);
    }

    #[test]
    fn cube_merge() {
        let a = TestCube::from_bits(vec![Bit::One, Bit::X, Bit::Zero, Bit::X]);
        let b = TestCube::from_bits(vec![Bit::X, Bit::Zero, Bit::Zero, Bit::X]);
        assert!(a.compatible(&b));
        let m = a.merged(&b);
        assert_eq!(m.bits(), &[Bit::One, Bit::Zero, Bit::Zero, Bit::X]);
        assert_eq!(m.specified_count(), 3);
    }

    #[test]
    fn cube_conflict_detected() {
        let a = TestCube::from_bits(vec![Bit::One]);
        let b = TestCube::from_bits(vec![Bit::Zero]);
        assert!(!a.compatible(&b));
    }

    #[test]
    fn fill_strategies() {
        let c = TestCube::from_bits(vec![Bit::One, Bit::X, Bit::Zero]);
        assert_eq!(c.fill(FillStrategy::Zeros), vec![true, false, false]);
        assert_eq!(c.fill(FillStrategy::Ones), vec![true, true, false]);
        let r1 = c.fill(FillStrategy::Random { seed: 7 });
        let r2 = c.fill(FillStrategy::Random { seed: 7 });
        assert_eq!(r1, r2, "same seed, same fill");
        assert!(r1[0]);
        assert!(!r1[2]);
    }

    #[test]
    fn set_accounting() {
        let mut s = TestSet::new(3);
        s.push(TestCube::from_bits(vec![Bit::One, Bit::X, Bit::X]));
        s.push(TestCube::from_bits(vec![Bit::X, Bit::Zero, Bit::One]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.stimulus_bits(), 6);
        assert_eq!(s.care_bits(), 3);
    }

    #[test]
    fn fill_all_is_content_keyed() {
        // Equal cubes fill identically (stable under reordering)...
        let mut s = TestSet::new(16);
        s.push(TestCube::all_x(16));
        s.push(TestCube::all_x(16));
        let filled = s.fill_all(FillStrategy::Random { seed: 3 });
        assert_eq!(filled[0], filled[1], "same content, same fill");
        // ...while different cubes get independent streams.
        let mut t = TestSet::new(16);
        let mut c1 = TestCube::all_x(16);
        c1.set(0, Bit::One);
        let mut c2 = TestCube::all_x(16);
        c2.set(0, Bit::Zero);
        t.push(c1);
        t.push(c2);
        let filled = t.fill_all(FillStrategy::Random { seed: 3 });
        assert_ne!(
            filled[0][1..],
            filled[1][1..],
            "different content, different fill"
        );
    }

    #[test]
    fn fill_stable_under_reordering() {
        let a = TestCube::from_bits(vec![Bit::One, Bit::X, Bit::X, Bit::X]);
        let b = TestCube::from_bits(vec![Bit::X, Bit::Zero, Bit::X, Bit::X]);
        let mut s1 = TestSet::new(4);
        s1.push(a.clone());
        s1.push(b.clone());
        let mut s2 = TestSet::new(4);
        s2.push(b.clone());
        s2.push(a.clone());
        let f1 = s1.fill_all(FillStrategy::default());
        let f2 = s2.fill_all(FillStrategy::default());
        assert_eq!(f1[0], f2[1]);
        assert_eq!(f1[1], f2[0]);
    }

    #[test]
    fn retain_indices_keeps_order() {
        let mut s = TestSet::new(1);
        for b in [Bit::Zero, Bit::One, Bit::X] {
            s.push(TestCube::from_bits(vec![b]));
        }
        s.retain_indices(&[0, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.cubes()[0].bit(0), Bit::Zero);
        assert_eq!(s.cubes()[1].bit(0), Bit::X);
    }

    #[test]
    fn from_iterator() {
        let c: TestCube = [Bit::One, Bit::Zero].into_iter().collect();
        assert_eq!(c.width(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut s = TestSet::new(2);
        s.push(TestCube::all_x(3));
    }

    #[test]
    fn text_round_trip() {
        let mut s = TestSet::new(4);
        s.push(TestCube::from_bits(vec![
            Bit::One,
            Bit::X,
            Bit::Zero,
            Bit::X,
        ]));
        s.push(TestCube::from_bits(vec![
            Bit::Zero,
            Bit::Zero,
            Bit::One,
            Bit::One,
        ]));
        let text = s.to_text();
        assert_eq!(text, "1X0X\n0011\n");
        let back = TestSet::from_text(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn text_parse_tolerates_comments_and_case() {
        let s = TestSet::from_text("# header\n\n1x0X  # trailing\n").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.width(), 4);
        assert_eq!(s.cubes()[0].bit(1), Bit::X);
    }

    #[test]
    fn text_parse_rejects_ragged_and_bad_chars() {
        assert!(TestSet::from_text("101\n10\n").is_err());
        assert!(TestSet::from_text("10Z\n").is_err());
        assert!(TestSet::from_text("").unwrap().is_empty());
    }
}
