//! Content-addressed caching of complete ATPG runs.
//!
//! The experiment pipeline re-solves the same cores constantly: every
//! `modsoc experiment soc2` regenerates the same four circuits from the
//! same seeds and runs the same engine configuration over them. This
//! module gives [`Atpg`] a store-backed entry point,
//! [`Atpg::run_budgeted_stored`], that keys each `(circuit, options)`
//! pair by a SHA-256 content address and fetches the finished result
//! instead of recomputing it.
//!
//! **Key derivation.** [`cache_key`] hashes a context tag
//! ([`CACHE_CONTEXT`]), the circuit's canonical byte serialization
//! ([`modsoc_netlist::canonical_bytes`] — stable under gate-line
//! reordering and renames that preserve name order), and
//! [`options_fingerprint`] — every [`AtpgOptions`] field that influences
//! the generated patterns. `jobs` is deliberately excluded: the engine's
//! results are identical at any thread count, so a result computed at
//! `--jobs 4` is served to a `--jobs 1` run and vice versa.
//!
//! **What is cached.** Only *complete* results (no tripped budget):
//! a partial result is an artifact of one run's time limit, not a
//! property of the circuit. The entry stores the patterns (text form),
//! the run stats, and the run's own metrics (counters + phase call
//! counts, captured through a [`TeeSink`]); on a hit those metrics are
//! *replayed* into the caller's sink so a warm metered report matches a
//! cold one everywhere outside the wall-time fields.
//!
//! **What a hit does not restore.** Per-fault statuses are not stored
//! (they scale with circuit size and nothing downstream of the
//! experiment pipeline reads them); a cache-served result has an empty
//! `fault_statuses` list, while `stats`/`fault_coverage()` are exact.
//! Callers needing per-fault data should run uncached.

use std::sync::Arc;

use modsoc_metrics::json::JsonValue;
use modsoc_metrics::{Counter, MetricsSink, Phase, RecordingSink, TeeSink};
use modsoc_netlist::{canonical_bytes, Circuit};
use modsoc_store::sha256::Sha256;
use modsoc_store::{ResultStore, StoreKey};

use crate::budget::RunBudget;
use crate::engine::{Atpg, AtpgOptions, AtpgResult, AtpgStats};
use crate::error::AtpgError;
use crate::pattern::{FillStrategy, TestSet};

/// Context tag hashed into every cache key. Bump when the entry layout
/// or replay semantics change: old entries then key-miss instead of
/// being misdecoded.
pub const CACHE_CONTEXT: &str = "modsoc-atpg-cache-v1";

/// Stable fingerprint of the options fields that influence generated
/// patterns. `jobs` is excluded — thread count never changes results
/// (the pool merge is order-preserving), so it must not split the cache.
#[must_use]
pub fn options_fingerprint(options: &AtpgOptions) -> String {
    let fill = match options.fill {
        FillStrategy::Zeros => "zeros".to_string(),
        FillStrategy::Ones => "ones".to_string(),
        FillStrategy::Random { seed } => format!("random:{seed}"),
    };
    format!(
        "bt={};rb={};seed={};fill={};merge={};dyn={};rev={}",
        options.backtrack_limit,
        options.random_batches,
        options.seed,
        fill,
        u8::from(options.merge_cubes),
        u8::from(options.dynamic_compaction),
        u8::from(options.reverse_compaction),
    )
}

/// Content address of an ATPG run: context tag ‖ canonical circuit
/// bytes ‖ options fingerprint, all SHA-256'd.
///
/// # Errors
///
/// Propagates canonicalization failures (combinational cycles).
pub fn cache_key(circuit: &Circuit, options: &AtpgOptions) -> Result<StoreKey, AtpgError> {
    let mut h = Sha256::new();
    h.update(CACHE_CONTEXT.as_bytes());
    h.update(&canonical_bytes(circuit)?);
    h.update(options_fingerprint(options).as_bytes());
    Ok(StoreKey(h.finalize()))
}

const STAT_FIELDS: [&str; 10] = [
    "universe_faults",
    "collapsed_faults",
    "detected",
    "redundant",
    "aborted",
    "random_patterns",
    "deterministic_cubes",
    "repair_patterns",
    "patterns_before_reverse",
    "final_patterns",
];

fn stat_values(stats: &AtpgStats) -> [usize; 10] {
    [
        stats.universe_faults,
        stats.collapsed_faults,
        stats.detected,
        stats.redundant,
        stats.aborted,
        stats.random_patterns,
        stats.deterministic_cubes,
        stats.repair_patterns,
        stats.patterns_before_reverse,
        stats.final_patterns,
    ]
}

/// Serialize a complete result plus its captured run metrics into a
/// store payload.
fn encode_entry(result: &AtpgResult, metrics: &modsoc_metrics::MetricsSnapshot) -> JsonValue {
    let stats = JsonValue::Object(
        STAT_FIELDS
            .iter()
            .zip(stat_values(&result.stats))
            .map(|(name, v)| ((*name).to_string(), JsonValue::Number(v as f64)))
            .collect(),
    );
    // Counters and phase call counts are stored sparsely by name, so
    // entries survive append-only growth of the enums in either
    // direction (unknown names are ignored on replay).
    let counters = JsonValue::Object(
        Counter::ALL
            .iter()
            .filter(|c| metrics.counter(**c) > 0)
            .map(|c| {
                (
                    c.name().to_string(),
                    JsonValue::Number(metrics.counter(*c) as f64),
                )
            })
            .collect(),
    );
    let phase_calls = JsonValue::Object(
        Phase::ALL
            .iter()
            .filter(|p| metrics.phase_calls(**p) > 0)
            .map(|p| {
                (
                    p.name().to_string(),
                    JsonValue::Number(metrics.phase_calls(*p) as f64),
                )
            })
            .collect(),
    );
    JsonValue::Object(vec![
        (
            "width".to_string(),
            JsonValue::Number(result.patterns.width() as f64),
        ),
        (
            "patterns".to_string(),
            JsonValue::String(result.patterns.to_text()),
        ),
        ("stats".to_string(), stats),
        ("counters".to_string(), counters),
        ("phase_calls".to_string(), phase_calls),
    ])
}

fn decode_stats(payload: &JsonValue) -> Option<AtpgStats> {
    let stats = payload.get("stats")?;
    let mut values = [0usize; 10];
    for (slot, name) in values.iter_mut().zip(STAT_FIELDS) {
        *slot = usize::try_from(stats.get(name)?.as_u64()?).ok()?;
    }
    let [universe_faults, collapsed_faults, detected, redundant, aborted, random_patterns, deterministic_cubes, repair_patterns, patterns_before_reverse, final_patterns] =
        values;
    Some(AtpgStats {
        universe_faults,
        collapsed_faults,
        detected,
        redundant,
        aborted,
        random_patterns,
        deterministic_cubes,
        repair_patterns,
        patterns_before_reverse,
        final_patterns,
    })
}

/// Rebuild an [`AtpgResult`] for `circuit` from a store payload.
/// Returns a reason string on any shape mismatch; the caller evicts.
fn decode_entry(
    payload: &JsonValue,
    circuit: &Circuit,
    options: &AtpgOptions,
) -> Result<AtpgResult, String> {
    let width = payload
        .get("width")
        .and_then(JsonValue::as_u64)
        .ok_or("missing width")? as usize;
    let model = if circuit.is_combinational() {
        None
    } else {
        Some(circuit.to_test_model().map_err(|e| e.to_string())?)
    };
    let expected_width = model
        .as_ref()
        .map_or(circuit.input_count(), |m| m.circuit.input_count());
    if width != expected_width {
        return Err(format!(
            "width mismatch: entry {width}, circuit {expected_width}"
        ));
    }
    let text = payload
        .get("patterns")
        .and_then(JsonValue::as_str)
        .ok_or("missing patterns")?;
    let patterns = if text.lines().all(|l| l.trim().is_empty()) {
        TestSet::new(width)
    } else {
        let set = TestSet::from_text(text).map_err(|e| e.to_string())?;
        if set.width() != width {
            return Err(format!(
                "pattern width mismatch: entry says {width}, text has {}",
                set.width()
            ));
        }
        set
    };
    let stats = decode_stats(payload).ok_or("malformed stats")?;
    Ok(AtpgResult {
        patterns,
        fault_statuses: Vec::new(),
        stats,
        fill: options.fill,
        test_model: model,
        exhausted: None,
    })
}

/// Replay the entry's captured run metrics into `sink`: counters are
/// re-added, phase passes re-counted with zero wall time (wall times are
/// outside the determinism contract — a hit costs no solver time and
/// must not pretend otherwise). Names that no longer exist are skipped.
fn replay_metrics(payload: &JsonValue, sink: &dyn MetricsSink) {
    if !sink.enabled() {
        return;
    }
    if let Some(JsonValue::Object(fields)) = payload.get("counters") {
        for (name, value) in fields {
            if let (Some(counter), Some(v)) = (
                Counter::ALL.iter().find(|c| c.name() == name),
                value.as_u64(),
            ) {
                sink.add(*counter, v);
            }
        }
    }
    if let Some(JsonValue::Object(fields)) = payload.get("phase_calls") {
        for (name, value) in fields {
            if let (Some(phase), Some(calls)) =
                (Phase::ALL.iter().find(|p| p.name() == name), value.as_u64())
            {
                for _ in 0..calls {
                    sink.time(*phase, 0);
                }
            }
        }
    }
}

impl Atpg {
    /// Run ATPG through a [`ResultStore`]: fetch the finished result for
    /// this `(circuit, options)` content address when present, otherwise
    /// compute it with [`Atpg::run_budgeted`] and store it for next
    /// time.
    ///
    /// * `read = false` (`--no-store-read`) skips the lookup but still
    ///   writes the computed result — a "repopulate this key" escape
    ///   hatch for a suspect entry.
    /// * Only complete results are written; a budget-tripped partial is
    ///   returned to the caller but never cached.
    /// * A hit replays the original run's counters and phase passes into
    ///   this engine's sink, so metered reports agree with a cold run on
    ///   every deterministic field.
    /// * Store write failures are logged and swallowed — the computed
    ///   result is still returned.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors, exactly as
    /// [`Atpg::run_budgeted`] does.
    pub fn run_budgeted_stored(
        &self,
        circuit: &Circuit,
        budget: &RunBudget,
        store: &ResultStore,
        read: bool,
    ) -> Result<AtpgResult, AtpgError> {
        let key = cache_key(circuit, self.options())?;
        let sink = self.sink_arc();
        if read {
            if let Some(payload) = store.get(&key, &*sink) {
                match decode_entry(&payload, circuit, self.options()) {
                    Ok(result) => {
                        replay_metrics(&payload, &*sink);
                        return Ok(result);
                    }
                    Err(why) => store.evict(&key, &why, &*sink),
                }
            }
        }
        // Miss (or read disabled): compute, capturing the run's own
        // metrics through a tee so the entry can replay them later.
        let capture = Arc::new(RecordingSink::new());
        let tee: Arc<dyn MetricsSink> = Arc::new(TeeSink::new(vec![
            Arc::clone(&capture) as Arc<dyn MetricsSink>,
            Arc::clone(&sink),
        ]));
        let engine = Atpg::with_sink(self.options().clone(), tee);
        let result = engine.run_budgeted(circuit, budget)?;
        if result.is_complete() {
            let payload = encode_entry(&result, &capture.snapshot());
            if let Err(e) = store.put(&key, &payload, &*sink) {
                eprintln!("store: cache write failed for {key}: {e}");
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_metrics::NullSink;
    use modsoc_netlist::bench_format::parse_bench;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> (PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!(
            "modsoc_atpg_cache_test_{}_{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    fn c17ish() -> Circuit {
        parse_bench(
            "c17ish",
            "
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)
OUTPUT(y1)\nOUTPUT(y2)
n1 = NAND(a, b)
n2 = NAND(c, d)
n3 = NAND(b, n2)
y1 = NAND(n1, n3)
y2 = NAND(n3, e)
",
        )
        .unwrap()
    }

    fn seq_circuit() -> Circuit {
        parse_bench(
            "seq",
            "
INPUT(a)\nINPUT(b)
OUTPUT(q)
f1 = DFF(g1)
f2 = DFF(g2)
g1 = AND(a, f2)
g2 = OR(b, f1)
q = XOR(g1, g2)
",
        )
        .unwrap()
    }

    #[test]
    fn key_is_stable_and_jobs_invariant() {
        let c = c17ish();
        let mut options = AtpgOptions::default();
        let k1 = cache_key(&c, &options).unwrap();
        options.jobs = 8;
        let k2 = cache_key(&c, &options).unwrap();
        assert_eq!(k1, k2, "jobs must not split the cache");
        options.seed ^= 1;
        let k3 = cache_key(&c, &options).unwrap();
        assert_ne!(k1, k3, "seed is part of the identity");
    }

    #[test]
    fn fingerprint_covers_every_result_affecting_field() {
        let base = AtpgOptions::default();
        let fp = options_fingerprint(&base);
        let variants = [
            AtpgOptions {
                backtrack_limit: base.backtrack_limit + 1,
                ..base.clone()
            },
            AtpgOptions {
                random_batches: base.random_batches + 1,
                ..base.clone()
            },
            AtpgOptions {
                seed: base.seed ^ 1,
                ..base.clone()
            },
            AtpgOptions {
                fill: FillStrategy::Zeros,
                ..base.clone()
            },
            AtpgOptions {
                merge_cubes: !base.merge_cubes,
                ..base.clone()
            },
            AtpgOptions {
                dynamic_compaction: !base.dynamic_compaction,
                ..base.clone()
            },
            AtpgOptions {
                reverse_compaction: !base.reverse_compaction,
                ..base.clone()
            },
        ];
        for v in variants {
            assert_ne!(options_fingerprint(&v), fp, "{v:?}");
        }
        // ...and jobs is the one field that must NOT move it.
        let jobs = AtpgOptions { jobs: 7, ..base };
        assert_eq!(options_fingerprint(&jobs), fp);
    }

    #[test]
    fn hit_matches_cold_run() {
        let (dir, store) = temp_store("hit");
        let c = c17ish();
        let engine = Atpg::default();
        let budget = RunBudget::unlimited();
        let cold = engine
            .run_budgeted_stored(&c, &budget, &store, true)
            .unwrap();
        assert_eq!((store.hits(), store.misses(), store.writes()), (0, 1, 1));
        let warm = engine
            .run_budgeted_stored(&c, &budget, &store, true)
            .unwrap();
        assert_eq!(store.hits(), 1);
        assert_eq!(warm.patterns.to_text(), cold.patterns.to_text());
        assert_eq!(warm.stats, cold.stats);
        assert_eq!(warm.fault_coverage(), cold.fault_coverage());
        assert!(warm.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequential_hit_restores_the_test_model() {
        let (dir, store) = temp_store("seq");
        let c = seq_circuit();
        let engine = Atpg::default();
        let budget = RunBudget::unlimited();
        let cold = engine
            .run_budgeted_stored(&c, &budget, &store, true)
            .unwrap();
        let warm = engine
            .run_budgeted_stored(&c, &budget, &store, true)
            .unwrap();
        assert_eq!(store.hits(), 1);
        assert_eq!(warm.patterns.to_text(), cold.patterns.to_text());
        assert!(warm.test_model.is_some(), "scan model is reconstructed");
        assert_eq!(
            warm.patterns.width(),
            c.input_count() + c.dff_count(),
            "pattern bits cover inputs + scan cells"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_read_recomputes_but_still_writes() {
        let (dir, store) = temp_store("noread");
        let c = c17ish();
        let engine = Atpg::default();
        let budget = RunBudget::unlimited();
        engine
            .run_budgeted_stored(&c, &budget, &store, true)
            .unwrap();
        engine
            .run_budgeted_stored(&c, &budget, &store, false)
            .unwrap();
        assert_eq!(store.hits(), 0, "read disabled: no hit recorded");
        assert_eq!(store.writes(), 2, "recomputed entry is rewritten");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_results_are_not_cached() {
        let (dir, store) = temp_store("partial");
        let c = c17ish();
        let engine = Atpg::default();
        let budget = RunBudget::unlimited().with_max_patterns(0);
        let result = engine
            .run_budgeted_stored(&c, &budget, &store, true)
            .unwrap();
        assert!(!result.is_complete());
        assert_eq!(store.writes(), 0, "partial result must not be cached");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_recomputed() {
        let (dir, store) = temp_store("corrupt");
        let c = c17ish();
        let engine = Atpg::default();
        let budget = RunBudget::unlimited();
        let cold = engine
            .run_budgeted_stored(&c, &budget, &store, true)
            .unwrap();
        // Flip bytes in the entry on disk.
        let key = cache_key(&c, engine.options()).unwrap();
        let path = dir.join("objects").join(format!("{}.json", key.hex()));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("patterns", "patterms")).unwrap();
        let again = engine
            .run_budgeted_stored(&c, &budget, &store, true)
            .unwrap();
        assert_eq!(store.evictions(), 1);
        assert_eq!(again.patterns.to_text(), cold.patterns.to_text());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hit_replays_counters_and_phases() {
        let (dir, store) = temp_store("replay");
        let c = c17ish();
        let budget = RunBudget::unlimited();
        let cold_sink = Arc::new(RecordingSink::new());
        Atpg::with_sink(
            AtpgOptions::default(),
            Arc::clone(&cold_sink) as Arc<dyn MetricsSink>,
        )
        .run_budgeted_stored(&c, &budget, &store, true)
        .unwrap();
        let warm_sink = Arc::new(RecordingSink::new());
        Atpg::with_sink(
            AtpgOptions::default(),
            Arc::clone(&warm_sink) as Arc<dyn MetricsSink>,
        )
        .run_budgeted_stored(&c, &budget, &store, true)
        .unwrap();
        let cold = cold_sink.snapshot();
        let warm = warm_sink.snapshot();
        // Engine counters and phase passes agree; only the store's own
        // traffic counters (hit vs miss+write) differ by design.
        for c in Counter::ALL {
            if c.name().starts_with("store_") {
                continue;
            }
            assert_eq!(warm.counter(c), cold.counter(c), "{}", c.name());
        }
        assert_eq!(warm.phase_calls, cold.phase_calls);
        assert_eq!(warm.counter(Counter::StoreHits), 1);
        assert_eq!(cold.counter(Counter::StoreMisses), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_shaped_entry_is_evicted_and_recomputed() {
        let (dir, store) = temp_store("stale");
        let c = c17ish();
        let engine = Atpg::default();
        let key = cache_key(&c, engine.options()).unwrap();
        // A checksum-valid entry whose payload is not a result.
        let bogus = modsoc_metrics::json::parse(r#"{"surprise":true}"#).unwrap();
        store.put(&key, &bogus, &NullSink).unwrap();
        let result = engine
            .run_budgeted_stored(&c, &RunBudget::unlimited(), &store, true)
            .unwrap();
        assert!(result.is_complete());
        assert!(result.stats.collapsed_faults > 0);
        assert_eq!(store.evictions(), 1, "undecodable entry evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
