//! The PODEM (Path-Oriented DEcision Making) test generation algorithm.
//!
//! PODEM searches the space of primary-input assignments directly: it
//! repeatedly picks an *objective* (activate the fault, then advance the
//! D-frontier), *backtraces* the objective to an unassigned input using
//! SCOAP guidance, assigns it, and implies the consequences in
//! five-valued logic. Conflicts flip the most recent untried decision;
//! exhausting the decision tree proves the fault redundant (untestable).
//!
//! # Incremental, cone-restricted implication
//!
//! Circuit values under PODEM are a pure function of the (assignment,
//! fault) pair, so this implementation never resimulates the whole
//! circuit. It keeps a persistent five-valued value array seeded from a
//! fault-free all-X baseline and updates it *event-driven*: each input
//! decision propagates only through the nodes it actually changes (a
//! topologically-ordered event queue, exactly like the bit-parallel fault
//! simulator), and every decision records its changes on an undo trail so
//! backtracking restores the parent state in O(changes) instead of
//! re-implying from scratch. The D-frontier is maintained incrementally
//! from the same change events and restricted to the fault's fanout cone
//! (the only region fault effects can reach, borrowed from the shared
//! [`StructuralIndex`]), as is the X-path feasibility check. Decisions,
//! outcomes, and generated cubes are bit-identical to a full
//! resimulation — the test suite checks this differentially against the
//! reference oracle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use modsoc_netlist::{Circuit, GateKind, NodeId, StructuralIndex};

use crate::budget::RunBudget;
use crate::error::AtpgError;
use crate::fault::{Fault, FaultSite};
use crate::pattern::{Bit, TestCube};
use crate::testability::Testability;
use crate::value::{eval_gate, V5};

/// Cumulative search-effort counters for one [`Podem`] instance,
/// accumulated across every `generate*` call since construction.
///
/// These are functions of the decision sequence, which is deterministic,
/// so they feed the metrics layer's jobs-invariance contract: an engine
/// run reports the same totals at any `--jobs` level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PodemSearchStats {
    /// `generate*` invocations that reached the decision loop.
    pub calls: u64,
    /// Searches that produced a test cube.
    pub tests: u64,
    /// Searches that proved the fault redundant.
    pub redundant: u64,
    /// Searches aborted at a backtrack/budget limit.
    pub aborted: u64,
    /// Fresh input decisions pushed on the decision stack.
    pub decisions: u64,
    /// Backtracks (decision flips after a conflict).
    pub backtracks: u64,
}

/// Outcome of a single-fault PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube that detects the fault.
    Test(TestCube),
    /// The fault is untestable: no input assignment detects it.
    Redundant,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

/// PODEM test generator bound to one combinational circuit.
///
/// Holds the search's persistent incremental state (value array, undo
/// trail, D-frontier buffer, cone scratch), so generation takes `&mut
/// self`; create once per circuit and reuse across faults.
#[derive(Debug)]
pub struct Podem<'a> {
    circuit: &'a Circuit,
    index: Arc<StructuralIndex>,
    testability: Testability,
    backtrack_limit: u32,
    /// Input position of each node id, if it is an input.
    input_pos: Vec<Option<usize>>,
    /// Fault-free implication of the empty assignment (constants
    /// propagated, everything else X). `values` equals this between
    /// searches.
    baseline: Vec<V5>,
    /// Current five-valued state; diverges from `baseline` only inside a
    /// search and only on the undo trail.
    values: Vec<V5>,
    /// Undo trail: `(node index, previous value)` per change.
    trail: Vec<(u32, V5)>,
    /// Trail length at the start of each open frame (fault injection is
    /// frame 0; one frame per decision).
    frames: Vec<usize>,
    /// Reusable D-frontier buffer (may hold stale entries until the next
    /// lazy compaction; `in_frontier` is authoritative).
    frontier: Vec<NodeId>,
    in_frontier: Vec<bool>,
    in_frontier_buf: Vec<bool>,
    /// Fanout cone of the current fault's affected gate, topo-sorted.
    cone: Vec<NodeId>,
    /// Cone members that drive at least one primary output pin.
    cone_outputs: Vec<NodeId>,
    cone_stamp: Vec<u32>,
    cone_epoch: u32,
    /// Epoch-stamped "reaches an X-valued PO through X nodes" scratch.
    xreach_stamp: Vec<u32>,
    xreach_epoch: u32,
    /// Topologically-ordered event queue scratch.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Nodes changed by the most recent propagation or undo.
    touched: Vec<NodeId>,
    /// Cumulative search-effort counters (see [`PodemSearchStats`]).
    stats: PodemSearchStats,
}

impl<'a> Podem<'a> {
    /// Build a generator for `circuit` with the given backtrack limit
    /// (deriving a private [`StructuralIndex`]).
    ///
    /// # Errors
    ///
    /// Fails on sequential or invalid circuits.
    pub fn new(circuit: &'a Circuit, backtrack_limit: u32) -> Result<Podem<'a>, AtpgError> {
        let index = Arc::new(StructuralIndex::build(circuit)?);
        Podem::with_index(circuit, index, backtrack_limit)
    }

    /// Build a generator borrowing a prebuilt shared index — the engine
    /// threads one [`StructuralIndex`] through collapsing, fault
    /// simulation, and both PODEM phases.
    ///
    /// # Errors
    ///
    /// Fails on sequential or invalid circuits.
    ///
    /// # Panics
    ///
    /// Panics if `index` was built for a different circuit (node counts
    /// disagree).
    pub fn with_index(
        circuit: &'a Circuit,
        index: Arc<StructuralIndex>,
        backtrack_limit: u32,
    ) -> Result<Podem<'a>, AtpgError> {
        assert_eq!(
            index.node_count(),
            circuit.node_count(),
            "structural index does not match circuit"
        );
        let testability = Testability::compute(circuit)?;
        let n = circuit.node_count();
        let mut input_pos = vec![None; n];
        for (k, &pi) in circuit.inputs().iter().enumerate() {
            input_pos[pi.index()] = Some(k);
        }
        // Fault-free baseline of the empty assignment: all-X except where
        // constants force a value.
        let mut baseline = vec![V5::X; n];
        let mut fanin_buf: Vec<V5> = Vec::with_capacity(8);
        for &id in index.topo() {
            let node = circuit.node(id);
            if node.kind == GateKind::Input {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(node.fanin.iter().map(|f| baseline[f.index()]));
            baseline[id.index()] = eval_gate(node.kind, &fanin_buf);
        }
        Ok(Podem {
            circuit,
            index,
            testability,
            backtrack_limit,
            input_pos,
            values: baseline.clone(),
            baseline,
            trail: Vec::new(),
            frames: Vec::new(),
            frontier: Vec::new(),
            in_frontier: vec![false; n],
            in_frontier_buf: vec![false; n],
            cone: Vec::new(),
            cone_outputs: Vec::new(),
            cone_stamp: vec![0; n],
            cone_epoch: 0,
            xreach_stamp: vec![0; n],
            xreach_epoch: 0,
            heap: BinaryHeap::new(),
            touched: Vec::new(),
            stats: PodemSearchStats::default(),
        })
    }

    /// Cumulative search-effort counters since construction.
    #[must_use]
    pub fn search_stats(&self) -> PodemSearchStats {
        self.stats
    }

    /// Generate a test for one stuck-at fault.
    ///
    /// Returns [`PodemOutcome::Test`] with a cube over the circuit's
    /// inputs (bit `i` = `circuit.inputs()[i]`), [`PodemOutcome::Redundant`]
    /// if the decision tree is exhausted, or [`PodemOutcome::Aborted`] at
    /// the backtrack limit.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::ForeignFault`] if the fault references a node
    /// outside this circuit.
    pub fn generate(&mut self, fault: Fault) -> Result<PodemOutcome, AtpgError> {
        self.generate_with_constraints(fault, &[])
    }

    /// Generate a test for one stuck-at fault under an optional
    /// [`RunBudget`]: each backtrack is charged against the budget's
    /// global pool, and a tripped deadline/cancellation/backtrack limit
    /// aborts the search ([`PodemOutcome::Aborted`]) so a single hard
    /// fault cannot hold a bounded run hostage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Podem::generate`].
    pub fn generate_budgeted(
        &mut self,
        fault: Fault,
        budget: Option<&RunBudget>,
    ) -> Result<PodemOutcome, AtpgError> {
        self.generate_with_constraints_budgeted(fault, &[], budget)
    }

    /// Generate a test for a stuck-at fault under side constraints: every
    /// `(node, value)` pair must hold in the good circuit of the final
    /// test. Used by the transition-fault flow (frame-1 initialization
    /// values) and usable for any justification-style requirement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Podem::generate`], plus
    /// [`AtpgError::ForeignFault`] for out-of-range constraint nodes.
    pub fn generate_with_constraints(
        &mut self,
        fault: Fault,
        constraints: &[(NodeId, bool)],
    ) -> Result<PodemOutcome, AtpgError> {
        self.generate_with_constraints_budgeted(fault, constraints, None)
    }

    /// [`Podem::generate_with_constraints`] under an optional
    /// [`RunBudget`] (see [`Podem::generate_budgeted`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Podem::generate_with_constraints`].
    pub fn generate_with_constraints_budgeted(
        &mut self,
        fault: Fault,
        constraints: &[(NodeId, bool)],
        budget: Option<&RunBudget>,
    ) -> Result<PodemOutcome, AtpgError> {
        for (node, _) in constraints {
            if node.index() >= self.circuit.node_count() {
                return Err(AtpgError::ForeignFault {
                    fault: format!("constraint node {node}"),
                });
            }
        }
        let affected = fault.site.affected_gate();
        if affected.index() >= self.circuit.node_count() {
            return Err(AtpgError::ForeignFault {
                fault: fault.to_string(),
            });
        }
        if let FaultSite::Pin { gate, pin } = fault.site {
            if pin >= self.circuit.node(gate).fanin.len() {
                return Err(AtpgError::ForeignFault {
                    fault: fault.to_string(),
                });
            }
        }
        self.begin_fault(fault);
        let out = self.run_search(fault, constraints, budget);
        self.unwind_all();
        self.stats.calls += 1;
        match &out {
            Ok(PodemOutcome::Test(_)) => self.stats.tests += 1,
            Ok(PodemOutcome::Redundant) => self.stats.redundant += 1,
            Ok(PodemOutcome::Aborted) => self.stats.aborted += 1,
            Err(_) => {}
        }
        out
    }

    /// Decision loop. Assumes [`Podem::begin_fault`] has set up the cone,
    /// injected the fault (frame 0), and refreshed the frontier; the
    /// caller unwinds all frames afterwards regardless of outcome.
    fn run_search(
        &mut self,
        fault: Fault,
        constraints: &[(NodeId, bool)],
        budget: Option<&RunBudget>,
    ) -> Result<PodemOutcome, AtpgError> {
        let width = self.circuit.input_count();
        let mut assignment: Vec<Option<bool>> = vec![None; width];
        // Decision stack: (input position, value, tried_both).
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks = 0u32;

        loop {
            // Side constraints: a contradicted constraint prunes the
            // branch; an undetermined one becomes the next objective.
            let mut constraint_objective = None;
            let mut constraint_conflict = false;
            for &(node, want) in constraints {
                match self.values[node.index()].good() {
                    Some(v) if v != want => {
                        constraint_conflict = true;
                        break;
                    }
                    None if constraint_objective.is_none() => {
                        constraint_objective = Some((node, want));
                    }
                    _ => {}
                }
            }

            if !constraint_conflict && constraint_objective.is_none() && self.detected() {
                let bits = assignment
                    .iter()
                    .map(|a| a.map_or(Bit::X, Bit::from_bool))
                    .collect::<TestCube>();
                return Ok(PodemOutcome::Test(bits));
            }

            let objective = if constraint_conflict {
                None
            } else if let Some(obj) = constraint_objective {
                Some(obj)
            } else {
                match self.next_objective(fault) {
                    Objective::Assign(node, value) => Some((node, value)),
                    Objective::Conflict => None,
                }
            };
            let decision =
                objective.and_then(|(node, value)| self.backtrace(node, value, &assignment));

            match decision {
                Some((pi, v)) => {
                    self.stats.decisions += 1;
                    assignment[pi] = Some(v);
                    stack.push((pi, v, false));
                    self.assign_input(fault, pi, v);
                }
                None => {
                    // Backtrack.
                    loop {
                        match stack.pop() {
                            Some((pi, v, tried_both)) => {
                                self.undo_frame(fault);
                                assignment[pi] = None;
                                if !tried_both {
                                    backtracks += 1;
                                    self.stats.backtracks += 1;
                                    if backtracks > self.backtrack_limit {
                                        return Ok(PodemOutcome::Aborted);
                                    }
                                    // Budget: every backtrack drains the
                                    // run-wide pool; deadline/cancellation
                                    // also end the search here.
                                    if let Some(b) = budget {
                                        if b.charge_backtrack().is_some() {
                                            return Ok(PodemOutcome::Aborted);
                                        }
                                    }
                                    assignment[pi] = Some(!v);
                                    stack.push((pi, !v, true));
                                    self.assign_input(fault, pi, !v);
                                    break;
                                }
                            }
                            None => return Ok(PodemOutcome::Redundant),
                        }
                    }
                }
            }
        }
    }

    /// Prepare the search for `fault`: reset the frontier left by the
    /// previous search, collect the fanout cone of the affected gate, and
    /// inject the fault as undo frame 0.
    fn begin_fault(&mut self, fault: Fault) {
        debug_assert!(self.trail.is_empty() && self.frames.is_empty());
        let mut stale = std::mem::take(&mut self.frontier);
        for g in stale.drain(..) {
            self.in_frontier[g.index()] = false;
            self.in_frontier_buf[g.index()] = false;
        }
        self.frontier = stale;

        // Cone membership via epoch stamps (no O(n) clear per fault).
        self.cone_epoch = self.cone_epoch.wrapping_add(1);
        if self.cone_epoch == 0 {
            self.cone_stamp.fill(u32::MAX);
            self.cone_epoch = 1;
        }
        let affected = fault.site.affected_gate();
        let index = Arc::clone(&self.index);
        self.cone.clear();
        self.cone.push(affected);
        self.cone_stamp[affected.index()] = self.cone_epoch;
        let mut head = 0;
        while head < self.cone.len() {
            let id = self.cone[head];
            head += 1;
            for &fo in index.fanouts(id) {
                if self.cone_stamp[fo.index()] != self.cone_epoch {
                    self.cone_stamp[fo.index()] = self.cone_epoch;
                    self.cone.push(fo);
                }
            }
        }
        self.cone.sort_unstable_by_key(|&id| index.topo_pos(id));
        self.cone_outputs.clear();
        self.cone_outputs.extend(
            self.cone
                .iter()
                .copied()
                .filter(|&id| index.output_marks(id) > 0),
        );

        // Frame 0: fault injection as a delta from the fault-free
        // baseline. A stem fault on an unassigned input injects into X
        // and stays X, so only gate sites seed an event.
        self.frames.push(self.trail.len());
        self.touched.clear();
        if self.circuit.node(affected).kind != GateKind::Input {
            self.heap
                .push(Reverse((index.topo_pos(affected), affected.index() as u32)));
            self.propagate(fault);
        }
        self.refresh_frontier(fault);
        // A pin fault can create an effect without changing any value
        // (constant-driven pin, gate output still X), which produces no
        // change event; derive the affected gate's membership explicitly.
        self.update_frontier_membership(fault, affected);
    }

    /// Open a new undo frame, set input position `pos` to `v`, and imply
    /// the consequences event-driven.
    fn assign_input(&mut self, fault: Fault, pos: usize, v: bool) {
        self.frames.push(self.trail.len());
        self.touched.clear();
        let pi = self.circuit.inputs()[pos];
        let mut v5 = if v { V5::One } else { V5::Zero };
        if fault.site == FaultSite::Stem(pi) {
            v5 = inject_stuck(v5, fault.stuck_at_one);
        }
        if v5 != self.values[pi.index()] {
            self.set_value(pi, v5);
            let index = Arc::clone(&self.index);
            for &fo in index.fanouts(pi) {
                self.heap
                    .push(Reverse((index.topo_pos(fo), fo.index() as u32)));
            }
            self.propagate(fault);
        }
        self.refresh_frontier(fault);
    }

    /// Drain the event queue in topological order, recomputing each
    /// popped node under fault injection and rippling changes forward.
    /// Within one propagation every node settles in a single evaluation
    /// (its fanins are final when it pops), so the trail stays compact.
    fn propagate(&mut self, fault: Fault) {
        let index = Arc::clone(&self.index);
        while let Some(Reverse((_, raw))) = self.heap.pop() {
            let id = NodeId::from_index(raw as usize);
            let v = self.eval_with_fault(fault, id);
            if v == self.values[id.index()] {
                continue;
            }
            self.set_value(id, v);
            for &fo in index.fanouts(id) {
                self.heap
                    .push(Reverse((index.topo_pos(fo), fo.index() as u32)));
            }
        }
    }

    fn set_value(&mut self, id: NodeId, v: V5) {
        let i = id.index();
        self.trail.push((i as u32, self.values[i]));
        self.values[i] = v;
        self.touched.push(id);
    }

    /// Five-valued evaluation of one gate with fault injection — the
    /// per-node kernel full resimulation would run over every node.
    fn eval_with_fault(&self, fault: Fault, id: NodeId) -> V5 {
        let node = self.circuit.node(id);
        debug_assert!(node.kind != GateKind::Input, "inputs never re-evaluate");
        let mut buf = [V5::X; 16];
        let mut vec_buf;
        let fanin: &mut [V5] = if node.fanin.len() <= 16 {
            &mut buf[..node.fanin.len()]
        } else {
            vec_buf = vec![V5::X; node.fanin.len()];
            &mut vec_buf
        };
        for (pin, f) in node.fanin.iter().enumerate() {
            let mut v = self.values[f.index()];
            if fault.site == (FaultSite::Pin { gate: id, pin }) {
                v = inject_stuck(v, fault.stuck_at_one);
            }
            fanin[pin] = v;
        }
        let mut v = eval_gate(node.kind, fanin);
        if fault.site == FaultSite::Stem(id) {
            v = inject_stuck(v, fault.stuck_at_one);
        }
        v
    }

    /// Pop the most recent undo frame, restoring every value it changed,
    /// and re-derive frontier membership around the restored nodes.
    fn undo_frame(&mut self, fault: Fault) {
        let start = self.frames.pop().expect("an open undo frame");
        self.touched.clear();
        while self.trail.len() > start {
            let (raw, old) = self.trail.pop().expect("trail entry");
            self.values[raw as usize] = old;
            self.touched.push(NodeId::from_index(raw as usize));
        }
        self.refresh_frontier(fault);
    }

    /// Restore the baseline state after a search: unwind every frame
    /// (frontier flags are reset lazily by the next [`Podem::begin_fault`]).
    fn unwind_all(&mut self) {
        while let Some((raw, old)) = self.trail.pop() {
            self.values[raw as usize] = old;
        }
        self.frames.clear();
        debug_assert!(self.values == self.baseline);
    }

    /// Re-derive D-frontier membership for every node whose value (or
    /// whose fanin's value) just changed, restricted to the fault cone.
    /// Membership only ever changes at such candidates, so the maintained
    /// set always equals what a whole-circuit scan would find.
    fn refresh_frontier(&mut self, fault: Fault) {
        let index = Arc::clone(&self.index);
        let touched = std::mem::take(&mut self.touched);
        for &n in &touched {
            if self.cone_stamp[n.index()] == self.cone_epoch {
                self.update_frontier_membership(fault, n);
            }
            for &g in index.fanouts(n) {
                if self.cone_stamp[g.index()] == self.cone_epoch {
                    self.update_frontier_membership(fault, g);
                }
            }
        }
        self.touched = touched;
    }

    fn update_frontier_membership(&mut self, fault: Fault, g: NodeId) {
        let gi = g.index();
        let member = self.values[gi] == V5::X && {
            let node = self.circuit.node(g);
            node.fanin.iter().enumerate().any(|(pin, f)| {
                let mut v = self.values[f.index()];
                if fault.site == (FaultSite::Pin { gate: g, pin }) {
                    v = inject_stuck(v, fault.stuck_at_one);
                }
                v.is_fault_effect()
            })
        };
        if member {
            if !self.in_frontier[gi] {
                self.in_frontier[gi] = true;
                if !self.in_frontier_buf[gi] {
                    self.in_frontier_buf[gi] = true;
                    self.frontier.push(g);
                }
            }
        } else {
            self.in_frontier[gi] = false;
        }
    }

    /// Compact the frontier buffer (dropping stale entries) and return
    /// the member closest to an output: minimum `(CO, node id)` — the
    /// same gate an id-ordered whole-circuit scan would select.
    fn frontier_best(&mut self) -> Option<NodeId> {
        let mut best: Option<(u32, u32)> = None;
        let mut k = 0;
        while k < self.frontier.len() {
            let g = self.frontier[k];
            let gi = g.index();
            if !self.in_frontier[gi] {
                self.in_frontier_buf[gi] = false;
                self.frontier.swap_remove(k);
                continue;
            }
            let key = (self.testability.co(g), g.index() as u32);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
            k += 1;
        }
        best.map(|(_, raw)| NodeId::from_index(raw as usize))
    }

    fn detected(&self) -> bool {
        self.cone_outputs
            .iter()
            .any(|&o| self.values[o.index()].is_fault_effect())
    }

    /// Pick the next objective: activate the fault, then extend the
    /// D-frontier; includes the X-path feasibility check.
    fn next_objective(&mut self, fault: Fault) -> Objective {
        // Fault line value, as seen after injection.
        let line_value = match fault.site {
            FaultSite::Stem(id) => self.values[id.index()],
            FaultSite::Pin { gate, pin } => {
                let drv = self.circuit.node(gate).fanin[pin];
                inject_stuck(self.values[drv.index()], fault.stuck_at_one)
            }
        };
        if !line_value.is_fault_effect() {
            // Not activated yet: the line in the *good* circuit must carry
            // the opposite of the stuck value.
            let good = match fault.site {
                FaultSite::Stem(id) => self.values[id.index()].good(),
                FaultSite::Pin { gate, pin } => {
                    self.values[self.circuit.node(gate).fanin[pin].index()].good()
                }
            };
            return match good {
                Some(v) if v == fault.stuck_at_one => Objective::Conflict,
                Some(_) => {
                    // Good value is right but the effect vanished — only
                    // possible for a fault whose line value is fixed by
                    // constants; treat as conflict.
                    Objective::Conflict
                }
                None => {
                    let target = match fault.site {
                        FaultSite::Stem(id) => id,
                        FaultSite::Pin { gate, pin } => self.circuit.node(gate).fanin[pin],
                    };
                    Objective::Assign(target, !fault.stuck_at_one)
                }
            };
        }

        // Activated: advance the D-frontier.
        let Some(gate) = self.frontier_best() else {
            return Objective::Conflict;
        };
        if !self.x_path_exists() {
            return Objective::Conflict;
        }
        // `gate` is the frontier member closest to an output (min CO);
        // pick its easiest unassigned input, set to the non-controlling
        // value.
        let node = self.circuit.node(gate);
        let noncontrolling = match node.kind.controlling_value() {
            Some(c) => !c,
            // XOR-family: any defined value works; pick the cheaper side
            // of the chosen input below.
            None => true,
        };
        let input = node
            .fanin
            .iter()
            .copied()
            .filter(|f| self.values[f.index()] == V5::X)
            .min_by_key(|&f| self.testability.cc(f, noncontrolling));
        match input {
            Some(f) => {
                let v = if node.kind.controlling_value().is_some() {
                    noncontrolling
                } else {
                    self.testability.cc0(f) <= self.testability.cc1(f)
                };
                let v = if node.kind.controlling_value().is_some() {
                    v
                } else {
                    !v // cheaper side: if cc0 cheaper, target 0
                };
                Objective::Assign(f, v)
            }
            None => Objective::Conflict,
        }
    }

    /// Whether any frontier gate still has a path of X-valued nodes to a
    /// primary output. Both the frontier and every X-path from it live
    /// inside the fault cone, so one reverse sweep over the cone decides
    /// the same predicate a whole-circuit sweep would.
    fn x_path_exists(&mut self) -> bool {
        self.xreach_epoch = self.xreach_epoch.wrapping_add(1);
        if self.xreach_epoch == 0 {
            self.xreach_stamp.fill(u32::MAX);
            self.xreach_epoch = 1;
        }
        for &id in self.cone.iter().rev() {
            let i = id.index();
            if self.values[i] != V5::X {
                continue;
            }
            let reaches = self.index.output_marks(id) > 0
                || self
                    .index
                    .fanouts(id)
                    .iter()
                    .any(|&fo| self.xreach_stamp[fo.index()] == self.xreach_epoch);
            if reaches {
                self.xreach_stamp[i] = self.xreach_epoch;
            }
        }
        self.frontier.iter().any(|&g| {
            self.in_frontier[g.index()] && self.xreach_stamp[g.index()] == self.xreach_epoch
        })
    }

    /// Walk an objective back to an unassigned primary input.
    fn backtrace(
        &self,
        mut node: NodeId,
        mut value: bool,
        assignment: &[Option<bool>],
    ) -> Option<(usize, bool)> {
        let mut hops = 0usize;
        loop {
            hops += 1;
            if hops > self.circuit.node_count() + 1 {
                return None; // safety net; cannot loop in a DAG
            }
            if let Some(pos) = self.input_pos[node.index()] {
                if assignment[pos].is_some() {
                    return None; // already decided; objective unreachable
                }
                return Some((pos, value));
            }
            let n = self.circuit.node(node);
            match n.kind {
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Buf | GateKind::Dff => node = n.fanin[0],
                GateKind::Not => {
                    node = n.fanin[0];
                    value = !value;
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let inverts = n.kind.inverts();
                    let pre = value ^ inverts; // required value before inversion
                    let controlling = n
                        .kind
                        .controlling_value()
                        .expect("and/or family has a controlling value");
                    let xs: Vec<NodeId> = n
                        .fanin
                        .iter()
                        .copied()
                        .filter(|f| self.values[f.index()] == V5::X)
                        .collect();
                    if xs.is_empty() {
                        return None;
                    }
                    let pick = if pre == controlling {
                        // One controlling input suffices: easiest.
                        xs.iter()
                            .copied()
                            .min_by_key(|&f| self.testability.cc(f, controlling))
                    } else {
                        // All inputs must be non-controlling: hardest first.
                        xs.iter()
                            .copied()
                            .max_by_key(|&f| self.testability.cc(f, !controlling))
                    };
                    node = pick.expect("xs nonempty");
                    value = if pre == controlling {
                        controlling
                    } else {
                        !controlling
                    };
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Heuristic: pick any X input and request its cheaper
                    // value; implication validates the result.
                    let pick = n
                        .fanin
                        .iter()
                        .copied()
                        .find(|f| self.values[f.index()] == V5::X)?;
                    node = pick;
                    value = self.testability.cc1(pick) < self.testability.cc0(pick);
                }
                GateKind::Input => unreachable!("inputs handled via input_pos"),
            }
        }
    }
}

/// Inject a stuck-at value into a line's five-valued state: the faulty
/// component becomes the stuck value.
fn inject_stuck(v: V5, stuck_at_one: bool) -> V5 {
    V5::from_pair(v.good(), Some(stuck_at_one))
}

#[derive(Debug, PartialEq, Eq)]
enum Objective {
    Assign(NodeId, bool),
    Conflict,
}

/// The original whole-circuit PODEM, kept as the differential oracle: it
/// re-implies every node from scratch at each decision and rescans the
/// full node array for the D-frontier and X-path checks. The incremental
/// engine must reproduce its outcomes (and cubes) bit-for-bit.
#[cfg(test)]
pub(crate) mod oracle {
    use super::{eval_gate, inject_stuck, Bit, Objective, TestCube, V5};
    use crate::error::AtpgError;
    use crate::fault::{Fault, FaultSite};
    use crate::podem::PodemOutcome;
    use crate::testability::Testability;
    use modsoc_netlist::{Circuit, GateKind, NodeId};

    pub struct ReferencePodem<'a> {
        circuit: &'a Circuit,
        order: Vec<NodeId>,
        testability: Testability,
        backtrack_limit: u32,
        input_pos: Vec<Option<usize>>,
    }

    impl<'a> ReferencePodem<'a> {
        pub fn new(
            circuit: &'a Circuit,
            backtrack_limit: u32,
        ) -> Result<ReferencePodem<'a>, AtpgError> {
            let testability = Testability::compute(circuit)?;
            let order = circuit.topo_order()?;
            let mut input_pos = vec![None; circuit.node_count()];
            for (k, &pi) in circuit.inputs().iter().enumerate() {
                input_pos[pi.index()] = Some(k);
            }
            Ok(ReferencePodem {
                circuit,
                order,
                testability,
                backtrack_limit,
                input_pos,
            })
        }

        pub fn generate(&self, fault: Fault) -> Result<PodemOutcome, AtpgError> {
            let affected = fault.site.affected_gate();
            if affected.index() >= self.circuit.node_count() {
                return Err(AtpgError::ForeignFault {
                    fault: fault.to_string(),
                });
            }
            if let FaultSite::Pin { gate, pin } = fault.site {
                if pin >= self.circuit.node(gate).fanin.len() {
                    return Err(AtpgError::ForeignFault {
                        fault: fault.to_string(),
                    });
                }
            }

            let width = self.circuit.input_count();
            let mut assignment: Vec<Option<bool>> = vec![None; width];
            let mut stack: Vec<(usize, bool, bool)> = Vec::new();
            let mut backtracks = 0u32;
            let mut values = vec![V5::X; self.circuit.node_count()];

            loop {
                self.imply(fault, &assignment, &mut values);

                if self.detected(&values) {
                    let bits = assignment
                        .iter()
                        .map(|a| a.map_or(Bit::X, Bit::from_bool))
                        .collect::<TestCube>();
                    return Ok(PodemOutcome::Test(bits));
                }

                let objective = match self.next_objective(fault, &values) {
                    Objective::Assign(node, value) => Some((node, value)),
                    Objective::Conflict => None,
                };
                let decision = objective
                    .and_then(|(node, value)| self.backtrace(node, value, &values, &assignment));

                match decision {
                    Some((pi, v)) => {
                        assignment[pi] = Some(v);
                        stack.push((pi, v, false));
                    }
                    None => loop {
                        match stack.pop() {
                            Some((pi, v, tried_both)) => {
                                assignment[pi] = None;
                                if !tried_both {
                                    backtracks += 1;
                                    if backtracks > self.backtrack_limit {
                                        return Ok(PodemOutcome::Aborted);
                                    }
                                    assignment[pi] = Some(!v);
                                    stack.push((pi, !v, true));
                                    break;
                                }
                            }
                            None => return Ok(PodemOutcome::Redundant),
                        }
                    },
                }
            }
        }

        fn imply(&self, fault: Fault, assignment: &[Option<bool>], values: &mut [V5]) {
            for v in values.iter_mut() {
                *v = V5::X;
            }
            for (k, &pi) in self.circuit.inputs().iter().enumerate() {
                values[pi.index()] = match assignment[k] {
                    Some(true) => V5::One,
                    Some(false) => V5::Zero,
                    None => V5::X,
                };
            }
            if let FaultSite::Stem(site) = fault.site {
                if self.input_pos[site.index()].is_some() {
                    values[site.index()] = inject_stuck(values[site.index()], fault.stuck_at_one);
                }
            }
            let mut fanin_buf: Vec<V5> = Vec::with_capacity(8);
            for &id in &self.order {
                let node = self.circuit.node(id);
                if node.kind == GateKind::Input {
                    continue;
                }
                fanin_buf.clear();
                for (pin, f) in node.fanin.iter().enumerate() {
                    let mut v = values[f.index()];
                    if fault.site == (FaultSite::Pin { gate: id, pin }) {
                        v = inject_stuck(v, fault.stuck_at_one);
                    }
                    fanin_buf.push(v);
                }
                let mut v = eval_gate(node.kind, &fanin_buf);
                if fault.site == FaultSite::Stem(id) {
                    v = inject_stuck(v, fault.stuck_at_one);
                }
                values[id.index()] = v;
            }
        }

        fn detected(&self, values: &[V5]) -> bool {
            self.circuit
                .outputs()
                .iter()
                .any(|o| values[o.index()].is_fault_effect())
        }

        fn next_objective(&self, fault: Fault, values: &[V5]) -> Objective {
            let line_value = match fault.site {
                FaultSite::Stem(id) => values[id.index()],
                FaultSite::Pin { gate, pin } => {
                    let drv = self.circuit.node(gate).fanin[pin];
                    inject_stuck(values[drv.index()], fault.stuck_at_one)
                }
            };
            if !line_value.is_fault_effect() {
                let good = match fault.site {
                    FaultSite::Stem(id) => values[id.index()].good(),
                    FaultSite::Pin { gate, pin } => {
                        values[self.circuit.node(gate).fanin[pin].index()].good()
                    }
                };
                return match good {
                    Some(_) => Objective::Conflict,
                    None => {
                        let target = match fault.site {
                            FaultSite::Stem(id) => id,
                            FaultSite::Pin { gate, pin } => self.circuit.node(gate).fanin[pin],
                        };
                        Objective::Assign(target, !fault.stuck_at_one)
                    }
                };
            }

            let frontier = self.d_frontier(fault, values);
            if frontier.is_empty() {
                return Objective::Conflict;
            }
            if !self.x_path_exists(values, &frontier) {
                return Objective::Conflict;
            }
            let gate = frontier
                .iter()
                .copied()
                .min_by_key(|&g| self.testability.co(g))
                .expect("frontier nonempty");
            let node = self.circuit.node(gate);
            let noncontrolling = match node.kind.controlling_value() {
                Some(c) => !c,
                None => true,
            };
            let input = node
                .fanin
                .iter()
                .copied()
                .filter(|f| values[f.index()] == V5::X)
                .min_by_key(|&f| self.testability.cc(f, noncontrolling));
            match input {
                Some(f) => {
                    let v = if node.kind.controlling_value().is_some() {
                        noncontrolling
                    } else {
                        self.testability.cc0(f) <= self.testability.cc1(f)
                    };
                    let v = if node.kind.controlling_value().is_some() {
                        v
                    } else {
                        !v // cheaper side: if cc0 cheaper, target 0
                    };
                    Objective::Assign(f, v)
                }
                None => Objective::Conflict,
            }
        }

        fn d_frontier(&self, fault: Fault, values: &[V5]) -> Vec<NodeId> {
            let mut frontier = Vec::new();
            for (id, node) in self.circuit.iter() {
                if values[id.index()] != V5::X {
                    continue;
                }
                let has_effect = node.fanin.iter().enumerate().any(|(pin, f)| {
                    let mut v = values[f.index()];
                    if fault.site == (FaultSite::Pin { gate: id, pin }) {
                        v = inject_stuck(v, fault.stuck_at_one);
                    }
                    v.is_fault_effect()
                });
                if has_effect {
                    frontier.push(id);
                }
            }
            frontier
        }

        fn x_path_exists(&self, values: &[V5], frontier: &[NodeId]) -> bool {
            let mut xreach = vec![false; self.circuit.node_count()];
            for &po in self.circuit.outputs() {
                if values[po.index()] == V5::X {
                    xreach[po.index()] = true;
                }
            }
            for &id in self.order.iter().rev() {
                if !xreach[id.index()] || values[id.index()] != V5::X {
                    continue;
                }
                for f in &self.circuit.node(id).fanin {
                    if values[f.index()] == V5::X {
                        xreach[f.index()] = true;
                    }
                }
            }
            frontier.iter().any(|&g| xreach[g.index()])
        }

        fn backtrace(
            &self,
            mut node: NodeId,
            mut value: bool,
            values: &[V5],
            assignment: &[Option<bool>],
        ) -> Option<(usize, bool)> {
            let mut hops = 0usize;
            loop {
                hops += 1;
                if hops > self.circuit.node_count() + 1 {
                    return None;
                }
                if let Some(pos) = self.input_pos[node.index()] {
                    if assignment[pos].is_some() {
                        return None;
                    }
                    return Some((pos, value));
                }
                let n = self.circuit.node(node);
                match n.kind {
                    GateKind::Const0 | GateKind::Const1 => return None,
                    GateKind::Buf | GateKind::Dff => node = n.fanin[0],
                    GateKind::Not => {
                        node = n.fanin[0];
                        value = !value;
                    }
                    GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                        let inverts = n.kind.inverts();
                        let pre = value ^ inverts;
                        let controlling = n
                            .kind
                            .controlling_value()
                            .expect("and/or family has a controlling value");
                        let xs: Vec<NodeId> = n
                            .fanin
                            .iter()
                            .copied()
                            .filter(|f| values[f.index()] == V5::X)
                            .collect();
                        if xs.is_empty() {
                            return None;
                        }
                        let pick = if pre == controlling {
                            xs.iter()
                                .copied()
                                .min_by_key(|&f| self.testability.cc(f, controlling))
                        } else {
                            xs.iter()
                                .copied()
                                .max_by_key(|&f| self.testability.cc(f, !controlling))
                        };
                        node = pick.expect("xs nonempty");
                        value = if pre == controlling {
                            controlling
                        } else {
                            !controlling
                        };
                    }
                    GateKind::Xor | GateKind::Xnor => {
                        let pick = n
                            .fanin
                            .iter()
                            .copied()
                            .find(|f| values[f.index()] == V5::X)?;
                        node = pick;
                        value = self.testability.cc1(pick) < self.testability.cc0(pick);
                    }
                    GateKind::Input => unreachable!("inputs handled via input_pos"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_netlist::Circuit;

    fn and2() -> Circuit {
        let mut c = Circuit::new("and2");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::And, &[a, b]).unwrap();
        c.mark_output(g);
        c
    }

    #[test]
    fn and_output_sa0_needs_11() {
        let c = and2();
        let mut p = Podem::new(&c, 100).unwrap();
        let out = p.generate(Fault::stem_sa0(c.find("g").unwrap())).unwrap();
        match out {
            PodemOutcome::Test(cube) => {
                assert_eq!(cube.bit(0), Bit::One);
                assert_eq!(cube.bit(1), Bit::One);
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn and_input_sa1_needs_01_pattern() {
        // a s-a-1 detected by a=0, b=1.
        let c = and2();
        let mut p = Podem::new(&c, 100).unwrap();
        let out = p.generate(Fault::stem_sa1(c.inputs()[0])).unwrap();
        match out {
            PodemOutcome::Test(cube) => {
                assert_eq!(cube.bit(0), Bit::Zero);
                assert_eq!(cube.bit(1), Bit::One);
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn redundant_fault_found() {
        // g = OR(a, NOT(a)) is constant 1: g s-a-1 is undetectable.
        let mut c = Circuit::new("red");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::Or, &[a, n]).unwrap();
        c.mark_output(g);
        let mut p = Podem::new(&c, 1000).unwrap();
        let out = p.generate(Fault::stem_sa1(g)).unwrap();
        assert_eq!(out, PodemOutcome::Redundant);
    }

    #[test]
    fn detectable_in_constant_one_circuit() {
        // Same circuit: g s-a-0 IS detectable (any input works).
        let mut c = Circuit::new("red2");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::Or, &[a, n]).unwrap();
        c.mark_output(g);
        let mut p = Podem::new(&c, 1000).unwrap();
        let out = p.generate(Fault::stem_sa0(g)).unwrap();
        assert!(matches!(out, PodemOutcome::Test(_)));
    }

    #[test]
    fn pin_fault_on_branch() {
        // a fans to g1=AND(a,b), g2=OR(a,b). Branch a->g1 s-a-1: need
        // a=0 (activate), b=1 to propagate through g1? No: AND(D',b):
        // propagate needs b=1, then g1 shows D'. But a=0 also affects g2
        // only in good circuit — branch fault leaves g2 clean.
        let mut c = Circuit::new("br");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Or, &[a, b]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let mut p = Podem::new(&c, 100).unwrap();
        let out = p.generate(Fault::pin(g1, 0, true)).unwrap();
        match out {
            PodemOutcome::Test(cube) => {
                assert_eq!(cube.bit(0), Bit::Zero, "activation: a=0");
                assert_eq!(cube.bit(1), Bit::One, "propagation: b=1");
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn xor_propagation() {
        // y = XOR(a, b): every fault is testable.
        let mut c = Circuit::new("x");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::Xor, &[a, b]).unwrap();
        c.mark_output(g);
        let mut p = Podem::new(&c, 100).unwrap();
        for f in crate::fault::enumerate_faults(&c) {
            let out = p.generate(f).unwrap();
            assert!(matches!(out, PodemOutcome::Test(_)), "{f}");
        }
    }

    #[test]
    fn reconvergent_fanout_c17_all_testable() {
        // The classic c17: all 22 collapsed faults are testable.
        let src = "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
";
        let c = modsoc_netlist::bench_format::parse_bench("c17", src).unwrap();
        let mut p = Podem::new(&c, 1000).unwrap();
        for f in crate::collapse::collapse_faults(&c).representatives() {
            let out = p.generate(*f).unwrap();
            assert!(
                matches!(out, PodemOutcome::Test(_)),
                "{f} should be testable"
            );
        }
    }

    #[test]
    fn generated_tests_verified_by_simulation() {
        // Every PODEM test must actually flip an output in a faulty
        // 64-bit simulation (stem faults; checked via forced-node sim).
        let src = "
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)
OUTPUT(y)
t1 = AND(a, b)
t2 = NOR(c, d)
t3 = XOR(t1, c)
y = OR(t3, t2)
";
        let c = modsoc_netlist::bench_format::parse_bench("v", src).unwrap();
        let mut p = Podem::new(&c, 1000).unwrap();
        let sim = modsoc_netlist::sim::Simulator::new(&c).unwrap();
        for (id, node) in c.iter() {
            if node.kind == GateKind::Input {
                continue;
            }
            for sa1 in [false, true] {
                let f = Fault {
                    site: FaultSite::Stem(id),
                    stuck_at_one: sa1,
                };
                if let PodemOutcome::Test(cube) = p.generate(f).unwrap() {
                    let filled = cube.fill(crate::pattern::FillStrategy::Zeros);
                    let words: Vec<u64> = filled.iter().map(|&x| if x { 1 } else { 0 }).collect();
                    let good = sim.run_on(&c, &words);
                    let forced = if sa1 { u64::MAX } else { 0 };
                    let bad = sim.run_with_forced_node(&c, &words, id, forced);
                    let diff = c
                        .outputs()
                        .iter()
                        .any(|o| (good[o.index()] ^ bad[o.index()]) & 1 != 0);
                    assert!(diff, "test for {} does not detect it", f.describe(&c));
                }
            }
        }
    }

    #[test]
    fn foreign_fault_rejected() {
        let c = and2();
        let mut p = Podem::new(&c, 10).unwrap();
        let err = p.generate(Fault::pin(c.find("g").unwrap(), 9, true));
        assert!(matches!(err, Err(AtpgError::ForeignFault { .. })));
    }

    #[test]
    fn state_restored_between_searches() {
        // Interleave testable/redundant/foreign searches and re-check
        // outcomes: the persistent incremental state must fully unwind.
        let c = and2();
        let g = c.find("g").unwrap();
        let mut p = Podem::new(&c, 100).unwrap();
        let first = p.generate(Fault::stem_sa0(g)).unwrap();
        assert!(p.generate(Fault::pin(g, 9, true)).is_err());
        let again = p.generate(Fault::stem_sa0(g)).unwrap();
        assert_eq!(first, again);
        for f in crate::fault::enumerate_faults(&c) {
            assert_eq!(p.generate(f).unwrap(), p.generate(f).unwrap(), "{f}");
        }
    }

    // Differential property tests: on generated core profiles spanning
    // the paper's structural knobs (overlap, XOR density), the
    // incremental engine must reproduce the full-resimulation oracle's
    // outcome — including the exact cube — for every collapsed fault,
    // and every Test cube must detect its fault in a fault simulation.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn incremental_matches_oracle_on_generated_cores(
            inputs in 4usize..8,
            outputs in 2usize..6,
            scan in 2usize..10,
            overlap_pct in 0usize..100,
            xor_pct in 0usize..40,
            seed in 0u64..1024,
        ) {
            let mut profile =
                modsoc_circuitgen::CoreProfile::new("prop", inputs, outputs, scan).with_seed(seed);
            profile.overlap = overlap_pct as f64 / 100.0;
            profile.xor_fraction = xor_pct as f64 / 100.0;
            let circuit = modsoc_circuitgen::generate(&profile).expect("profile generates");
            let model = circuit.to_test_model().expect("test model").circuit;

            // A small backtrack limit keeps the search exercising the
            // Aborted path too; both engines must agree on it.
            let mut podem = Podem::new(&model, 24).expect("podem");
            let reference = oracle::ReferencePodem::new(&model, 24).expect("oracle");
            let mut fsim = crate::fault_sim::FaultSimulator::new(&model).expect("fsim");
            for &f in crate::collapse::collapse_faults(&model).representatives() {
                let incremental = podem.generate(f).expect("incremental generate");
                let full = reference.generate(f).expect("oracle generate");
                proptest::prop_assert_eq!(
                    &incremental,
                    &full,
                    "{} diverges from the oracle",
                    f.describe(&model)
                );
                if let PodemOutcome::Test(cube) = incremental {
                    let filled = cube.fill(crate::pattern::FillStrategy::Zeros);
                    let mask = fsim.detection_masks(&[filled], &[f]).expect("sim")[0];
                    proptest::prop_assert!(
                        mask != 0,
                        "cube for {} fails simulation",
                        f.describe(&model)
                    );
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_c17_exhaustively() {
        let src = "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
";
        let c = modsoc_netlist::bench_format::parse_bench("c17", src).unwrap();
        let mut p = Podem::new(&c, 1000).unwrap();
        let reference = oracle::ReferencePodem::new(&c, 1000).unwrap();
        for f in crate::fault::enumerate_faults(&c) {
            assert_eq!(
                p.generate(f).unwrap(),
                reference.generate(f).unwrap(),
                "{} diverges from the full-resimulation oracle",
                f.describe(&c)
            );
        }
    }
}
