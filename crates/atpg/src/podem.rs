//! The PODEM (Path-Oriented DEcision Making) test generation algorithm.
//!
//! PODEM searches the space of primary-input assignments directly: it
//! repeatedly picks an *objective* (activate the fault, then advance the
//! D-frontier), *backtraces* the objective to an unassigned input using
//! SCOAP guidance, assigns it, and re-*implies* the whole circuit in
//! five-valued logic. Conflicts flip the most recent untried decision;
//! exhausting the decision tree proves the fault redundant (untestable).

use modsoc_netlist::{Circuit, GateKind, NodeId};

use crate::budget::RunBudget;
use crate::error::AtpgError;
use crate::fault::{Fault, FaultSite};
use crate::pattern::{Bit, TestCube};
use crate::testability::Testability;
use crate::value::{eval_gate, V5};

/// Outcome of a single-fault PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube that detects the fault.
    Test(TestCube),
    /// The fault is untestable: no input assignment detects it.
    Redundant,
    /// The backtrack limit was hit before a conclusion.
    Aborted,
}

/// PODEM test generator bound to one combinational circuit.
#[derive(Debug)]
pub struct Podem<'a> {
    circuit: &'a Circuit,
    order: Vec<NodeId>,
    testability: Testability,
    backtrack_limit: u32,
    /// Input position of each node id, if it is an input.
    input_pos: Vec<Option<usize>>,
}

impl<'a> Podem<'a> {
    /// Build a generator for `circuit` with the given backtrack limit.
    ///
    /// # Errors
    ///
    /// Fails on sequential or invalid circuits.
    pub fn new(circuit: &'a Circuit, backtrack_limit: u32) -> Result<Podem<'a>, AtpgError> {
        let testability = Testability::compute(circuit)?;
        let order = circuit.topo_order()?;
        let mut input_pos = vec![None; circuit.node_count()];
        for (k, &pi) in circuit.inputs().iter().enumerate() {
            input_pos[pi.index()] = Some(k);
        }
        Ok(Podem {
            circuit,
            order,
            testability,
            backtrack_limit,
            input_pos,
        })
    }

    /// Generate a test for one stuck-at fault.
    ///
    /// Returns [`PodemOutcome::Test`] with a cube over the circuit's
    /// inputs (bit `i` = `circuit.inputs()[i]`), [`PodemOutcome::Redundant`]
    /// if the decision tree is exhausted, or [`PodemOutcome::Aborted`] at
    /// the backtrack limit.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::ForeignFault`] if the fault references a node
    /// outside this circuit.
    pub fn generate(&self, fault: Fault) -> Result<PodemOutcome, AtpgError> {
        self.generate_with_constraints(fault, &[])
    }

    /// Generate a test for one stuck-at fault under an optional
    /// [`RunBudget`]: each backtrack is charged against the budget's
    /// global pool, and a tripped deadline/cancellation/backtrack limit
    /// aborts the search ([`PodemOutcome::Aborted`]) so a single hard
    /// fault cannot hold a bounded run hostage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Podem::generate`].
    pub fn generate_budgeted(
        &self,
        fault: Fault,
        budget: Option<&RunBudget>,
    ) -> Result<PodemOutcome, AtpgError> {
        self.generate_with_constraints_budgeted(fault, &[], budget)
    }

    /// Generate a test for a stuck-at fault under side constraints: every
    /// `(node, value)` pair must hold in the good circuit of the final
    /// test. Used by the transition-fault flow (frame-1 initialization
    /// values) and usable for any justification-style requirement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Podem::generate`], plus
    /// [`AtpgError::ForeignFault`] for out-of-range constraint nodes.
    pub fn generate_with_constraints(
        &self,
        fault: Fault,
        constraints: &[(NodeId, bool)],
    ) -> Result<PodemOutcome, AtpgError> {
        self.generate_with_constraints_budgeted(fault, constraints, None)
    }

    /// [`Podem::generate_with_constraints`] under an optional
    /// [`RunBudget`] (see [`Podem::generate_budgeted`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Podem::generate_with_constraints`].
    pub fn generate_with_constraints_budgeted(
        &self,
        fault: Fault,
        constraints: &[(NodeId, bool)],
        budget: Option<&RunBudget>,
    ) -> Result<PodemOutcome, AtpgError> {
        for (node, _) in constraints {
            if node.index() >= self.circuit.node_count() {
                return Err(AtpgError::ForeignFault {
                    fault: format!("constraint node {node}"),
                });
            }
        }
        self.run_search(fault, constraints, budget)
    }

    fn run_search(
        &self,
        fault: Fault,
        constraints: &[(NodeId, bool)],
        budget: Option<&RunBudget>,
    ) -> Result<PodemOutcome, AtpgError> {
        let affected = fault.site.affected_gate();
        if affected.index() >= self.circuit.node_count() {
            return Err(AtpgError::ForeignFault {
                fault: fault.to_string(),
            });
        }
        if let FaultSite::Pin { gate, pin } = fault.site {
            if pin >= self.circuit.node(gate).fanin.len() {
                return Err(AtpgError::ForeignFault {
                    fault: fault.to_string(),
                });
            }
        }

        let width = self.circuit.input_count();
        let mut assignment: Vec<Option<bool>> = vec![None; width];
        // Decision stack: (input position, value, tried_both).
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks = 0u32;
        let mut values = vec![V5::X; self.circuit.node_count()];

        loop {
            self.imply(fault, &assignment, &mut values);

            // Side constraints: a contradicted constraint prunes the
            // branch; an undetermined one becomes the next objective.
            let mut constraint_objective = None;
            let mut constraint_conflict = false;
            for &(node, want) in constraints {
                match values[node.index()].good() {
                    Some(v) if v != want => {
                        constraint_conflict = true;
                        break;
                    }
                    None if constraint_objective.is_none() => {
                        constraint_objective = Some((node, want));
                    }
                    _ => {}
                }
            }

            if !constraint_conflict && constraint_objective.is_none() && self.detected(&values) {
                let bits = assignment
                    .iter()
                    .map(|a| a.map_or(Bit::X, Bit::from_bool))
                    .collect::<TestCube>();
                return Ok(PodemOutcome::Test(bits));
            }

            let objective = if constraint_conflict {
                None
            } else if let Some(obj) = constraint_objective {
                Some(obj)
            } else {
                match self.next_objective(fault, &values) {
                    Objective::Assign(node, value) => Some((node, value)),
                    Objective::Conflict => None,
                }
            };
            let decision = objective
                .and_then(|(node, value)| self.backtrace(node, value, &values, &assignment));

            match decision {
                Some((pi, v)) => {
                    assignment[pi] = Some(v);
                    stack.push((pi, v, false));
                }
                None => {
                    // Backtrack.
                    loop {
                        match stack.pop() {
                            Some((pi, v, tried_both)) => {
                                assignment[pi] = None;
                                if !tried_both {
                                    backtracks += 1;
                                    if backtracks > self.backtrack_limit {
                                        return Ok(PodemOutcome::Aborted);
                                    }
                                    // Budget: every backtrack drains the
                                    // run-wide pool; deadline/cancellation
                                    // also end the search here.
                                    if let Some(b) = budget {
                                        if b.charge_backtrack().is_some() {
                                            return Ok(PodemOutcome::Aborted);
                                        }
                                    }
                                    assignment[pi] = Some(!v);
                                    stack.push((pi, !v, true));
                                    break;
                                }
                            }
                            None => return Ok(PodemOutcome::Redundant),
                        }
                    }
                }
            }
        }
    }

    /// Five-valued forward implication with fault injection.
    fn imply(&self, fault: Fault, assignment: &[Option<bool>], values: &mut [V5]) {
        for v in values.iter_mut() {
            *v = V5::X;
        }
        for (k, &pi) in self.circuit.inputs().iter().enumerate() {
            values[pi.index()] = match assignment[k] {
                Some(true) => V5::One,
                Some(false) => V5::Zero,
                None => V5::X,
            };
        }
        // Stem fault on an input: inject immediately.
        if let FaultSite::Stem(site) = fault.site {
            if self.input_pos[site.index()].is_some() {
                values[site.index()] = inject_stuck(values[site.index()], fault.stuck_at_one);
            }
        }
        let mut fanin_buf: Vec<V5> = Vec::with_capacity(8);
        for &id in &self.order {
            let node = self.circuit.node(id);
            if node.kind == GateKind::Input {
                continue;
            }
            fanin_buf.clear();
            for (pin, f) in node.fanin.iter().enumerate() {
                let mut v = values[f.index()];
                if fault.site == (FaultSite::Pin { gate: id, pin }) {
                    v = inject_stuck(v, fault.stuck_at_one);
                }
                fanin_buf.push(v);
            }
            let mut v = eval_gate(node.kind, &fanin_buf);
            if fault.site == FaultSite::Stem(id) {
                v = inject_stuck(v, fault.stuck_at_one);
            }
            values[id.index()] = v;
        }
    }

    fn detected(&self, values: &[V5]) -> bool {
        self.circuit
            .outputs()
            .iter()
            .any(|o| values[o.index()].is_fault_effect())
    }

    /// Pick the next objective: activate the fault, then extend the
    /// D-frontier; includes the X-path feasibility check.
    fn next_objective(&self, fault: Fault, values: &[V5]) -> Objective {
        // Fault line value, as seen after injection.
        let line_value = match fault.site {
            FaultSite::Stem(id) => values[id.index()],
            FaultSite::Pin { gate, pin } => {
                let drv = self.circuit.node(gate).fanin[pin];
                inject_stuck(values[drv.index()], fault.stuck_at_one)
            }
        };
        if !line_value.is_fault_effect() {
            // Not activated yet: the line in the *good* circuit must carry
            // the opposite of the stuck value.
            let good = match fault.site {
                FaultSite::Stem(id) => values[id.index()].good(),
                FaultSite::Pin { gate, pin } => {
                    values[self.circuit.node(gate).fanin[pin].index()].good()
                }
            };
            return match good {
                Some(v) if v == fault.stuck_at_one => Objective::Conflict,
                Some(_) => {
                    // Good value is right but the effect vanished — only
                    // possible for a fault whose line value is fixed by
                    // constants; treat as conflict.
                    Objective::Conflict
                }
                None => {
                    let target = match fault.site {
                        FaultSite::Stem(id) => id,
                        FaultSite::Pin { gate, pin } => self.circuit.node(gate).fanin[pin],
                    };
                    Objective::Assign(target, !fault.stuck_at_one)
                }
            };
        }

        // Activated: advance the D-frontier.
        let frontier = self.d_frontier(fault, values);
        if frontier.is_empty() {
            return Objective::Conflict;
        }
        if !self.x_path_exists(values, &frontier) {
            return Objective::Conflict;
        }
        // Choose the frontier gate closest to an output (min CO), then its
        // easiest unassigned input, set to the non-controlling value.
        let gate = frontier
            .iter()
            .copied()
            .min_by_key(|&g| self.testability.co(g))
            .expect("frontier nonempty");
        let node = self.circuit.node(gate);
        let noncontrolling = match node.kind.controlling_value() {
            Some(c) => !c,
            // XOR-family: any defined value works; pick the cheaper side
            // of the chosen input below.
            None => true,
        };
        let input = node
            .fanin
            .iter()
            .copied()
            .filter(|f| values[f.index()] == V5::X)
            .min_by_key(|&f| self.testability.cc(f, noncontrolling));
        match input {
            Some(f) => {
                let v = if node.kind.controlling_value().is_some() {
                    noncontrolling
                } else {
                    self.testability.cc0(f) <= self.testability.cc1(f)
                };
                let v = if node.kind.controlling_value().is_some() {
                    v
                } else {
                    !v // cheaper side: if cc0 cheaper, target 0
                };
                Objective::Assign(f, v)
            }
            None => Objective::Conflict,
        }
    }

    /// Gates with a fault effect on some input but X output. For the gate
    /// owning a faulted pin, the pin's *injected* value is what counts.
    fn d_frontier(&self, fault: Fault, values: &[V5]) -> Vec<NodeId> {
        let mut frontier = Vec::new();
        for (id, node) in self.circuit.iter() {
            if values[id.index()] != V5::X {
                continue;
            }
            let has_effect = node.fanin.iter().enumerate().any(|(pin, f)| {
                let mut v = values[f.index()];
                if fault.site == (FaultSite::Pin { gate: id, pin }) {
                    v = inject_stuck(v, fault.stuck_at_one);
                }
                v.is_fault_effect()
            });
            if has_effect {
                frontier.push(id);
            }
        }
        frontier
    }

    /// Whether any frontier gate still has a path of X-valued nodes to a
    /// primary output.
    fn x_path_exists(&self, values: &[V5], frontier: &[NodeId]) -> bool {
        // xreach[n] = node n (X-valued) can reach a PO through X nodes.
        let mut xreach = vec![false; self.circuit.node_count()];
        for &po in self.circuit.outputs() {
            if values[po.index()] == V5::X {
                xreach[po.index()] = true;
            }
        }
        // Reverse topological sweep: a node reaches if any fanout gate is
        // X-valued and reaches. Build fanouts lazily per call is wasteful;
        // sweep nodes in reverse topo order using fanin direction instead:
        // propagate from consumer to producer.
        for &id in self.order.iter().rev() {
            if !xreach[id.index()] || values[id.index()] != V5::X {
                continue;
            }
            for f in &self.circuit.node(id).fanin {
                if values[f.index()] == V5::X {
                    xreach[f.index()] = true;
                }
            }
        }
        frontier.iter().any(|&g| xreach[g.index()])
    }

    /// Walk an objective back to an unassigned primary input.
    fn backtrace(
        &self,
        mut node: NodeId,
        mut value: bool,
        values: &[V5],
        assignment: &[Option<bool>],
    ) -> Option<(usize, bool)> {
        let mut hops = 0usize;
        loop {
            hops += 1;
            if hops > self.circuit.node_count() + 1 {
                return None; // safety net; cannot loop in a DAG
            }
            if let Some(pos) = self.input_pos[node.index()] {
                if assignment[pos].is_some() {
                    return None; // already decided; objective unreachable
                }
                return Some((pos, value));
            }
            let n = self.circuit.node(node);
            match n.kind {
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Buf | GateKind::Dff => node = n.fanin[0],
                GateKind::Not => {
                    node = n.fanin[0];
                    value = !value;
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let inverts = n.kind.inverts();
                    let pre = value ^ inverts; // required value before inversion
                    let controlling = n
                        .kind
                        .controlling_value()
                        .expect("and/or family has a controlling value");
                    let xs: Vec<NodeId> = n
                        .fanin
                        .iter()
                        .copied()
                        .filter(|f| values[f.index()] == V5::X)
                        .collect();
                    if xs.is_empty() {
                        return None;
                    }
                    let pick = if pre == controlling {
                        // One controlling input suffices: easiest.
                        xs.iter()
                            .copied()
                            .min_by_key(|&f| self.testability.cc(f, controlling))
                    } else {
                        // All inputs must be non-controlling: hardest first.
                        xs.iter()
                            .copied()
                            .max_by_key(|&f| self.testability.cc(f, !controlling))
                    };
                    node = pick.expect("xs nonempty");
                    value = if pre == controlling {
                        controlling
                    } else {
                        !controlling
                    };
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Heuristic: pick any X input and request its cheaper
                    // value; imply() validates the result.
                    let pick = n
                        .fanin
                        .iter()
                        .copied()
                        .find(|f| values[f.index()] == V5::X)?;
                    node = pick;
                    value = self.testability.cc1(pick) < self.testability.cc0(pick);
                }
                GateKind::Input => unreachable!("inputs handled via input_pos"),
            }
        }
    }
}

/// Inject a stuck-at value into a line's five-valued state: the faulty
/// component becomes the stuck value.
fn inject_stuck(v: V5, stuck_at_one: bool) -> V5 {
    V5::from_pair(v.good(), Some(stuck_at_one))
}

#[derive(Debug, PartialEq, Eq)]
enum Objective {
    Assign(NodeId, bool),
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_netlist::Circuit;

    fn and2() -> Circuit {
        let mut c = Circuit::new("and2");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::And, &[a, b]).unwrap();
        c.mark_output(g);
        c
    }

    #[test]
    fn and_output_sa0_needs_11() {
        let c = and2();
        let p = Podem::new(&c, 100).unwrap();
        let out = p.generate(Fault::stem_sa0(c.find("g").unwrap())).unwrap();
        match out {
            PodemOutcome::Test(cube) => {
                assert_eq!(cube.bit(0), Bit::One);
                assert_eq!(cube.bit(1), Bit::One);
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn and_input_sa1_needs_01_pattern() {
        // a s-a-1 detected by a=0, b=1.
        let c = and2();
        let p = Podem::new(&c, 100).unwrap();
        let out = p.generate(Fault::stem_sa1(c.inputs()[0])).unwrap();
        match out {
            PodemOutcome::Test(cube) => {
                assert_eq!(cube.bit(0), Bit::Zero);
                assert_eq!(cube.bit(1), Bit::One);
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn redundant_fault_found() {
        // g = OR(a, NOT(a)) is constant 1: g s-a-1 is undetectable.
        let mut c = Circuit::new("red");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::Or, &[a, n]).unwrap();
        c.mark_output(g);
        let p = Podem::new(&c, 1000).unwrap();
        let out = p.generate(Fault::stem_sa1(g)).unwrap();
        assert_eq!(out, PodemOutcome::Redundant);
    }

    #[test]
    fn detectable_in_constant_one_circuit() {
        // Same circuit: g s-a-0 IS detectable (any input works).
        let mut c = Circuit::new("red2");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::Or, &[a, n]).unwrap();
        c.mark_output(g);
        let p = Podem::new(&c, 1000).unwrap();
        let out = p.generate(Fault::stem_sa0(g)).unwrap();
        assert!(matches!(out, PodemOutcome::Test(_)));
    }

    #[test]
    fn pin_fault_on_branch() {
        // a fans to g1=AND(a,b), g2=OR(a,b). Branch a->g1 s-a-1: need
        // a=0 (activate), b=1 to propagate through g1? No: AND(D',b):
        // propagate needs b=1, then g1 shows D'. But a=0 also affects g2
        // only in good circuit — branch fault leaves g2 clean.
        let mut c = Circuit::new("br");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Or, &[a, b]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        let p = Podem::new(&c, 100).unwrap();
        let out = p.generate(Fault::pin(g1, 0, true)).unwrap();
        match out {
            PodemOutcome::Test(cube) => {
                assert_eq!(cube.bit(0), Bit::Zero, "activation: a=0");
                assert_eq!(cube.bit(1), Bit::One, "propagation: b=1");
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn xor_propagation() {
        // y = XOR(a, b): every fault is testable.
        let mut c = Circuit::new("x");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::Xor, &[a, b]).unwrap();
        c.mark_output(g);
        let p = Podem::new(&c, 100).unwrap();
        for f in crate::fault::enumerate_faults(&c) {
            let out = p.generate(f).unwrap();
            assert!(matches!(out, PodemOutcome::Test(_)), "{f}");
        }
    }

    #[test]
    fn reconvergent_fanout_c17_all_testable() {
        // The classic c17: all 22 collapsed faults are testable.
        let src = "
INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)
OUTPUT(g22)\nOUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
";
        let c = modsoc_netlist::bench_format::parse_bench("c17", src).unwrap();
        let p = Podem::new(&c, 1000).unwrap();
        for f in crate::collapse::collapse_faults(&c).representatives() {
            let out = p.generate(*f).unwrap();
            assert!(
                matches!(out, PodemOutcome::Test(_)),
                "{f} should be testable"
            );
        }
    }

    #[test]
    fn generated_tests_verified_by_simulation() {
        // Every PODEM test must actually flip an output in a faulty
        // 64-bit simulation (stem faults; checked via forced-node sim).
        let src = "
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)
OUTPUT(y)
t1 = AND(a, b)
t2 = NOR(c, d)
t3 = XOR(t1, c)
y = OR(t3, t2)
";
        let c = modsoc_netlist::bench_format::parse_bench("v", src).unwrap();
        let p = Podem::new(&c, 1000).unwrap();
        let sim = modsoc_netlist::sim::Simulator::new(&c).unwrap();
        for (id, node) in c.iter() {
            if node.kind == GateKind::Input {
                continue;
            }
            for sa1 in [false, true] {
                let f = Fault {
                    site: FaultSite::Stem(id),
                    stuck_at_one: sa1,
                };
                if let PodemOutcome::Test(cube) = p.generate(f).unwrap() {
                    let filled = cube.fill(crate::pattern::FillStrategy::Zeros);
                    let words: Vec<u64> = filled.iter().map(|&x| if x { 1 } else { 0 }).collect();
                    let good = sim.run_on(&c, &words);
                    let forced = if sa1 { u64::MAX } else { 0 };
                    let bad = sim.run_with_forced_node(&c, &words, id, forced);
                    let diff = c
                        .outputs()
                        .iter()
                        .any(|o| (good[o.index()] ^ bad[o.index()]) & 1 != 0);
                    assert!(diff, "test for {} does not detect it", f.describe(&c));
                }
            }
        }
    }

    #[test]
    fn foreign_fault_rejected() {
        let c = and2();
        let p = Podem::new(&c, 10).unwrap();
        let err = p.generate(Fault::pin(c.find("g").unwrap(), 9, true));
        assert!(matches!(err, Err(AtpgError::ForeignFault { .. })));
    }
}
