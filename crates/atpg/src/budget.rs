//! Run-control budgets for long-running test generation.
//!
//! ATPG is the paper's canonical blow-up workload: a single hard cone can
//! sink a whole SOC run (§3's cone model predicts pattern counts
//! dominated by the hardest cone). [`RunBudget`] bounds a run four ways —
//! wall-clock deadline, a *global* backtrack budget shared by every PODEM
//! invocation in the run, a pattern-count cap, and cooperative
//! cancellation — and every bounded entry point returns its partial work
//! plus a [`BudgetExhausted`] diagnostic instead of running unbounded.
//!
//! A budget is cheap to clone; clones share the same cancellation flag
//! and backtrack counter, so one budget can govern a whole multi-core
//! experiment (cores drain a common pool) or be cloned per core for
//! per-core quotas.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use modsoc_atpg::budget::{ExhaustReason, RunBudget};
//!
//! let budget = RunBudget::unlimited().with_timeout(Duration::ZERO);
//! // A zero timeout trips immediately:
//! assert_eq!(budget.check(), Some(ExhaustReason::Deadline));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use modsoc_metrics::BudgetSnapshot;

/// Which limit a run hit first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation flag was raised.
    Cancelled,
    /// The global backtrack budget drained.
    Backtracks,
    /// The pattern-count cap was reached.
    Patterns,
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustReason::Deadline => write!(f, "deadline"),
            ExhaustReason::Cancelled => write!(f, "cancelled"),
            ExhaustReason::Backtracks => write!(f, "backtrack budget"),
            ExhaustReason::Patterns => write!(f, "pattern cap"),
        }
    }
}

/// Diagnostic attached to a partial result: what tripped, where, and how
/// much work had been banked by then.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The limit that tripped.
    pub reason: ExhaustReason,
    /// Pipeline stage that observed the trip (e.g. `"random-phase"`,
    /// `"podem"`).
    pub phase: &'static str,
    /// Patterns already generated when the budget tripped.
    pub patterns_so_far: usize,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exhausted ({}) during {} with {} patterns banked",
            self.reason, self.phase, self.patterns_so_far
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// Limits for one run. The default is unlimited on every axis, so
/// `RunBudget::default()` reproduces historical unbounded behaviour.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Global backtrack pool shared by every PODEM call under this
    /// budget (clones share the counter).
    pub max_backtracks_total: Option<u64>,
    /// Cap on generated patterns; generation stops once reached.
    pub max_patterns: Option<usize>,
    /// Cooperative cancellation flag; see [`RunBudget::cancel_handle`].
    pub cancel: Arc<AtomicBool>,
    backtracks_used: Arc<AtomicU64>,
}

impl RunBudget {
    /// A budget with no limits (never trips).
    #[must_use]
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// Set an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> RunBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Set a deadline `timeout` from now.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> RunBudget {
        // Saturate rather than panic near the end of Instant's range.
        let deadline = Instant::now()
            .checked_add(timeout)
            .unwrap_or_else(Instant::now);
        self.with_deadline(deadline)
    }

    /// Cap the total backtracks across all PODEM calls under this budget.
    #[must_use]
    pub fn with_max_backtracks(mut self, n: u64) -> RunBudget {
        self.max_backtracks_total = Some(n);
        self
    }

    /// Cap the number of generated patterns.
    #[must_use]
    pub fn with_max_patterns(mut self, n: usize) -> RunBudget {
        self.max_patterns = Some(n);
        self
    }

    /// A handle that cancels this run (and every clone of this budget)
    /// from another thread.
    #[must_use]
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Raise the cancellation flag.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the cancellation flag is raised.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Total backtracks charged so far (across clones).
    #[must_use]
    pub fn backtracks_used(&self) -> u64 {
        self.backtracks_used.load(Ordering::Relaxed)
    }

    /// Whether no limit is configured at all (the fast path can skip
    /// per-iteration checks).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_backtracks_total.is_none()
            && self.max_patterns.is_none()
            && !self.is_cancelled()
    }

    /// Check the deadline and cancellation flag.
    #[must_use]
    pub fn check(&self) -> Option<ExhaustReason> {
        if self.is_cancelled() {
            return Some(ExhaustReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(ExhaustReason::Deadline);
            }
        }
        None
    }

    /// Charge one backtrack against the shared pool, then check every
    /// limit. Called from PODEM's backtrack step.
    #[must_use]
    pub fn charge_backtrack(&self) -> Option<ExhaustReason> {
        let used = self.backtracks_used.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_backtracks_total {
            if used > max {
                return Some(ExhaustReason::Backtracks);
            }
        }
        self.check()
    }

    /// Check every limit given `patterns` generated so far.
    #[must_use]
    pub fn check_with_patterns(&self, patterns: usize) -> Option<ExhaustReason> {
        if let Some(max) = self.max_patterns {
            if patterns >= max {
                return Some(ExhaustReason::Patterns);
            }
        }
        if let Some(max) = self.max_backtracks_total {
            if self.backtracks_used() >= max {
                return Some(ExhaustReason::Backtracks);
            }
        }
        self.check()
    }

    /// Point-in-time consumption snapshot for metrics reports: what this
    /// budget was configured with and how much has drained so far.
    /// Consumption counters are shared across clones, so a snapshot taken
    /// from any clone reflects the whole run.
    #[must_use]
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            backtracks_used: self.backtracks_used(),
            max_backtracks: self.max_backtracks_total,
            max_patterns: self.max_patterns.map(|n| n as u64),
            deadline_set: self.deadline.is_some(),
            cancelled: self.is_cancelled(),
        }
    }

    /// Build the diagnostic for a trip observed in `phase`.
    #[must_use]
    pub fn exhausted(
        &self,
        reason: ExhaustReason,
        phase: &'static str,
        patterns: usize,
    ) -> BudgetExhausted {
        BudgetExhausted {
            reason,
            phase,
            patterns_so_far: patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(), None);
        assert_eq!(b.check_with_patterns(usize::MAX), None);
        for _ in 0..100 {
            assert_eq!(b.charge_backtrack(), None);
        }
        assert_eq!(b.backtracks_used(), 100);
    }

    #[test]
    fn snapshot_reflects_configuration_and_consumption() {
        let b = RunBudget::unlimited()
            .with_max_backtracks(10)
            .with_max_patterns(5);
        for _ in 0..3 {
            let _ = b.charge_backtrack();
        }
        let snap = b.snapshot();
        assert_eq!(snap.backtracks_used, 3);
        assert_eq!(snap.max_backtracks, Some(10));
        assert_eq!(snap.max_patterns, Some(5));
        assert!(!snap.deadline_set);
        assert!(!snap.cancelled);
        b.cancel();
        assert!(b.snapshot().cancelled);
        // A clone shares the same pools, so its snapshot agrees.
        assert_eq!(b.clone().snapshot(), b.snapshot());
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let b = RunBudget::unlimited().with_timeout(Duration::ZERO);
        assert_eq!(b.check(), Some(ExhaustReason::Deadline));
    }

    #[test]
    fn cancellation_shared_across_clones() {
        let b = RunBudget::unlimited();
        let clone = b.clone();
        let handle = b.cancel_handle();
        assert_eq!(clone.check(), None);
        handle.store(true, Ordering::Relaxed);
        assert_eq!(clone.check(), Some(ExhaustReason::Cancelled));
        assert_eq!(b.check(), Some(ExhaustReason::Cancelled));
    }

    #[test]
    fn backtrack_pool_shared_across_clones() {
        let b = RunBudget::unlimited().with_max_backtracks(3);
        let clone = b.clone();
        assert_eq!(b.charge_backtrack(), None);
        assert_eq!(clone.charge_backtrack(), None);
        assert_eq!(b.charge_backtrack(), None);
        assert_eq!(clone.charge_backtrack(), Some(ExhaustReason::Backtracks));
        assert_eq!(b.check_with_patterns(0), Some(ExhaustReason::Backtracks));
    }

    #[test]
    fn pattern_cap() {
        let b = RunBudget::unlimited().with_max_patterns(5);
        assert_eq!(b.check_with_patterns(4), None);
        assert_eq!(b.check_with_patterns(5), Some(ExhaustReason::Patterns));
    }

    #[test]
    fn diagnostics_render() {
        let b = RunBudget::unlimited();
        let e = b.exhausted(ExhaustReason::Deadline, "podem", 7);
        let text = e.to_string();
        assert!(
            text.contains("deadline") && text.contains("podem") && text.contains('7'),
            "{text}"
        );
        for r in [
            ExhaustReason::Deadline,
            ExhaustReason::Cancelled,
            ExhaustReason::Backtracks,
            ExhaustReason::Patterns,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
