//! The single stuck-at fault model.
//!
//! Faults live on *lines*: either a gate's output stem, or one input pin
//! of a gate (a fanout branch when the driver has multiple fanouts). The
//! universe of (stem + pin) faults, collapsed by structural equivalence
//! (see [`crate::collapse`]), is the standard target list a stuck-at ATPG
//! works through.

use std::fmt;

use modsoc_netlist::{Circuit, GateKind, NodeId, StructuralIndex};

/// Where a fault sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultSite {
    /// On the output stem of a node (gate, input, or pseudo-input).
    Stem(NodeId),
    /// On input pin `pin` of gate `gate`.
    Pin {
        /// The gate whose input pin is faulted.
        gate: NodeId,
        /// Zero-based pin index into the gate's fanin list.
        pin: usize,
    },
}

impl FaultSite {
    /// The node whose *evaluation* the fault affects: the stem node itself,
    /// or the gate owning the faulted pin.
    #[must_use]
    pub fn affected_gate(self) -> NodeId {
        match self {
            FaultSite::Stem(id) => id,
            FaultSite::Pin { gate, .. } => gate,
        }
    }
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fault {
    /// The faulted line.
    pub site: FaultSite,
    /// The stuck value: `true` for stuck-at-1.
    pub stuck_at_one: bool,
}

impl Fault {
    /// Stuck-at-0 on a stem.
    #[must_use]
    pub fn stem_sa0(node: NodeId) -> Fault {
        Fault {
            site: FaultSite::Stem(node),
            stuck_at_one: false,
        }
    }

    /// Stuck-at-1 on a stem.
    #[must_use]
    pub fn stem_sa1(node: NodeId) -> Fault {
        Fault {
            site: FaultSite::Stem(node),
            stuck_at_one: true,
        }
    }

    /// Stuck-at fault on an input pin.
    #[must_use]
    pub fn pin(gate: NodeId, pin: usize, stuck_at_one: bool) -> Fault {
        Fault {
            site: FaultSite::Pin { gate, pin },
            stuck_at_one,
        }
    }

    /// Render the fault with circuit names, e.g. `g7/2 s-a-1`.
    #[must_use]
    pub fn describe(&self, circuit: &Circuit) -> String {
        let sa = if self.stuck_at_one { 1 } else { 0 };
        match self.site {
            FaultSite::Stem(id) => format!("{} s-a-{sa}", circuit.node(id).name),
            FaultSite::Pin { gate, pin } => {
                format!("{}/{pin} s-a-{sa}", circuit.node(gate).name)
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sa = if self.stuck_at_one { 1 } else { 0 };
        match self.site {
            FaultSite::Stem(id) => write!(f, "{id} s-a-{sa}"),
            FaultSite::Pin { gate, pin } => write!(f, "{gate}/{pin} s-a-{sa}"),
        }
    }
}

/// Lifecycle state of a fault during an ATPG run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultStatus {
    /// Not yet targeted or detected.
    #[default]
    Undetected,
    /// Detected by some pattern.
    Detected,
    /// Proven untestable (PODEM exhausted the search space).
    Redundant,
    /// Search hit the backtrack limit; testability unknown.
    Aborted,
}

/// Enumerate the full (uncollapsed) stuck-at fault universe of a
/// combinational circuit: both polarities on every stem, and on every
/// input pin whose driver fans out to more than one consumer (fanout
/// branches). Pins of single-fanout drivers are equivalent to the driver's
/// stem and therefore skipped at enumeration time already.
#[must_use]
pub fn enumerate_faults(circuit: &Circuit) -> Vec<Fault> {
    let index = StructuralIndex::build(circuit)
        .expect("fault enumeration requires an indexable (acyclic) circuit");
    enumerate_faults_with(circuit, &index)
}

/// [`enumerate_faults`] against a prebuilt [`StructuralIndex`], so callers
/// that already hold one (the engine, collapsing) skip rebuilding the
/// fanout adjacency per call.
#[must_use]
pub fn enumerate_faults_with(circuit: &Circuit, index: &StructuralIndex) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, node) in circuit.iter() {
        if matches!(node.kind, GateKind::Const0 | GateKind::Const1) {
            continue;
        }
        for sa1 in [false, true] {
            faults.push(Fault {
                site: FaultSite::Stem(id),
                stuck_at_one: sa1,
            });
        }
        // Branch faults: one per pin whose driving stem has fanout > 1
        // (counting output pins as fanout consumers).
        for (pin, f) in node.fanin.iter().enumerate() {
            if index.branch_count(*f) > 1 {
                for sa1 in [false, true] {
                    faults.push(Fault {
                        site: FaultSite::Pin { gate: id, pin },
                        stuck_at_one: sa1,
                    });
                }
            }
        }
    }
    faults
}

/// Exhaustively decide a fault's testability on a small combinational
/// circuit (≤ 20 inputs): simulate every input vector and report
/// whether any detects it.
///
/// The reference oracle the PODEM and fault-simulation tests check
/// against; also useful for certifying redundancy claims on glue logic.
///
/// # Errors
///
/// Propagates simulator errors; refuses circuits with more than 20
/// inputs (over a million vectors) via
/// [`crate::AtpgError::PatternWidth`].
pub fn exhaustively_testable(
    circuit: &Circuit,
    fault: Fault,
) -> Result<bool, crate::error::AtpgError> {
    let width = circuit.input_count();
    if width > 20 {
        return Err(crate::error::AtpgError::PatternWidth {
            expected: 20,
            got: width,
        });
    }
    let mut fsim = crate::fault_sim::FaultSimulator::new(circuit)?;
    let total = 1usize << width;
    let mut row = 0usize;
    while row < total {
        let batch: Vec<Vec<bool>> = (row..(row + 64).min(total))
            .map(|r| (0..width).map(|i| (r >> i) & 1 == 1).collect())
            .collect();
        row += batch.len();
        if fsim.detection_masks(&batch, &[fault])?[0] != 0 {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branching_circuit() -> Circuit {
        // a fans out to g1 and g2; b feeds only g1.
        let mut c = Circuit::new("br");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate("g1", GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate("g2", GateKind::Not, &[a]).unwrap();
        c.mark_output(g1);
        c.mark_output(g2);
        c
    }

    #[test]
    fn enumerates_stems_and_branches() {
        let c = branching_circuit();
        let faults = enumerate_faults(&c);
        // Stems: a, b, g1, g2 -> 8 faults.
        // Branches: a has fanout 2, so g1/0 and g2/0 pins -> 4 faults.
        // b has fanout 1 -> no branch faults.
        assert_eq!(faults.len(), 12);
        let branch_count = faults
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Pin { .. }))
            .count();
        assert_eq!(branch_count, 4);
    }

    #[test]
    fn po_marking_counts_as_fanout() {
        // a drives g and is also a primary output: pin a->g is a branch.
        let mut c = Circuit::new("po");
        let a = c.add_input("a");
        let g = c.add_gate("g", GateKind::Not, &[a]).unwrap();
        c.mark_output(a);
        c.mark_output(g);
        let faults = enumerate_faults(&c);
        let branch_count = faults
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Pin { .. }))
            .count();
        assert_eq!(branch_count, 2);
    }

    #[test]
    fn describe_names_lines() {
        let c = branching_circuit();
        let f = Fault::pin(c.find("g1").unwrap(), 1, true);
        assert_eq!(f.describe(&c), "g1/1 s-a-1");
        let s = Fault::stem_sa0(c.find("a").unwrap());
        assert_eq!(s.describe(&c), "a s-a-0");
    }

    #[test]
    fn constants_not_faulted() {
        let mut c = Circuit::new("k");
        let k = c.add_gate("k", GateKind::Const1, &[]).unwrap();
        let a = c.add_input("a");
        let g = c.add_gate("g", GateKind::And, &[k, a]).unwrap();
        c.mark_output(g);
        let faults = enumerate_faults(&c);
        assert!(faults
            .iter()
            .all(|f| f.site.affected_gate() != k || matches!(f.site, FaultSite::Pin { .. })));
    }

    #[test]
    fn exhaustive_oracle_on_redundant_logic() {
        let mut c = Circuit::new("red");
        let a = c.add_input("a");
        let n = c.add_gate("n", GateKind::Not, &[a]).unwrap();
        let g = c.add_gate("g", GateKind::Or, &[a, n]).unwrap();
        c.mark_output(g);
        assert!(!exhaustively_testable(&c, Fault::stem_sa1(g)).unwrap());
        assert!(exhaustively_testable(&c, Fault::stem_sa0(g)).unwrap());
    }

    #[test]
    fn exhaustive_oracle_refuses_wide_circuits() {
        let mut c = Circuit::new("wide");
        let inputs: Vec<_> = (0..21).map(|i| c.add_input(format!("i{i}"))).collect();
        let g = c.add_gate("g", GateKind::And, &inputs).unwrap();
        c.mark_output(g);
        assert!(exhaustively_testable(&c, Fault::stem_sa0(g)).is_err());
    }

    #[test]
    fn display_and_ordering() {
        let f0 = Fault::stem_sa0(NodeId::from_index(1));
        let f1 = Fault::stem_sa1(NodeId::from_index(1));
        assert!(f0 < f1);
        assert!(f0.to_string().contains("s-a-0"));
    }
}
