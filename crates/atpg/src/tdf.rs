//! Transition-delay fault (TDF) test generation, launch-on-capture.
//!
//! At-speed testing targets *slow* gates rather than stuck ones: a
//! slow-to-rise fault at a line delays its 0→1 transition past the
//! functional clock period. Under the launch-on-capture (LOC) scheme on
//! a full-scan design, a TDF test is a scan-loaded state plus held
//! primary inputs; the first functional clock *launches* the transition
//! and the second *captures* its (possibly late) result.
//!
//! Mechanically, LOC reduces to stuck-at machinery on a **two-frame
//! unrolling** of the combinational test model:
//!
//! * frame 1 computes the launch state from `(PI, scan state)`;
//! * frame 2 re-evaluates the logic on `(same PI, launch state)`;
//! * a slow-to-rise TDF at line `s` is detected iff `s = 0` in frame 1
//!   (initialization) and the frame-2 copy of `s` is detected as
//!   stuck-at-0 (the late transition looks stuck for one cycle).
//!
//! The frame-1 initialization is exactly a PODEM side constraint
//! ([`crate::podem::Podem::generate_with_constraints`]).

use modsoc_netlist::{Circuit, GateKind, NodeId, TestModel, TestPoint};

use crate::error::AtpgError;
use crate::fault::Fault;
use crate::fault_sim::{
    active_mask, block_active_mask, FaultSimulator, PackedWord, SimBlock, BLOCK_BITS,
};
use crate::pattern::{FillStrategy, TestSet};
use crate::podem::{Podem, PodemOutcome};

/// A transition-delay fault on a test-model line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransitionFault {
    /// The faulted node in the (single-frame) test model.
    pub site: NodeId,
    /// `true` for slow-to-rise (0→1 delayed), `false` for slow-to-fall.
    pub slow_to_rise: bool,
}

impl TransitionFault {
    /// Render with circuit names, e.g. `g7 slow-to-rise`.
    #[must_use]
    pub fn describe(&self, model: &Circuit) -> String {
        format!(
            "{} slow-to-{}",
            model.node(self.site).name,
            if self.slow_to_rise { "rise" } else { "fall" }
        )
    }
}

/// The two-frame LOC unrolling of a combinational test model.
#[derive(Debug, Clone)]
pub struct TwoFrame {
    /// The unrolled combinational circuit. Inputs: the model's primary
    /// inputs (held over both frames) followed by its scan cells
    /// (frame-1 state). Outputs: the model's frame-2 outputs.
    pub circuit: Circuit,
    /// Frame-1 copy of each model node.
    pub frame1: Vec<NodeId>,
    /// Frame-2 copy of each model node.
    pub frame2: Vec<NodeId>,
}

/// Build the two-frame unrolling of a full-scan test model.
///
/// `model` must be the output of
/// [`Circuit::to_test_model`](modsoc_netlist::Circuit::to_test_model):
/// its inputs are primary inputs followed by scan cells, its outputs
/// primary outputs followed by scan captures. Frame 2's scan inputs are
/// driven by frame 1's capture values; primary inputs are shared
/// (launch-on-capture holds them).
///
/// # Errors
///
/// Propagates circuit construction errors.
pub fn unroll_two_frames(model: &TestModel) -> Result<TwoFrame, AtpgError> {
    let m = &model.circuit;
    let mut out = Circuit::new(format!("{}.loc2", m.name()));
    let order = m.topo_order().map_err(AtpgError::from)?;

    // Shared PIs and frame-1 scan inputs.
    let mut f1: Vec<Option<NodeId>> = vec![None; m.node_count()];
    let mut f2: Vec<Option<NodeId>> = vec![None; m.node_count()];
    for (k, &pi) in m.inputs().iter().enumerate() {
        let name = &m.node(pi).name;
        let shared = out.add_input(name.to_string());
        match model.inputs[k] {
            TestPoint::Primary(_) => {
                // Held over both frames.
                f1[pi.index()] = Some(shared);
                f2[pi.index()] = Some(shared);
            }
            TestPoint::ScanCell(_) => {
                // Frame-1 state input; frame 2's copy is wired to the
                // frame-1 capture below.
                f1[pi.index()] = Some(shared);
            }
        }
    }
    // Frame 1 logic.
    for &id in &order {
        if f1[id.index()].is_some() {
            continue;
        }
        let node = m.node(id);
        let fanin: Vec<NodeId> = node
            .fanin
            .iter()
            .map(|f| f1[f.index()].expect("frame-1 fanin placed"))
            .collect();
        let nid = out
            .add_gate(format!("f1.{}", node.name), node.kind, &fanin)
            .map_err(AtpgError::from)?;
        f1[id.index()] = Some(nid);
    }
    // Frame-2 scan inputs = frame-1 captures (model outputs beyond the
    // primary ones, in scan order).
    let mut capture_iter = model
        .outputs
        .iter()
        .zip(m.outputs())
        .filter(|(p, _)| p.is_scan());
    let scan_inputs: Vec<usize> = model
        .inputs
        .iter()
        .zip(m.inputs())
        .filter(|(p, _)| p.is_scan())
        .map(|(_, id)| id.index())
        .collect();
    for scan_in_index in scan_inputs {
        let (_, &capture_driver) = capture_iter
            .next()
            .expect("one capture per scan cell, same order");
        f2[scan_in_index] = Some(f1[capture_driver.index()].expect("frame-1 capture placed"));
    }
    // Frame 2 logic.
    for &id in &order {
        if f2[id.index()].is_some() {
            continue;
        }
        let node = m.node(id);
        if node.kind == GateKind::Input {
            // A scan input whose frame-2 copy was wired above, or a PI
            // already shared — both handled; reaching here means a scan
            // cell ordering bug.
            unreachable!("frame-2 input not wired: {}", node.name);
        }
        let fanin: Vec<NodeId> = node
            .fanin
            .iter()
            .map(|f| f2[f.index()].expect("frame-2 fanin placed"))
            .collect();
        let nid = out
            .add_gate(format!("f2.{}", node.name), node.kind, &fanin)
            .map_err(AtpgError::from)?;
        f2[id.index()] = Some(nid);
    }
    // Observe frame-2 outputs (POs and captures).
    for &po in m.outputs() {
        out.mark_output(f2[po.index()].expect("frame-2 output placed"));
    }
    out.validate().map_err(AtpgError::from)?;
    Ok(TwoFrame {
        circuit: out,
        frame1: f1.into_iter().map(|x| x.expect("all placed")).collect(),
        frame2: f2.into_iter().map(|x| x.expect("all placed")).collect(),
    })
}

/// Enumerate the transition-fault universe: both polarities on every
/// logic line of the model (inputs and constants excluded — PIs are held
/// in LOC and cannot launch a transition from the scan load alone; they
/// are conventionally covered by launch-on-shift or stuck-at tests).
#[must_use]
pub fn enumerate_transition_faults(model: &Circuit) -> Vec<TransitionFault> {
    model
        .iter()
        .filter(|(_, n)| n.kind.is_logic())
        .flat_map(|(id, _)| {
            [
                TransitionFault {
                    site: id,
                    slow_to_rise: true,
                },
                TransitionFault {
                    site: id,
                    slow_to_rise: false,
                },
            ]
        })
        .collect()
}

/// Result of a transition-fault ATPG run.
#[derive(Debug, Clone)]
pub struct TdfResult {
    /// Test cubes over `(PI, frame-1 scan state)` — the unrolled
    /// circuit's input order.
    pub patterns: TestSet,
    /// Faults detected.
    pub detected: usize,
    /// Faults proven untestable under LOC.
    pub untestable: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Total faults targeted.
    pub total: usize,
    /// `Some` when a [`RunBudget`](crate::budget::RunBudget) tripped and
    /// the result is partial (untargeted faults count as undetected).
    pub exhausted: Option<crate::budget::BudgetExhausted>,
}

impl TdfResult {
    /// Coverage over LOC-testable faults.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let testable = self.total - self.untestable;
        if testable == 0 {
            return 1.0;
        }
        self.detected as f64 / testable as f64
    }
}

/// Which launch scheme to generate transition tests for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LaunchScheme {
    /// Launch-on-capture: frame 2 is the functional image of frame 1.
    #[default]
    Capture,
    /// Launch-on-shift: frame 2 is the scan vector shifted one position
    /// (single chain, declaration order).
    Shift,
}

/// Build the launch-on-shift (LOS) unrolling of a full-scan test model
/// with a **single scan chain** in flip-flop declaration order.
///
/// Under LOS the launch cycle is the last *shift* clock: the frame-2
/// state is the frame-1 scan vector shifted by one position, with a
/// fresh `scan_in` bit entering at chain position 0. Both states are
/// therefore directly controllable (unlike LOC, where frame 2 is the
/// functional image of frame 1) — which is why LOS typically reaches
/// higher transition coverage, at the price of a fast scan-enable.
///
/// The unrolled circuit's inputs are the model's primary inputs (held),
/// the frame-1 scan state, plus the extra `scan_in` bit.
///
/// # Errors
///
/// Propagates circuit construction errors.
pub fn unroll_los(model: &TestModel) -> Result<TwoFrame, AtpgError> {
    let m = &model.circuit;
    let mut out = Circuit::new(format!("{}.los2", m.name()));
    let order = m.topo_order().map_err(AtpgError::from)?;

    let mut f1: Vec<Option<NodeId>> = vec![None; m.node_count()];
    let mut f2: Vec<Option<NodeId>> = vec![None; m.node_count()];
    let mut scan_nodes: Vec<usize> = Vec::new();
    for (k, &pi) in m.inputs().iter().enumerate() {
        let name = &m.node(pi).name;
        let shared = out.add_input(name.to_string());
        match model.inputs[k] {
            TestPoint::Primary(_) => {
                f1[pi.index()] = Some(shared);
                f2[pi.index()] = Some(shared);
            }
            TestPoint::ScanCell(_) => {
                f1[pi.index()] = Some(shared);
                scan_nodes.push(pi.index());
            }
        }
    }
    // The bit shifted in during the launch cycle.
    let scan_in = out.add_input("scan_in".to_string());
    // Frame-2 state: chain position j takes frame-1 position j−1;
    // position 0 takes the fresh scan-in bit.
    for (j, &node_index) in scan_nodes.iter().enumerate() {
        f2[node_index] = Some(if j == 0 {
            scan_in
        } else {
            f1[scan_nodes[j - 1]].expect("frame-1 scan input placed")
        });
    }
    for (frame, prefix) in [(&mut f1, "f1"), (&mut f2, "f2")] {
        for &id in &order {
            if frame[id.index()].is_some() {
                continue;
            }
            let node = m.node(id);
            if node.kind == GateKind::Input {
                unreachable!("input not wired in {prefix}: {}", node.name);
            }
            let fanin: Vec<NodeId> = node
                .fanin
                .iter()
                .map(|f| frame[f.index()].expect("fanin placed"))
                .collect();
            let nid = out
                .add_gate(format!("{prefix}.{}", node.name), node.kind, &fanin)
                .map_err(AtpgError::from)?;
            frame[id.index()] = Some(nid);
        }
    }
    for &po in m.outputs() {
        out.mark_output(f2[po.index()].expect("frame-2 output placed"));
    }
    out.validate().map_err(AtpgError::from)?;
    Ok(TwoFrame {
        circuit: out,
        frame1: f1.into_iter().map(|x| x.expect("all placed")).collect(),
        frame2: f2.into_iter().map(|x| x.expect("all placed")).collect(),
    })
}

/// Generate launch-on-capture tests for every transition fault of a
/// full-scan circuit (or test model).
///
/// # Errors
///
/// Propagates netlist and test-generation errors.
///
/// # Example
///
/// ```
/// use modsoc_atpg::tdf::run_tdf_atpg;
/// use modsoc_netlist::bench_format::parse_bench;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = parse_bench("t", "
/// INPUT(a)\nINPUT(b)\nOUTPUT(y)
/// f1 = DFF(n1)
/// n1 = AND(a, b)
/// y = AND(f1, b)
/// ")?;
/// let result = run_tdf_atpg(&circuit, 200)?;
/// assert!(result.detected > 0);
/// assert!(!result.patterns.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn run_tdf_atpg(circuit: &Circuit, backtrack_limit: u32) -> Result<TdfResult, AtpgError> {
    run_tdf_atpg_with_scheme(circuit, backtrack_limit, LaunchScheme::Capture)
}

/// Generate transition tests under the chosen launch scheme.
///
/// # Errors
///
/// Propagates netlist and test-generation errors.
pub fn run_tdf_atpg_with_scheme(
    circuit: &Circuit,
    backtrack_limit: u32,
    scheme: LaunchScheme,
) -> Result<TdfResult, AtpgError> {
    // Sequential circuits convert to their full-scan model; a purely
    // combinational design has no launch state, so every TDF comes out
    // untestable (still well-defined).
    let model = circuit.to_test_model().map_err(AtpgError::from)?;
    let two = match scheme {
        LaunchScheme::Capture => unroll_two_frames(&model)?,
        LaunchScheme::Shift => unroll_los(&model)?,
    };
    run_tdf_over(
        &model,
        &two,
        backtrack_limit,
        &crate::budget::RunBudget::unlimited(),
    )
}

/// [`run_tdf_atpg_with_scheme`] under a [`RunBudget`]: the budget is
/// polled between faults and charged per PODEM backtrack; on a trip the
/// remaining faults stay untargeted and
/// [`TdfResult::exhausted`] is set.
///
/// # Errors
///
/// Propagates netlist and test-generation errors.
pub fn run_tdf_atpg_budgeted(
    circuit: &Circuit,
    backtrack_limit: u32,
    scheme: LaunchScheme,
    budget: &crate::budget::RunBudget,
) -> Result<TdfResult, AtpgError> {
    let model = circuit.to_test_model().map_err(AtpgError::from)?;
    let two = match scheme {
        LaunchScheme::Capture => unroll_two_frames(&model)?,
        LaunchScheme::Shift => unroll_los(&model)?,
    };
    run_tdf_over(&model, &two, backtrack_limit, budget)
}

/// [`run_tdf_atpg_budgeted`] reporting into a
/// [`MetricsSink`](modsoc_metrics::MetricsSink): the whole flow is timed
/// as one `tdf` phase, and the fault/detection/pattern totals land on the
/// TDF counters. Results are identical to the unmetered entry point.
///
/// # Errors
///
/// Propagates netlist and test-generation errors.
pub fn run_tdf_atpg_metered(
    circuit: &Circuit,
    backtrack_limit: u32,
    scheme: LaunchScheme,
    budget: &crate::budget::RunBudget,
    sink: &dyn modsoc_metrics::MetricsSink,
) -> Result<TdfResult, AtpgError> {
    use modsoc_metrics::{Counter, Phase, PhaseTimer};
    let result = {
        let _t = PhaseTimer::start(sink, Phase::Tdf);
        run_tdf_atpg_budgeted(circuit, backtrack_limit, scheme, budget)?
    };
    sink.add(Counter::TdfFaults, result.total as u64);
    sink.add(Counter::TdfDetected, result.detected as u64);
    sink.add(Counter::TdfPatterns, result.patterns.len() as u64);
    if result.exhausted.is_some() {
        sink.add(Counter::BudgetTrips, 1);
    }
    Ok(result)
}

fn run_tdf_over(
    model: &TestModel,
    two: &TwoFrame,
    backtrack_limit: u32,
    budget: &crate::budget::RunBudget,
) -> Result<TdfResult, AtpgError> {
    let faults = enumerate_transition_faults(&model.circuit);
    // The unrolled circuit's structural index is shared between the
    // generator and the simulator.
    let sindex = std::sync::Arc::new(modsoc_netlist::StructuralIndex::build(&two.circuit)?);
    let mut podem = Podem::with_index(
        &two.circuit,
        std::sync::Arc::clone(&sindex),
        backtrack_limit,
    )?;
    let mut fsim = FaultSimulator::with_index(&two.circuit, sindex)?;

    let width = two.circuit.input_count();
    let mut patterns = TestSet::new(width);
    let mut detected_flags = vec![false; faults.len()];
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    let mut exhausted = None;

    for (i, tf) in faults.iter().enumerate() {
        if detected_flags[i] {
            continue;
        }
        if let Some(reason) = budget.check_with_patterns(patterns.len()) {
            exhausted = Some(budget.exhausted(reason, "tdf", patterns.len()));
            break;
        }
        let init = !tf.slow_to_rise; // frame-1 value before the transition
        let stuck = Fault {
            site: crate::fault::FaultSite::Stem(two.frame2[tf.site.index()]),
            stuck_at_one: init,
        };
        let constraint = (two.frame1[tf.site.index()], init);
        match podem.generate_with_constraints_budgeted(stuck, &[constraint], Some(budget))? {
            PodemOutcome::Test(cube) => {
                detected_flags[i] = true;
                // Drop other TDFs detected by the filled pattern; the
                // good-circuit evaluation is shared across all faults.
                let filled = vec![cube.fill_keyed(FillStrategy::default())];
                let (good, _) = fsim.good_values(&filled)?;
                for (j, other) in faults.iter().enumerate().skip(i + 1) {
                    if detected_flags[j] {
                        continue;
                    }
                    if tdf_mask(&mut fsim, two, other, &good, 1) != 0 {
                        detected_flags[j] = true;
                    }
                }
                patterns.push(cube);
            }
            PodemOutcome::Redundant => untestable += 1,
            PodemOutcome::Aborted => aborted += 1,
        }
    }
    Ok(TdfResult {
        patterns,
        detected: detected_flags.iter().filter(|&&d| d).count(),
        untestable,
        aborted,
        total: faults.len(),
        exhausted,
    })
}

/// Whether `patterns` (fully specified, unrolled-input order) detect the
/// transition fault: the frame-2 stuck-at mask gated by the frame-1
/// initialization condition.
fn tdf_detected(
    fsim: &mut FaultSimulator<'_>,
    two: &TwoFrame,
    tf: &TransitionFault,
    patterns: &[Vec<bool>],
) -> Result<bool, AtpgError> {
    for chunk in patterns.chunks(64) {
        let (good, n) = fsim.good_values(chunk)?;
        let active = active_mask(n);
        if tdf_mask(fsim, two, tf, &good, active) != 0 {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Per-slot detection mask of one transition fault against a batch whose
/// good values are already computed: the frame-2 stuck-at mask gated by
/// the frame-1 initialization word.
fn tdf_mask(
    fsim: &mut FaultSimulator<'_>,
    two: &TwoFrame,
    tf: &TransitionFault,
    good: &[u64],
    active: u64,
) -> u64 {
    let init = !tf.slow_to_rise;
    let stuck = Fault {
        site: crate::fault::FaultSite::Stem(two.frame2[tf.site.index()]),
        stuck_at_one: init,
    };
    let stuck_mask = fsim.detection_mask(good, active, stuck);
    let f1_word = good[two.frame1[tf.site.index()].index()];
    let init_mask = if init { f1_word } else { !f1_word };
    stuck_mask & init_mask & active
}

/// [`tdf_mask`] at block width: launch detection via the frame-2 stuck
/// fault, gated by the frame-1 initialization value, per 512-pattern
/// block.
fn tdf_block_mask(
    fsim: &mut FaultSimulator<'_>,
    two: &TwoFrame,
    tf: &TransitionFault,
    good: &[SimBlock],
    active: &SimBlock,
) -> SimBlock {
    let init = !tf.slow_to_rise;
    let stuck = Fault {
        site: crate::fault::FaultSite::Stem(two.frame2[tf.site.index()]),
        stuck_at_one: init,
    };
    let stuck_mask = fsim.block_detection_mask(good, active, stuck);
    let f1 = good[two.frame1[tf.site.index()].index()];
    let init_mask = if init { f1 } else { f1.not() };
    stuck_mask.and(init_mask).and(*active)
}

/// Fault-simulate a pattern set against the full TDF universe and return
/// per-fault detection flags (reference/reporting path).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn tdf_coverage(
    model: &TestModel,
    patterns: &[Vec<bool>],
) -> Result<(Vec<TransitionFault>, Vec<bool>), AtpgError> {
    let faults = enumerate_transition_faults(&model.circuit);
    let two = unroll_two_frames(model)?;
    let mut fsim = FaultSimulator::new(&two.circuit)?;
    if crate::fault_sim::narrow_forced() {
        let mut flags = Vec::with_capacity(faults.len());
        for tf in &faults {
            flags.push(tdf_detected(&mut fsim, &two, tf, patterns)?);
        }
        return Ok((faults, flags));
    }
    // Wide kernel: the two-frame good values are evaluated once per
    // 512-pattern block and streamed against every still-undetected
    // fault (blocks outer, faults inner — the same cache blocking as
    // the stuck-at sweeps; the old path re-simulated the good circuit
    // per fault per chunk).
    let mut flags = vec![false; faults.len()];
    for chunk in patterns.chunks(BLOCK_BITS) {
        let (good, n) = fsim.good_blocks(chunk)?;
        let active = block_active_mask(n);
        for (flag, tf) in flags.iter_mut().zip(&faults) {
            if *flag {
                continue;
            }
            if !tdf_block_mask(&mut fsim, &two, tf, &good, &active).is_zero() {
                *flag = true;
            }
        }
    }
    Ok((faults, flags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_netlist::bench_format::parse_bench;

    /// A small sequential circuit with a controllable transition path:
    /// the scan cell drives an AND observed at the output.
    fn seq() -> Circuit {
        parse_bench(
            "t",
            "
INPUT(a)
INPUT(b)
OUTPUT(y)
f1 = DFF(n1)
n1 = AND(a, b)
y = AND(f1, b)
",
        )
        .unwrap()
    }

    #[test]
    fn unrolling_shape() {
        let c = seq();
        let model = c.to_test_model().unwrap();
        let two = unroll_two_frames(&model).unwrap();
        // Inputs: a, b (shared) + f1 frame-1 state.
        assert_eq!(two.circuit.input_count(), 3);
        // Outputs: y@f2 + capture of n1@f2.
        assert_eq!(two.circuit.output_count(), 2);
        // Gates doubled.
        assert_eq!(two.circuit.gate_count(), 2 * model.circuit.gate_count());
        two.circuit.validate().unwrap();
    }

    #[test]
    fn unrolled_frame2_state_is_frame1_capture() {
        use modsoc_netlist::sim::simulate_single;
        let c = seq();
        let model = c.to_test_model().unwrap();
        let two = unroll_two_frames(&model).unwrap();
        // a=1, b=1, f1(frame1)=0:
        // frame1: n1 = 1 (capture), y@f1 = 0.
        // frame2: f1 = 1 -> y@f2 = 1.
        let vals = simulate_single(&two.circuit, &[true, true, false]).unwrap();
        let y2 = two.circuit.outputs()[0];
        assert!(vals[y2.index()], "frame-2 output sees the launched state");
    }

    #[test]
    fn tdf_atpg_finds_transitions() {
        let result = run_tdf_atpg(&seq(), 200).unwrap();
        assert!(result.total > 0);
        assert!(result.detected > 0, "some transitions are testable");
        assert_eq!(result.aborted, 0);
        assert!(result.coverage() > 0.5, "coverage {}", result.coverage());
        assert!(!result.patterns.is_empty());
    }

    #[test]
    fn tdf_patterns_verified_by_simulation() {
        // Re-simulate the generated patterns against the universe: the
        // reported detected count must be reachable by the final set.
        let c = seq();
        let model = c.to_test_model().unwrap();
        let result = run_tdf_atpg(&c, 200).unwrap();
        let filled = result.patterns.fill_all(FillStrategy::default());
        let (_, flags) = tdf_coverage(&model, &filled).unwrap();
        let sim_detected = flags.iter().filter(|&&f| f).count();
        assert!(
            sim_detected >= result.detected,
            "sim {sim_detected} vs reported {}",
            result.detected
        );
    }

    #[test]
    fn loc_untestable_fault_reported() {
        // A combinational-only circuit has no launch state: every TDF is
        // untestable under LOC (PIs are held).
        let comb = parse_bench("c", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let result = run_tdf_atpg(&comb, 100).unwrap();
        assert_eq!(result.detected, 0);
        assert_eq!(result.untestable, result.total);
        assert!((result.coverage() - 1.0).abs() < 1e-12, "0/0 testable");
    }

    #[test]
    fn los_unrolling_shifts_state() {
        use modsoc_netlist::sim::simulate_single;
        let c = seq();
        let model = c.to_test_model().unwrap();
        let two = unroll_los(&model).unwrap();
        // Inputs: a, b, f1-state, scan_in.
        assert_eq!(two.circuit.input_count(), 4);
        // With one scan cell, frame-2 state = scan_in directly.
        // a=0, b=1, f1=0, scan_in=1: frame2 y = AND(1, b=1) = 1.
        let vals = simulate_single(&two.circuit, &[false, true, false, true]).unwrap();
        let y2 = two.circuit.outputs()[0];
        assert!(vals[y2.index()]);
    }

    #[test]
    fn los_coverage_at_least_loc() {
        // LOS controls both frames directly, so it should never detect
        // fewer transition faults than LOC on the same circuit.
        let src = "
INPUT(a)\nINPUT(b)\nINPUT(c)
OUTPUT(y)
f1 = DFF(n1)
f2 = DFF(n2)
f3 = DFF(n3)
n1 = XOR(a, f2)
n2 = NAND(b, f1)
n3 = OR(n1, f3)
y = AND(n3, f1, c)
";
        let circuit = parse_bench("los", src).unwrap();
        let loc = run_tdf_atpg_with_scheme(&circuit, 400, LaunchScheme::Capture).unwrap();
        let los = run_tdf_atpg_with_scheme(&circuit, 400, LaunchScheme::Shift).unwrap();
        assert!(
            los.detected >= loc.detected,
            "los {} vs loc {}",
            los.detected,
            loc.detected
        );
        assert_eq!(los.aborted, 0);
    }

    #[test]
    fn larger_circuit_tdf_runs() {
        let src = "
INPUT(a)\nINPUT(b)\nINPUT(c)
OUTPUT(y)
f1 = DFF(n1)
f2 = DFF(n2)
n1 = XOR(a, f2)
n2 = NAND(b, f1)
n3 = OR(n1, c)
y = AND(n3, f1)
";
        let circuit = parse_bench("bigger", src).unwrap();
        let result = run_tdf_atpg(&circuit, 500).unwrap();
        assert!(result.coverage() > 0.6, "coverage {}", result.coverage());
        assert_eq!(result.aborted, 0);
    }
}
