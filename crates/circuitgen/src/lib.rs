//! Deterministic synthetic circuit generation.
//!
//! The DATE 2008 paper's SOC1/SOC2 experiments run ATPG on ISCAS'89
//! benchmark netlists. Those netlists are not redistributable inside this
//! workspace, so this crate builds the closest synthetic equivalent: for
//! each benchmark the paper uses, a [`CoreProfile`] pins the published
//! interface (primary inputs, outputs, scan flip-flops) and describes the
//! internal *cone structure* — how many logic cones, how wide, how deep,
//! how much their supports overlap, and how XOR-rich they are. The
//! [`generate`] function then synthesises a full-scan netlist with that
//! shape, deterministically from a seed.
//!
//! What matters for the paper's analysis is preserved by construction:
//!
//! * the interface counts (I, O, S) enter the TDV equations verbatim;
//! * per-cone difficulty varies, so per-core ATPG pattern counts vary;
//! * the [`soc`] module stitches cores into the exact Figure 4 / Figure 5
//!   topologies, so the flattened monolithic netlist has wide,
//!   overlapping, cross-core cones — which is why its ATPG pattern count
//!   exceeds the per-core maximum (the paper's Equation 2 observed
//!   strictly).
//!
//! # Example
//!
//! ```
//! use modsoc_circuitgen::{generate, CoreProfile};
//!
//! # fn main() -> Result<(), modsoc_netlist::NetlistError> {
//! let profile = CoreProfile::new("tiny", 8, 4, 6);
//! let circuit = generate(&profile)?;
//! assert_eq!(circuit.input_count(), 8);
//! assert_eq!(circuit.output_count(), 4);
//! assert_eq!(circuit.dff_count(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod profile;
pub mod soc;

pub use generator::generate;
pub use profile::CoreProfile;
pub use soc::{PortSource, SocNetlist, SocNetlistBuilder};
