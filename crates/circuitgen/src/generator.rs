//! The cone-structured circuit generator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use modsoc_netlist::{Circuit, GateKind, NetlistError, NodeId};

use crate::profile::CoreProfile;

/// Generate a full-scan circuit from a profile.
///
/// The circuit has exactly `profile.inputs` primary inputs,
/// `profile.outputs` primary outputs and `profile.scan_cells` flip-flops.
/// One logic cone is synthesised per output and per flip-flop data input;
/// cone supports are drawn from the source pool (inputs + flip-flop
/// outputs) with the profile's overlap/locality, and every source is
/// guaranteed to drive at least one cone.
///
/// Generation is fully deterministic: equal profiles (including seed)
/// produce identical netlists.
///
/// # Errors
///
/// Returns a [`NetlistError`] if the profile is degenerate (no sources or
/// no cones).
pub fn generate(profile: &CoreProfile) -> Result<Circuit, NetlistError> {
    if profile.source_count() == 0 || profile.cone_count() == 0 {
        return Err(NetlistError::NoObservationPoints);
    }
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0xC1C5_EED0);
    let mut c = Circuit::new(profile.name.clone());

    // Sources: PIs then deferred DFFs (their outputs are usable now,
    // their data fanins are wired once the cones exist).
    let mut sources: Vec<NodeId> = Vec::with_capacity(profile.source_count());
    for i in 0..profile.inputs {
        sources.push(c.add_input(format!("pi{i}")));
    }
    let mut dffs: Vec<NodeId> = Vec::with_capacity(profile.scan_cells);
    for i in 0..profile.scan_cells {
        let ff = c.add_dff_deferred(format!("ff{i}"))?;
        dffs.push(ff);
        sources.push(ff);
    }

    let cone_count = profile.cone_count();
    let n_sources = sources.len();
    let mut used = vec![false; n_sources];

    // Per-cone difficulty: a deterministic subset of cones is "hard".
    let mut hard = vec![false; cone_count];
    let hard_n = ((cone_count as f64) * profile.hard_cone_fraction).round() as usize;
    {
        let mut idx: Vec<usize> = (0..cone_count).collect();
        idx.shuffle(&mut rng);
        for &i in idx.iter().take(hard_n.min(cone_count)) {
            hard[i] = true;
        }
    }

    let mut cone_roots: Vec<NodeId> = Vec::with_capacity(cone_count);
    let mut gate_counter = 0usize;
    #[allow(clippy::needless_range_loop)] // `cone` is a position, not just an index
    for cone in 0..cone_count {
        let max_w = profile.max_cone_width.clamp(1, n_sources);
        let min_w = profile.min_cone_width.clamp(1, max_w);
        let width = if hard[cone] {
            max_w
        } else {
            rng.gen_range(min_w..=max_w)
        };
        let support = sample_support(
            &mut rng,
            cone,
            cone_count,
            n_sources,
            width,
            profile.overlap,
        );
        for &s in &support {
            used[s] = true;
        }
        let leaves: Vec<NodeId> = support.iter().map(|&s| sources[s]).collect();
        let root = build_cone_tree(
            &mut rng,
            &mut c,
            &leaves,
            profile,
            hard[cone],
            &mut gate_counter,
        )?;
        cone_roots.push(root);
    }

    // Guarantee every source is used: fold unused sources into extra
    // 2-input gates spliced ahead of randomly chosen cone roots.
    let unused: Vec<usize> = (0..n_sources).filter(|&i| !used[i]).collect();
    for s in unused {
        let k = rng.gen_range(0..cone_roots.len());
        let kind = if rng.gen_bool(profile.xor_fraction) {
            GateKind::Xor
        } else if rng.gen_bool(0.5) {
            GateKind::And
        } else {
            GateKind::Or
        };
        let g = c.add_gate(
            format!("u{gate_counter}"),
            kind,
            &[cone_roots[k], sources[s]],
        )?;
        gate_counter += 1;
        cone_roots[k] = g;
    }

    // Wire cone roots: the first `outputs` cones drive primary outputs,
    // the rest drive flip-flop data inputs.
    for (i, &root) in cone_roots.iter().take(profile.outputs).enumerate() {
        let _ = i;
        c.mark_output(root);
    }
    for (k, &ff) in dffs.iter().enumerate() {
        c.set_fanin(ff, &[cone_roots[profile.outputs + k]])?;
    }
    c.validate()?;
    Ok(c)
}

/// Sample a cone's support with locality: each cone owns a window of the
/// source pool centred on its share; `overlap` widens the window from
/// "just my share" (0) to "everything" (1).
fn sample_support(
    rng: &mut StdRng,
    cone: usize,
    cone_count: usize,
    n_sources: usize,
    width: usize,
    overlap: f64,
) -> Vec<usize> {
    let width = width.min(n_sources);
    let centre = if cone_count <= 1 {
        0.0
    } else {
        cone as f64 / cone_count as f64 * n_sources as f64
    };
    let base = width.max(n_sources / cone_count.max(1)).max(1) as f64;
    let window = (base + overlap * (n_sources as f64 - base)).ceil() as usize;
    let window = window.clamp(width, n_sources);
    let start = (centre - window as f64 / 2.0).round() as isize;
    let mut picks: Vec<usize> = Vec::with_capacity(width);
    let mut taken = vec![false; n_sources];
    while picks.len() < width {
        let off = rng.gen_range(0..window) as isize;
        let idx = (start + off).rem_euclid(n_sources as isize) as usize;
        if !taken[idx] {
            taken[idx] = true;
            picks.push(idx);
        }
    }
    picks.sort_unstable();
    picks
}

/// Combine `leaves` into a single root with a random gate tree.
fn build_cone_tree(
    rng: &mut StdRng,
    c: &mut Circuit,
    leaves: &[NodeId],
    profile: &CoreProfile,
    hard: bool,
    gate_counter: &mut usize,
) -> Result<NodeId, NetlistError> {
    let mut layer: Vec<NodeId> = leaves.to_vec();
    if layer.len() == 1 {
        // Single-support cone: a buffer or inverter.
        let kind = if rng.gen_bool(profile.inverter_rate) {
            GateKind::Not
        } else {
            GateKind::Buf
        };
        let g = c.add_gate(format!("g{}", bump(gate_counter)), kind, &[layer[0]])?;
        return Ok(g);
    }
    let xor_frac = if hard {
        (profile.xor_fraction * 1.8).min(0.85)
    } else {
        profile.xor_fraction
    };
    while layer.len() > 1 {
        layer.shuffle(rng);
        let mut next: Vec<NodeId> = Vec::with_capacity(layer.len() / 2 + 1);
        let mut i = 0;
        while i < layer.len() {
            let remaining = layer.len() - i;
            if remaining == 1 {
                next.push(layer[i]);
                break;
            }
            let fanin_n = if remaining >= 3 && rng.gen_bool(0.3) {
                3
            } else {
                2
            };
            let fanin = &layer[i..i + fanin_n];
            let kind = pick_gate_kind(rng, xor_frac);
            let mut g = c.add_gate(format!("g{}", bump(gate_counter)), kind, fanin)?;
            if rng.gen_bool(profile.inverter_rate) {
                g = c.add_gate(format!("g{}", bump(gate_counter)), GateKind::Not, &[g])?;
            }
            next.push(g);
            i += fanin_n;
        }
        layer = next;
    }
    Ok(layer[0])
}

fn pick_gate_kind(rng: &mut StdRng, xor_frac: f64) -> GateKind {
    if rng.gen_bool(xor_frac) {
        if rng.gen_bool(0.5) {
            GateKind::Xor
        } else {
            GateKind::Xnor
        }
    } else {
        match rng.gen_range(0..4) {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            _ => GateKind::Nor,
        }
    }
}

fn bump(counter: &mut usize) -> usize {
    let v = *counter;
    *counter += 1;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_netlist::cone::extract_cones;

    #[test]
    fn interface_is_exact() {
        let p = CoreProfile::new("t", 12, 5, 8).with_seed(42);
        let c = generate(&p).unwrap();
        assert_eq!(c.input_count(), 12);
        assert_eq!(c.output_count(), 5);
        assert_eq!(c.dff_count(), 8);
        c.validate().unwrap();
    }

    #[test]
    fn deterministic_by_seed() {
        let p = CoreProfile::new("t", 10, 3, 4).with_seed(7);
        let c1 = generate(&p).unwrap();
        let c2 = generate(&p).unwrap();
        assert_eq!(c1.node_count(), c2.node_count());
        let names1: Vec<_> = c1.iter().map(|(_, n)| (n.name.clone(), n.kind)).collect();
        let names2: Vec<_> = c2.iter().map(|(_, n)| (n.name.clone(), n.kind)).collect();
        assert_eq!(names1, names2);
    }

    #[test]
    fn different_seeds_differ() {
        let c1 = generate(&CoreProfile::new("t", 10, 3, 4).with_seed(1)).unwrap();
        let c2 = generate(&CoreProfile::new("t", 10, 3, 4).with_seed(2)).unwrap();
        let k1: Vec<_> = c1.iter().map(|(_, n)| n.kind).collect();
        let k2: Vec<_> = c2.iter().map(|(_, n)| n.kind).collect();
        assert_ne!(k1, k2, "seeds should change structure");
    }

    #[test]
    fn every_source_drives_logic() {
        let p = CoreProfile::new("t", 20, 2, 10).with_seed(3);
        let c = generate(&p).unwrap();
        let fo = c.fanouts();
        for &pi in c.inputs() {
            assert!(!fo[pi.index()].is_empty(), "floating input");
        }
        for &ff in c.dffs() {
            assert!(!fo[ff.index()].is_empty(), "floating scan cell");
        }
    }

    #[test]
    fn test_model_cones_match_profile() {
        let p = CoreProfile::new("t", 9, 4, 6).with_seed(5);
        let c = generate(&p).unwrap();
        let m = c.to_test_model().unwrap();
        let cones = extract_cones(&m.circuit).unwrap();
        assert_eq!(cones.cones().len(), p.cone_count());
    }

    #[test]
    fn overlap_knob_changes_overlap() {
        let mut lo = CoreProfile::new("lo", 60, 10, 0).with_seed(11);
        lo.overlap = 0.0;
        lo.min_cone_width = 3;
        lo.max_cone_width = 5;
        let mut hi = lo.clone();
        hi.name = "hi".into();
        hi.overlap = 1.0;
        let c_lo = generate(&lo).unwrap();
        let c_hi = generate(&hi).unwrap();
        let o_lo = extract_cones(&c_lo).unwrap().overlap_fraction();
        let o_hi = extract_cones(&c_hi).unwrap().overlap_fraction();
        assert!(o_hi > o_lo, "overlap {o_hi} should exceed {o_lo}");
    }

    #[test]
    fn single_input_profile() {
        let p = CoreProfile::new("one", 1, 1, 0).with_seed(2);
        let c = generate(&p).unwrap();
        assert_eq!(c.input_count(), 1);
        assert_eq!(c.output_count(), 1);
    }

    #[test]
    fn degenerate_profile_rejected() {
        let p = CoreProfile::new("bad", 0, 0, 0);
        assert!(generate(&p).is_err());
    }

    #[test]
    fn atpg_runs_on_generated_core() {
        use modsoc_atpg::{Atpg, AtpgOptions};
        let p = CoreProfile::new("t", 10, 5, 8).with_seed(9);
        let c = generate(&p).unwrap();
        let r = Atpg::new(AtpgOptions::default()).run(&c).unwrap();
        assert!(r.fault_coverage() > 0.9, "coverage {}", r.fault_coverage());
        assert!(r.pattern_count() > 0);
    }
}
