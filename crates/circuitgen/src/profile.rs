//! Core generation profiles, including ISCAS'89 lookalikes.

/// A generation profile: the interface is exact, the internal cone
/// structure is statistical (driven by the seed).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreProfile {
    /// Circuit name.
    pub name: String,
    /// Exact number of primary inputs.
    pub inputs: usize,
    /// Exact number of primary outputs.
    pub outputs: usize,
    /// Exact number of scan flip-flops.
    pub scan_cells: usize,
    /// Minimum cone support width (clamped to the available sources).
    pub min_cone_width: usize,
    /// Maximum cone support width (clamped to the available sources).
    pub max_cone_width: usize,
    /// Fraction of 2-input gates drawn from the XOR family; XOR-rich
    /// cones resist pattern merging and incidental detection, raising
    /// pattern counts.
    pub xor_fraction: f64,
    /// Probability of inserting an inverter between tree levels.
    pub inverter_rate: f64,
    /// Support locality in `[0, 1]`: 0 samples each cone's support from a
    /// narrow window of the source pool (nearly disjoint cones, Figure
    /// 1(a) of the paper); 1 samples uniformly from all sources (heavy
    /// overlap, Figure 1(b)).
    pub overlap: f64,
    /// Spread of per-cone difficulty in `[0, 1]`: the fraction of cones
    /// that are *hard* (max width, extra XOR mixing). Differences in this
    /// knob across cores are what create the pattern-count variation the
    /// paper's benefit hinges on.
    pub hard_cone_fraction: f64,
    /// RNG seed; two generations with equal profiles are identical.
    pub seed: u64,
}

impl CoreProfile {
    /// A balanced default profile with the given exact interface.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        scan_cells: usize,
    ) -> CoreProfile {
        CoreProfile {
            name: name.into(),
            inputs,
            outputs,
            scan_cells,
            min_cone_width: 3,
            max_cone_width: 12,
            xor_fraction: 0.15,
            inverter_rate: 0.25,
            overlap: 0.35,
            hard_cone_fraction: 0.2,
            seed: 1,
        }
    }

    /// Builder-style seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> CoreProfile {
        self.seed = seed;
        self
    }

    /// Number of logic cones the generated circuit will have
    /// (one per output plus one per scan cell).
    #[must_use]
    pub fn cone_count(&self) -> usize {
        self.outputs + self.scan_cells
    }

    /// Number of controllable sources (inputs plus scan-cell outputs).
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.inputs + self.scan_cells
    }
}

/// ISCAS'89 lookalike profiles.
///
/// Interface counts (I, O, S) are taken verbatim from Tables 1 and 2 of
/// the paper; the cone-structure knobs are calibrated so that the
/// workspace ATPG produces pattern counts in the published ballpark
/// (tens for the small cores, hundreds for the large ones) with the wide
/// cross-core variation the analysis depends on.
pub mod iscas {
    use super::CoreProfile;

    /// s713 lookalike: I=35, O=23, S=19 (paper: 52 patterns).
    #[must_use]
    pub fn s713(seed: u64) -> CoreProfile {
        CoreProfile {
            min_cone_width: 3,
            max_cone_width: 7,
            xor_fraction: 0.05,
            overlap: 0.40,
            hard_cone_fraction: 0.02,
            ..CoreProfile::new("s713", 35, 23, 19).with_seed(seed)
        }
    }

    /// s953 lookalike: I=16, O=23, S=29 (paper: 85 patterns).
    #[must_use]
    pub fn s953(seed: u64) -> CoreProfile {
        CoreProfile {
            min_cone_width: 5,
            max_cone_width: 14,
            xor_fraction: 0.32,
            overlap: 0.55,
            hard_cone_fraction: 0.40,
            ..CoreProfile::new("s953", 16, 23, 29).with_seed(seed)
        }
    }

    /// s1423 lookalike: I=17, O=5, S=74 (paper: 62 patterns).
    #[must_use]
    pub fn s1423(seed: u64) -> CoreProfile {
        CoreProfile {
            min_cone_width: 2,
            max_cone_width: 6,
            xor_fraction: 0.03,
            overlap: 0.35,
            hard_cone_fraction: 0.02,
            ..CoreProfile::new("s1423", 17, 5, 74).with_seed(seed)
        }
    }

    /// s5378 lookalike: I=35, O=49, S=179 (paper: 244 patterns).
    #[must_use]
    pub fn s5378(seed: u64) -> CoreProfile {
        CoreProfile {
            min_cone_width: 5,
            max_cone_width: 20,
            xor_fraction: 0.35,
            overlap: 0.45,
            hard_cone_fraction: 0.40,
            ..CoreProfile::new("s5378", 35, 49, 179).with_seed(seed)
        }
    }

    /// s13207 lookalike: I=31, O=121, S=669 (paper: 452 patterns).
    #[must_use]
    pub fn s13207(seed: u64) -> CoreProfile {
        CoreProfile {
            min_cone_width: 6,
            max_cone_width: 24,
            xor_fraction: 0.38,
            overlap: 0.40,
            hard_cone_fraction: 0.45,
            ..CoreProfile::new("s13207", 31, 121, 669).with_seed(seed)
        }
    }

    /// s15850 lookalike: I=14, O=87, S=597 (paper: 428 patterns).
    #[must_use]
    pub fn s15850(seed: u64) -> CoreProfile {
        CoreProfile {
            min_cone_width: 6,
            max_cone_width: 24,
            xor_fraction: 0.36,
            overlap: 0.42,
            hard_cone_fraction: 0.45,
            ..CoreProfile::new("s15850", 14, 87, 597).with_seed(seed)
        }
    }
}

/// The one ISCAS'89 circuit small enough to embed verbatim: s27
/// (4 inputs, 1 output, 3 flip-flops, 10 gates). Useful as a
/// genuine-netlist anchor for validating the ATPG against a circuit
/// whose structure is not synthetic.
pub const S27_BENCH: &str = "\
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Parse the embedded s27 netlist.
///
/// # Panics
///
/// Never panics; the embedded text is valid.
#[must_use]
pub fn s27() -> modsoc_netlist::Circuit {
    modsoc_netlist::bench_format::parse_bench("s27", S27_BENCH)
        .expect("embedded s27 netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_structure() {
        let c = s27();
        assert_eq!(c.input_count(), 4);
        assert_eq!(c.output_count(), 1);
        assert_eq!(c.dff_count(), 3);
        assert_eq!(c.gate_count(), 10);
        c.validate().unwrap();
    }

    #[test]
    fn s27_fully_testable() {
        use modsoc_atpg::{Atpg, AtpgOptions};
        let r = Atpg::new(AtpgOptions::default()).run(&s27()).unwrap();
        // s27's full-scan stuck-at fault set is fully testable.
        assert!(
            (r.fault_coverage() - 1.0).abs() < 1e-12,
            "{}",
            r.fault_coverage()
        );
        assert!(r.pattern_count() <= 12, "{} patterns", r.pattern_count());
    }

    #[test]
    fn interface_counts_match_paper() {
        let p = iscas::s713(1);
        assert_eq!((p.inputs, p.outputs, p.scan_cells), (35, 23, 19));
        let p = iscas::s953(1);
        assert_eq!((p.inputs, p.outputs, p.scan_cells), (16, 23, 29));
        let p = iscas::s1423(1);
        assert_eq!((p.inputs, p.outputs, p.scan_cells), (17, 5, 74));
        let p = iscas::s5378(1);
        assert_eq!((p.inputs, p.outputs, p.scan_cells), (35, 49, 179));
        let p = iscas::s13207(1);
        assert_eq!((p.inputs, p.outputs, p.scan_cells), (31, 121, 669));
        let p = iscas::s15850(1);
        assert_eq!((p.inputs, p.outputs, p.scan_cells), (14, 87, 597));
    }

    #[test]
    fn derived_counts() {
        let p = CoreProfile::new("x", 10, 4, 6);
        assert_eq!(p.cone_count(), 10);
        assert_eq!(p.source_count(), 16);
        assert_eq!(p.with_seed(9).seed, 9);
    }
}
