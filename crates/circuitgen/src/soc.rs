//! SOC netlist stitching: compose cores into a chip and flatten it.
//!
//! Reproduces the paper's Figure 4 (SOC1) and Figure 5 (SOC2)
//! constructions: chip inputs drive some core inputs, core outputs drive
//! other cores' inputs and the chip outputs. [`SocNetlist::flatten`]
//! produces the *monolithic* netlist — isolation "ripped out", all
//! inter-core wires direct — which is what the paper's monolithic ATPG
//! run operates on.

use modsoc_netlist::{Circuit, NetlistError, NodeId};

use crate::generator::generate;
use crate::profile::{iscas, CoreProfile};

/// What drives one core input port (or one chip output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PortSource {
    /// Driven by chip-level primary input `index`.
    ChipInput(usize),
    /// Driven by output port `output` of core `core`.
    CoreOutput {
        /// Index of the driving core.
        core: usize,
        /// Output port index on that core.
        output: usize,
    },
}

/// A structural SOC: cores plus a complete wiring of every core input and
/// every chip output.
#[derive(Debug, Clone)]
pub struct SocNetlist {
    name: String,
    cores: Vec<Circuit>,
    /// Per core, per input port: its driver.
    input_wiring: Vec<Vec<PortSource>>,
    /// Chip outputs, each a core output.
    chip_outputs: Vec<(usize, usize)>,
    chip_inputs: usize,
}

impl SocNetlist {
    /// Start building an SOC with the given chip input count.
    #[must_use]
    pub fn builder(name: impl Into<String>, chip_inputs: usize) -> SocNetlistBuilder {
        SocNetlistBuilder {
            name: name.into(),
            chip_inputs,
            cores: Vec::new(),
            input_wiring: Vec::new(),
            chip_outputs: Vec::new(),
        }
    }

    /// The SOC name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The embedded cores, in index order.
    #[must_use]
    pub fn cores(&self) -> &[Circuit] {
        &self.cores
    }

    /// Number of chip-level primary inputs.
    #[must_use]
    pub fn chip_input_count(&self) -> usize {
        self.chip_inputs
    }

    /// Number of chip-level primary outputs.
    #[must_use]
    pub fn chip_output_count(&self) -> usize {
        self.chip_outputs.len()
    }

    /// Total scan cells across all cores.
    #[must_use]
    pub fn total_scan_cells(&self) -> usize {
        self.cores.iter().map(Circuit::dff_count).sum()
    }

    /// Flatten into one monolithic netlist with all isolation removed:
    /// every inter-core wire becomes a direct connection, core input
    /// ports disappear, and only chip-level pins remain as primary I/O.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PortMismatch`] if the core-to-core wiring
    /// graph is cyclic (combinational cycles through cores cannot be
    /// flattened; wire through flip-flop boundaries instead).
    pub fn flatten(&self) -> Result<Circuit, NetlistError> {
        self.flatten_inner(false)
    }

    /// Flatten with IEEE 1500-style isolation *in place*: every core is
    /// first wrapped with dedicated cells on each I/O
    /// (see [`modsoc_netlist::wrapper::wrap_circuit`]), then stitched.
    /// This is the physical modular-test configuration — the netlist on
    /// which stand-alone core patterns are portable, at the cost of the
    /// paper's `ISOCOST` wrapper bits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SocNetlist::flatten`].
    pub fn flatten_wrapped(&self) -> Result<Circuit, NetlistError> {
        self.flatten_inner(true)
    }

    fn flatten_inner(&self, wrapped: bool) -> Result<Circuit, NetlistError> {
        let wrapped_cores: Vec<Circuit> = if wrapped {
            self.cores
                .iter()
                .map(|c| modsoc_netlist::wrapper::wrap_circuit(c).map(|w| w.circuit))
                .collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };
        let cores: Vec<&Circuit> = if wrapped {
            wrapped_cores.iter().collect()
        } else {
            self.cores.iter().collect()
        };
        let suffix = if wrapped { "wrapped" } else { "flat" };
        let mut flat = Circuit::new(format!("{}.{suffix}", self.name));
        let chip_ins: Vec<NodeId> = (0..self.chip_inputs)
            .map(|i| flat.add_input(format!("in{i}")))
            .collect();

        // Order cores so that every core's drivers are flattened first.
        let order = self.core_order()?;

        // Per core, the flat node id of each of its output ports.
        let mut core_outputs: Vec<Vec<NodeId>> = vec![Vec::new(); cores.len()];
        for ci in order {
            let core = cores[ci];
            let prefix = format!("c{ci}.");
            // Resolve this core's input drivers.
            let mut map: Vec<Option<NodeId>> = vec![None; core.node_count()];
            for (port, &pi) in core.inputs().iter().enumerate() {
                let src = match self.input_wiring[ci][port] {
                    PortSource::ChipInput(k) => chip_ins[k],
                    PortSource::CoreOutput { core: c2, output } => core_outputs[c2][output],
                };
                map[pi.index()] = Some(src);
            }
            // Deferred DFFs first (their outputs are sources inside the core).
            for &ff in core.dffs() {
                let id = flat.add_dff_deferred(format!("{prefix}{}", core.node(ff).name))?;
                map[ff.index()] = Some(id);
            }
            // Combinational body in topological order.
            for id in core.topo_order()? {
                if map[id.index()].is_some() {
                    continue;
                }
                let node = core.node(id);
                let fanin: Vec<NodeId> = node
                    .fanin
                    .iter()
                    .map(|f| map[f.index()].expect("topo order places fanins first"))
                    .collect();
                let nid = flat.add_gate(format!("{prefix}{}", node.name), node.kind, &fanin)?;
                map[id.index()] = Some(nid);
            }
            // Close DFF fanins.
            for &ff in core.dffs() {
                let data = core.node(ff).fanin.first().copied().ok_or_else(|| {
                    NetlistError::PortMismatch {
                        message: format!("core {ci} has an unwired flip-flop"),
                    }
                })?;
                let ffid = map[ff.index()].expect("dff placed");
                let dataid = map[data.index()].expect("all nodes placed");
                flat.set_fanin(ffid, &[dataid])?;
            }
            core_outputs[ci] = core
                .outputs()
                .iter()
                .map(|o| map[o.index()].expect("all nodes placed"))
                .collect();
        }
        for &(ci, port) in &self.chip_outputs {
            flat.mark_output(core_outputs[ci][port]);
        }
        flat.validate()?;
        Ok(flat)
    }

    /// Topological order of the core graph (edges: core output → core
    /// input).
    fn core_order(&self) -> Result<Vec<usize>, NetlistError> {
        let n = self.cores.len();
        let mut indegree = vec![0usize; n];
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, wiring) in self.input_wiring.iter().enumerate() {
            let mut seen = vec![false; n];
            for src in wiring {
                if let PortSource::CoreOutput { core, .. } = *src {
                    if !seen[core] {
                        seen[core] = true;
                        deps[core].push(ci);
                        indegree[ci] += 1;
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &w in &deps[v] {
                indegree[w] -= 1;
                if indegree[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if queue.len() != n {
            return Err(NetlistError::PortMismatch {
                message: "core wiring graph is cyclic".into(),
            });
        }
        Ok(queue)
    }
}

/// Builder for [`SocNetlist`]; validates the wiring as it is added.
#[derive(Debug)]
pub struct SocNetlistBuilder {
    name: String,
    chip_inputs: usize,
    cores: Vec<Circuit>,
    input_wiring: Vec<Vec<Option<PortSource>>>,
    chip_outputs: Vec<(usize, usize)>,
}

impl SocNetlistBuilder {
    /// Add a core; returns its index.
    pub fn add_core(&mut self, core: Circuit) -> usize {
        self.input_wiring.push(vec![None; core.input_count()]);
        self.cores.push(core);
        self.cores.len() - 1
    }

    /// Wire one core input port.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PortMismatch`] for out-of-range indices or
    /// double-driven ports.
    pub fn wire(
        &mut self,
        core: usize,
        port: usize,
        source: PortSource,
    ) -> Result<(), NetlistError> {
        self.check_source(source)?;
        let slot = self
            .input_wiring
            .get_mut(core)
            .and_then(|w| w.get_mut(port))
            .ok_or_else(|| NetlistError::PortMismatch {
                message: format!("core {core} has no input port {port}"),
            })?;
        if slot.is_some() {
            return Err(NetlistError::PortMismatch {
                message: format!("core {core} input {port} driven twice"),
            });
        }
        *slot = Some(source);
        Ok(())
    }

    /// Wire a contiguous range of a core's inputs from consecutive chip
    /// inputs starting at `chip_start`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SocNetlistBuilder::wire`].
    pub fn wire_chip_range(
        &mut self,
        core: usize,
        port_start: usize,
        chip_start: usize,
        width: usize,
    ) -> Result<(), NetlistError> {
        for k in 0..width {
            self.wire(core, port_start + k, PortSource::ChipInput(chip_start + k))?;
        }
        Ok(())
    }

    /// Wire a contiguous range of a core's inputs from consecutive output
    /// ports of another core.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SocNetlistBuilder::wire`].
    pub fn wire_core_range(
        &mut self,
        core: usize,
        port_start: usize,
        from_core: usize,
        from_output_start: usize,
        width: usize,
    ) -> Result<(), NetlistError> {
        for k in 0..width {
            self.wire(
                core,
                port_start + k,
                PortSource::CoreOutput {
                    core: from_core,
                    output: from_output_start + k,
                },
            )?;
        }
        Ok(())
    }

    /// Declare a chip output driven by a core output port.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PortMismatch`] for out-of-range indices.
    pub fn chip_output(&mut self, core: usize, output: usize) -> Result<(), NetlistError> {
        self.check_source(PortSource::CoreOutput { core, output })?;
        self.chip_outputs.push((core, output));
        Ok(())
    }

    /// Declare a contiguous range of chip outputs from a core.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PortMismatch`] for out-of-range indices.
    pub fn chip_output_range(
        &mut self,
        core: usize,
        output_start: usize,
        width: usize,
    ) -> Result<(), NetlistError> {
        for k in 0..width {
            self.chip_output(core, output_start + k)?;
        }
        Ok(())
    }

    fn check_source(&self, source: PortSource) -> Result<(), NetlistError> {
        match source {
            PortSource::ChipInput(k) if k >= self.chip_inputs => Err(NetlistError::PortMismatch {
                message: format!("chip input {k} out of range ({} inputs)", self.chip_inputs),
            }),
            PortSource::CoreOutput { core, output } => {
                let c = self
                    .cores
                    .get(core)
                    .ok_or_else(|| NetlistError::PortMismatch {
                        message: format!("no core {core}"),
                    })?;
                if output >= c.output_count() {
                    return Err(NetlistError::PortMismatch {
                        message: format!("core {core} has no output {output}"),
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Finish building; every core input must be driven.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PortMismatch`] listing the first unwired
    /// port.
    pub fn build(self) -> Result<SocNetlist, NetlistError> {
        let mut wiring = Vec::with_capacity(self.cores.len());
        for (ci, w) in self.input_wiring.into_iter().enumerate() {
            let mut out = Vec::with_capacity(w.len());
            for (port, s) in w.into_iter().enumerate() {
                out.push(s.ok_or_else(|| NetlistError::PortMismatch {
                    message: format!("core {ci} input {port} is not driven"),
                })?);
            }
            wiring.push(out);
        }
        Ok(SocNetlist {
            name: self.name,
            cores: self.cores,
            input_wiring: wiring,
            chip_outputs: self.chip_outputs,
            chip_inputs: self.chip_inputs,
        })
    }
}

/// Build the paper's SOC1 (Figure 4): s713 + s953 + 3×s1423 lookalikes.
///
/// Wire budget exactly as in the figure: chip inputs 35→core1 (s713) and
/// 16→core2 (s953); core1's 23 outputs split 17→core3 + 6→core4; core2's
/// 23 outputs split 11→core4 + 12→core5; core3's 5 outputs →core5; chip
/// outputs are core4's 5 and core5's 5. Chip interface: I=51, O=10 —
/// matching Table 1's top-level row.
///
/// # Errors
///
/// Propagates generation errors (none for the built-in profiles).
pub fn soc1(seed: u64) -> Result<SocNetlist, NetlistError> {
    let mut b = SocNetlist::builder("SOC1", 51);
    let c1 = b.add_core(generate(&named(iscas::s713(seed ^ 0x01), "core1_s713"))?);
    let c2 = b.add_core(generate(&named(iscas::s953(seed ^ 0x02), "core2_s953"))?);
    let c3 = b.add_core(generate(&named(iscas::s1423(seed ^ 0x03), "core3_s1423"))?);
    let c4 = b.add_core(generate(&named(iscas::s1423(seed ^ 0x04), "core4_s1423"))?);
    let c5 = b.add_core(generate(&named(iscas::s1423(seed ^ 0x05), "core5_s1423"))?);
    b.wire_chip_range(c1, 0, 0, 35)?;
    b.wire_chip_range(c2, 0, 35, 16)?;
    b.wire_core_range(c3, 0, c1, 0, 17)?;
    b.wire_core_range(c4, 0, c1, 17, 6)?;
    b.wire_core_range(c4, 6, c2, 0, 11)?;
    b.wire_core_range(c5, 0, c2, 11, 12)?;
    b.wire_core_range(c5, 12, c3, 0, 5)?;
    b.chip_output_range(c4, 0, 5)?;
    b.chip_output_range(c5, 0, 5)?;
    b.build()
}

/// Build the paper's SOC2 (Figure 5): s953 + s5378 + s13207 + s15850
/// lookalikes.
///
/// Chip inputs (14) feed s15850; s15850's 87 outputs split 31→s13207 +
/// 35→s5378 + 16→s953 + 5→chip; chip outputs are s13207's 121 + s5378's
/// 49 + s953's 23 + those 5 (total 198). Chip interface: I=14, O=198 —
/// matching Table 2's top-level row.
///
/// # Errors
///
/// Propagates generation errors (none for the built-in profiles).
pub fn soc2(seed: u64) -> Result<SocNetlist, NetlistError> {
    let mut b = SocNetlist::builder("SOC2", 14);
    let c1 = b.add_core(generate(&named(iscas::s953(seed ^ 0x11), "core1_s953"))?);
    let c2 = b.add_core(generate(&named(iscas::s5378(seed ^ 0x12), "core2_s5378"))?);
    let c3 = b.add_core(generate(&named(
        iscas::s13207(seed ^ 0x13),
        "core3_s13207",
    ))?);
    let c4 = b.add_core(generate(&named(
        iscas::s15850(seed ^ 0x14),
        "core4_s15850",
    ))?);
    b.wire_chip_range(c4, 0, 0, 14)?;
    b.wire_core_range(c3, 0, c4, 0, 31)?;
    b.wire_core_range(c2, 0, c4, 31, 35)?;
    b.wire_core_range(c1, 0, c4, 66, 16)?;
    b.chip_output_range(c3, 0, 121)?;
    b.chip_output_range(c2, 0, 49)?;
    b.chip_output_range(c1, 0, 23)?;
    b.chip_output_range(c4, 82, 5)?;
    b.build()
}

fn named(mut p: CoreProfile, name: &str) -> CoreProfile {
    p.name = name.to_string();
    p
}

/// A tiny two-core SOC used by examples and tests (fast to ATPG even in
/// debug builds).
///
/// # Errors
///
/// Propagates generation errors.
pub fn mini_soc(seed: u64) -> Result<SocNetlist, NetlistError> {
    let mut a = CoreProfile::new("coreA", 8, 6, 10).with_seed(seed ^ 0xA);
    a.xor_fraction = 0.3;
    let mut bprof = CoreProfile::new("coreB", 6, 4, 6).with_seed(seed ^ 0xB);
    bprof.xor_fraction = 0.1;
    let mut b = SocNetlist::builder("MiniSOC", 8);
    let ca = b.add_core(generate(&a)?);
    let cb = b.add_core(generate(&bprof)?);
    b.wire_chip_range(ca, 0, 0, 8)?;
    b.wire_core_range(cb, 0, ca, 0, 6)?;
    b.chip_output_range(cb, 0, 4)?;
    b.chip_output_range(ca, 0, 2)?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soc1_interface_matches_table1() {
        let soc = soc1(1).unwrap();
        assert_eq!(soc.chip_input_count(), 51);
        assert_eq!(soc.chip_output_count(), 10);
        assert_eq!(soc.total_scan_cells(), 19 + 29 + 3 * 74);
        assert_eq!(soc.cores().len(), 5);
    }

    #[test]
    fn soc1_flattens_to_monolithic() {
        let soc = soc1(1).unwrap();
        let flat = soc.flatten().unwrap();
        assert_eq!(flat.input_count(), 51);
        assert_eq!(flat.output_count(), 10);
        assert_eq!(flat.dff_count(), 270); // Table 1: mono S = 270
        flat.validate().unwrap();
    }

    #[test]
    fn soc2_interface_matches_table2() {
        let soc = soc2(1).unwrap();
        assert_eq!(soc.chip_input_count(), 14);
        assert_eq!(soc.chip_output_count(), 198);
        let flat = soc.flatten().unwrap();
        assert_eq!(flat.dff_count(), 1474); // Table 2: mono S = 1474
        assert_eq!(flat.input_count(), 14);
        assert_eq!(flat.output_count(), 198);
    }

    #[test]
    fn mini_soc_flattens() {
        let soc = mini_soc(3).unwrap();
        let flat = soc.flatten().unwrap();
        assert_eq!(flat.input_count(), 8);
        assert_eq!(flat.output_count(), 6);
        assert_eq!(flat.dff_count(), 16);
    }

    #[test]
    fn unwired_port_rejected() {
        let mut b = SocNetlist::builder("x", 2);
        let core = generate(&CoreProfile::new("c", 3, 1, 0).with_seed(1)).unwrap();
        let ci = b.add_core(core);
        b.wire(ci, 0, PortSource::ChipInput(0)).unwrap();
        // ports 1, 2 unwired
        assert!(matches!(b.build(), Err(NetlistError::PortMismatch { .. })));
    }

    #[test]
    fn double_drive_rejected() {
        let mut b = SocNetlist::builder("x", 2);
        let core = generate(&CoreProfile::new("c", 1, 1, 0).with_seed(1)).unwrap();
        let ci = b.add_core(core);
        b.wire(ci, 0, PortSource::ChipInput(0)).unwrap();
        let err = b.wire(ci, 0, PortSource::ChipInput(1)).unwrap_err();
        assert!(matches!(err, NetlistError::PortMismatch { .. }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = SocNetlist::builder("x", 1);
        let core = generate(&CoreProfile::new("c", 1, 1, 0).with_seed(1)).unwrap();
        let ci = b.add_core(core);
        assert!(b.wire(ci, 0, PortSource::ChipInput(5)).is_err());
        assert!(b.chip_output(ci, 9).is_err());
        assert!(b.wire(ci, 9, PortSource::ChipInput(0)).is_err());
    }

    #[test]
    fn cyclic_core_graph_rejected_at_flatten() {
        // Two cores wired head-to-tail both ways.
        let mut b = SocNetlist::builder("cyc", 0);
        let core1 = generate(&CoreProfile::new("c1", 1, 1, 0).with_seed(1)).unwrap();
        let core2 = generate(&CoreProfile::new("c2", 1, 1, 0).with_seed(2)).unwrap();
        let i1 = b.add_core(core1);
        let i2 = b.add_core(core2);
        b.wire(
            i1,
            0,
            PortSource::CoreOutput {
                core: i2,
                output: 0,
            },
        )
        .unwrap();
        b.wire(
            i2,
            0,
            PortSource::CoreOutput {
                core: i1,
                output: 0,
            },
        )
        .unwrap();
        b.chip_output(i1, 0).unwrap();
        let soc = b.build().unwrap();
        assert!(matches!(
            soc.flatten(),
            Err(NetlistError::PortMismatch { .. })
        ));
    }

    #[test]
    fn flat_netlist_gate_count_is_sum_of_cores() {
        let soc = mini_soc(1).unwrap();
        let flat = soc.flatten().unwrap();
        let sum: usize = soc.cores().iter().map(Circuit::gate_count).sum();
        assert_eq!(flat.gate_count(), sum);
    }
}
