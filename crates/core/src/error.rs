//! Error type for the analysis crate.

use std::fmt;

/// Errors from TDV analysis, reconstruction and netlist-backed
/// experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The SOC data model reported a problem.
    Soc(modsoc_soc::SocError),
    /// A netlist problem during an experiment.
    Netlist(modsoc_netlist::NetlistError),
    /// An ATPG problem during an experiment.
    Atpg(modsoc_atpg::AtpgError),
    /// The supplied measured monolithic pattern count violates the
    /// Equation 2 lower bound.
    TmonoBelowBound {
        /// The supplied monolithic pattern count.
        t_mono: u64,
        /// The maximum per-core pattern count it must not undercut.
        max_core: u64,
    },
    /// A campaign spec could not be parsed or validated.
    Campaign {
        /// What was wrong with the spec.
        message: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Soc(e) => write!(f, "soc error: {e}"),
            AnalysisError::Netlist(e) => write!(f, "netlist error: {e}"),
            AnalysisError::Atpg(e) => write!(f, "atpg error: {e}"),
            AnalysisError::TmonoBelowBound { t_mono, max_core } => write!(
                f,
                "monolithic pattern count {t_mono} is below the equation 2 bound {max_core}"
            ),
            AnalysisError::Campaign { message } => write!(f, "campaign spec error: {message}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Soc(e) => Some(e),
            AnalysisError::Netlist(e) => Some(e),
            AnalysisError::Atpg(e) => Some(e),
            AnalysisError::TmonoBelowBound { .. } => None,
            AnalysisError::Campaign { .. } => None,
        }
    }
}

impl From<modsoc_soc::SocError> for AnalysisError {
    fn from(e: modsoc_soc::SocError) -> AnalysisError {
        AnalysisError::Soc(e)
    }
}

impl From<modsoc_netlist::NetlistError> for AnalysisError {
    fn from(e: modsoc_netlist::NetlistError) -> AnalysisError {
        AnalysisError::Netlist(e)
    }
}

impl From<modsoc_atpg::AtpgError> for AnalysisError {
    fn from(e: modsoc_atpg::AtpgError) -> AnalysisError {
        AnalysisError::Atpg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let e: AnalysisError = modsoc_soc::SocError::Empty.into();
        assert!(e.to_string().contains("soc"));
        assert!(e.source().is_some());
        let e = AnalysisError::TmonoBelowBound {
            t_mono: 3,
            max_core: 10,
        };
        assert!(e.to_string().contains("equation 2"));
        assert!(e.source().is_none());
    }
}
