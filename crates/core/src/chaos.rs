//! Chaos / fault-injection harness for the experiment pipeline.
//!
//! Feeds deliberately corrupted `.bench`/`.soc` sources and randomly
//! injected [`RunBudget`]s through the real parse → ATPG → analysis
//! pipeline and classifies every case: the robustness contract is that
//! each one terminates with a typed error or a (possibly partial)
//! result — never a panic, never a hang. The corruption operators model
//! what actually happens to interchange files in the wild: truncation
//! (disk/pipe), bit flips (links), editor accidents (dropped/duplicated
//! lines), absurd numbers, self-referential nets, and width mismatches.
//!
//! Everything is seed-deterministic so a failing case number reproduces
//! exactly.

use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_netlist::bench_format::parse_bench;
use modsoc_soc::format::parse_soc;

use crate::analysis::SocTdvAnalysis;
use crate::runctl::{analyze_soc_guarded, guard, guard_result, RunBudget};
use crate::tdv::TdvOptions;

/// Deterministic SplitMix64 generator for the harness (self-contained so
/// the chaos behaviour never shifts under an RNG dependency change).
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Seeded generator.
    #[must_use]
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// `true` with probability `percent / 100`.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.next_u64() % 100 < percent
    }
}

/// One corruption operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the source at a random character (partial write / pipe).
    TruncateChars,
    /// Keep only a random-length line prefix.
    TruncateLines,
    /// Delete one random line.
    DeleteLine,
    /// Duplicate one random line (duplicate net / core definitions).
    DuplicateLine,
    /// Flip one bit of one byte (re-validated as UTF-8 lossily).
    FlipBit,
    /// Replace one run of digits with a near-`u64::MAX` value (absurd
    /// scan-cell / pattern counts).
    InflateNumber,
    /// Replace one run of digits with `0`.
    ZeroNumber,
    /// Drop one closing parenthesis (unterminated line).
    DropParen,
    /// Make one `x = GATE(...)` line self-referential (combinational
    /// cycle).
    SelfLoop,
    /// Insert a line of garbage tokens.
    GarbageLine,
}

/// Every operator, for sweep-style tests.
pub const ALL_CORRUPTIONS: [Corruption; 10] = [
    Corruption::TruncateChars,
    Corruption::TruncateLines,
    Corruption::DeleteLine,
    Corruption::DuplicateLine,
    Corruption::FlipBit,
    Corruption::InflateNumber,
    Corruption::ZeroNumber,
    Corruption::DropParen,
    Corruption::SelfLoop,
    Corruption::GarbageLine,
];

impl Corruption {
    /// Apply this operator to `input`.
    #[must_use]
    pub fn apply(self, input: &str, rng: &mut ChaosRng) -> String {
        match self {
            Corruption::TruncateChars => {
                let cut = rng.below(input.chars().count() + 1);
                input.chars().take(cut).collect()
            }
            Corruption::TruncateLines => {
                let lines: Vec<&str> = input.lines().collect();
                let keep = rng.below(lines.len() + 1);
                lines[..keep].join("\n")
            }
            Corruption::DeleteLine => mutate_line(input, rng, |_, _| None),
            Corruption::DuplicateLine => {
                mutate_line(input, rng, |line, _| Some(format!("{line}\n{line}")))
            }
            Corruption::FlipBit => {
                let mut bytes = input.as_bytes().to_vec();
                if !bytes.is_empty() {
                    let at = rng.below(bytes.len());
                    let bit = rng.below(8);
                    bytes[at] ^= 1 << bit;
                }
                String::from_utf8_lossy(&bytes).into_owned()
            }
            Corruption::InflateNumber => replace_digit_run(input, rng, "18446744073709551615"),
            Corruption::ZeroNumber => replace_digit_run(input, rng, "0"),
            Corruption::DropParen => {
                let parens: Vec<usize> = input
                    .char_indices()
                    .filter(|&(_, c)| c == ')')
                    .map(|(i, _)| i)
                    .collect();
                if parens.is_empty() {
                    return input.to_string();
                }
                let at = parens[rng.below(parens.len())];
                let mut out = String::with_capacity(input.len());
                out.push_str(&input[..at]);
                out.push_str(&input[at + 1..]);
                out
            }
            Corruption::SelfLoop => mutate_line(input, rng, |line, _| {
                let (lhs, rhs) = line.split_once('=')?;
                let lhs = lhs.trim();
                let open = rhs.find('(')?;
                let close = rhs.rfind(')')?;
                if close <= open || lhs.is_empty() {
                    return None;
                }
                Some(format!(
                    "{lhs} = {}({lhs}{}",
                    rhs[..open].trim(),
                    &rhs[close..]
                ))
            }),
            Corruption::GarbageLine => {
                let garbage = [
                    "%%%###",
                    "= = = (((",
                    "NAND NAND",
                    "\u{1F980} \u{FFFD}",
                    "\0\0",
                ];
                let g = garbage[rng.below(garbage.len())];
                let lines: Vec<&str> = input.lines().collect();
                let at = rng.below(lines.len() + 1);
                let mut out: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
                out.insert(at, g.to_string());
                out.join("\n")
            }
        }
    }
}

/// Replace one randomly chosen non-empty line via `f`; `None` deletes it
/// (or leaves the input unchanged for `SelfLoop`-style operators that
/// found no applicable line).
fn mutate_line(
    input: &str,
    rng: &mut ChaosRng,
    f: impl Fn(&str, &mut ChaosRng) -> Option<String>,
) -> String {
    let lines: Vec<&str> = input.lines().collect();
    if lines.is_empty() {
        return input.to_string();
    }
    let at = rng.below(lines.len());
    let mut out: Vec<String> = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if i == at {
            match f(line, rng) {
                Some(replacement) => out.push(replacement),
                None => continue,
            }
        } else {
            out.push((*line).to_string());
        }
    }
    out.join("\n")
}

/// Replace one randomly chosen maximal digit run with `with`.
fn replace_digit_run(input: &str, rng: &mut ChaosRng, with: &str) -> String {
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = None;
    for (i, c) in input.char_indices() {
        match (c.is_ascii_digit(), start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                runs.push((s, i));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        runs.push((s, input.len()));
    }
    if runs.is_empty() {
        return input.to_string();
    }
    let (s, e) = runs[rng.below(runs.len())];
    format!("{}{}{}", &input[..s], with, &input[e..])
}

/// Corrupt `input` with 1–3 randomly chosen operators.
#[must_use]
pub fn corrupt(input: &str, rng: &mut ChaosRng) -> String {
    let ops = 1 + rng.below(3);
    let mut out = input.to_string();
    for _ in 0..ops {
        let op = ALL_CORRUPTIONS[rng.below(ALL_CORRUPTIONS.len())];
        out = op.apply(&out, rng);
    }
    out
}

/// A randomly bounded budget: every chaos ATPG run is guaranteed to
/// terminate quickly, and budget exhaustion itself is injected at random
/// points (zero timeouts, tiny backtrack pools, pre-cancellation).
#[must_use]
pub fn random_budget(rng: &mut ChaosRng) -> RunBudget {
    let mut budget = RunBudget::unlimited()
        .with_max_patterns(1 + rng.below(96))
        .with_max_backtracks(rng.below(64) as u64);
    if rng.chance(25) {
        budget = budget.with_timeout(std::time::Duration::from_millis(rng.below(5) as u64));
    }
    if rng.chance(10) {
        budget.cancel();
    }
    budget
}

/// Classification counters for a chaos sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Cases run.
    pub cases: usize,
    /// Pipeline completed normally.
    pub ok: usize,
    /// Pipeline returned a partial result on a tripped budget.
    pub partial: usize,
    /// Pipeline rejected the input with a typed error.
    pub typed_errors: usize,
    /// Analysis degraded gracefully: some cores failed with a typed
    /// diagnostic but healthy cores still produced rows (`.soc` sweeps).
    pub degraded: usize,
    /// Panic messages that escaped to the guard — the contract is that
    /// this stays empty.
    pub panics: Vec<String>,
}

impl ChaosReport {
    /// Whether every case honoured the no-panic contract.
    #[must_use]
    pub fn no_panics(&self) -> bool {
        self.panics.is_empty()
    }
}

/// How a single chaos case ended (the per-case unit the pool fans out).
#[derive(Debug, Clone)]
enum CaseClass {
    Ok,
    Partial,
    TypedError,
    Degraded,
    Panicked(String),
}

/// Derive the RNG for one case: each case owns an independent
/// SplitMix64 stream seeded from `(seed, case)`, so cases are mutually
/// independent and a parallel sweep classifies exactly the same inputs
/// as a serial one — determinism by construction, not by scheduling.
#[must_use]
pub fn case_rng(seed: u64, case: usize) -> ChaosRng {
    ChaosRng::new(seed ^ (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Fold per-case classifications (in case order) into a report.
fn collect_report(cases: Vec<CaseClass>) -> ChaosReport {
    let mut report = ChaosReport {
        cases: cases.len(),
        ..ChaosReport::default()
    };
    for class in cases {
        match class {
            CaseClass::Ok => report.ok += 1,
            CaseClass::Partial => report.partial += 1,
            CaseClass::TypedError => report.typed_errors += 1,
            CaseClass::Degraded => report.degraded += 1,
            CaseClass::Panicked(msg) => report.panics.push(msg),
        }
    }
    report
}

fn bench_chaos_case(base: &str, case: usize, seed: u64) -> CaseClass {
    let mut rng = case_rng(seed, case);
    let source = corrupt(base, &mut rng);
    let budget = random_budget(&mut rng);
    match guard(|| parse_bench("chaos", &source)) {
        Err(failure) => CaseClass::Panicked(format!("case {case} (parse): {failure}")),
        Ok(Err(err)) => {
            let _ = err.to_string(); // Display must not panic either.
            CaseClass::TypedError
        }
        Ok(Ok(circuit)) => {
            let engine = Atpg::new(AtpgOptions::default());
            match guard_result(|| engine.run_budgeted(&circuit, &budget)) {
                Ok(result) if result.exhausted.is_some() => CaseClass::Partial,
                Ok(_) => CaseClass::Ok,
                Err(crate::runctl::CoreFailure::Panicked(msg)) => {
                    CaseClass::Panicked(format!("case {case} (atpg): {msg}"))
                }
                Err(_) => CaseClass::TypedError,
            }
        }
    }
}

fn soc_chaos_case(base: &str, case: usize, seed: u64, options: &TdvOptions) -> CaseClass {
    let mut rng = case_rng(seed, case);
    let source = corrupt(base, &mut rng);
    match guard(|| parse_soc(&source)) {
        Err(failure) => CaseClass::Panicked(format!("case {case} (parse): {failure}")),
        Ok(Err(err)) => {
            let _ = err.to_string();
            CaseClass::TypedError
        }
        Ok(Ok(soc)) => {
            match guard(|| {
                let completion = analyze_soc_guarded(&soc, options);
                // The unguarded analysis must at worst return a typed
                // error on the same input (saturating equations).
                let strict = SocTdvAnalysis::compute(&soc, options);
                (completion, strict.is_ok())
            }) {
                Err(failure) => CaseClass::Panicked(format!("case {case} (analysis): {failure}")),
                Ok((completion, _)) => {
                    if completion.failed_cores().is_empty() {
                        CaseClass::Ok
                    } else {
                        CaseClass::Degraded
                    }
                }
            }
        }
    }
}

/// Sweep `cases` corrupted variants of a valid `.bench` source through
/// parse → budgeted ATPG.
#[must_use]
pub fn run_bench_chaos(base: &str, cases: usize, seed: u64) -> ChaosReport {
    run_bench_chaos_jobs(base, cases, seed, 1)
}

/// [`run_bench_chaos`] fanned across `jobs` pool workers (`0` = auto).
/// Per-case RNG derivation ([`case_rng`]) makes the report identical to
/// the serial sweep at any job count.
#[must_use]
pub fn run_bench_chaos_jobs(base: &str, cases: usize, seed: u64, jobs: usize) -> ChaosReport {
    let classes = crate::parallel::WorkerPool::new(jobs.max(1))
        .map_indices(cases, |case| bench_chaos_case(base, case, seed));
    collect_report(classes)
}

/// Sweep `cases` corrupted variants of a valid `.soc` source through
/// parse → guarded per-core TDV analysis.
#[must_use]
pub fn run_soc_chaos(base: &str, cases: usize, seed: u64) -> ChaosReport {
    run_soc_chaos_jobs(base, cases, seed, 1)
}

/// [`run_soc_chaos`] fanned across `jobs` pool workers (`0` = auto),
/// with the same report at any job count.
#[must_use]
pub fn run_soc_chaos_jobs(base: &str, cases: usize, seed: u64, jobs: usize) -> ChaosReport {
    let options = TdvOptions::tables_1_2();
    let classes = crate::parallel::WorkerPool::new(jobs.max(1))
        .map_indices(cases, |case| soc_chaos_case(base, case, seed, &options));
    collect_report(classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nn1 = NAND(a, b)\nn2 = NAND(b, c)\ny = NAND(n1, n2)\n";

    #[test]
    fn corruption_operators_are_deterministic() {
        for op in ALL_CORRUPTIONS {
            let a = op.apply(BENCH, &mut ChaosRng::new(9));
            let b = op.apply(BENCH, &mut ChaosRng::new(9));
            assert_eq!(a, b, "{op:?}");
        }
        assert_eq!(
            corrupt(BENCH, &mut ChaosRng::new(3)),
            corrupt(BENCH, &mut ChaosRng::new(3))
        );
    }

    #[test]
    fn self_loop_operator_creates_cycle_candidate() {
        // Applied to a line with an assignment, the self-loop operator
        // must reference the LHS on its own RHS.
        let src = "y = NAND(a, b)";
        let out = Corruption::SelfLoop.apply(src, &mut ChaosRng::new(0));
        assert!(out.contains("NAND(y"), "{out}");
    }

    #[test]
    fn inflate_number_plants_absurd_value() {
        let src = "core c1 s=12 t=34";
        let out = Corruption::InflateNumber.apply(src, &mut ChaosRng::new(1));
        assert!(out.contains("18446744073709551615"), "{out}");
    }

    #[test]
    fn small_bench_sweep_never_panics() {
        let report = run_bench_chaos(BENCH, 50, 0xC0FFEE);
        assert_eq!(report.cases, 50);
        assert!(report.no_panics(), "{:?}", report.panics);
        assert_eq!(
            report.ok + report.partial + report.typed_errors,
            report.cases
        );
    }

    #[test]
    fn case_rng_streams_are_independent_of_sweep_order() {
        // The derivation only depends on (seed, case), never on how many
        // cases ran before — the property the parallel sweep rests on.
        let a = corrupt(BENCH, &mut case_rng(7, 13));
        let b = corrupt(BENCH, &mut case_rng(7, 13));
        assert_eq!(a, b);
        let other = corrupt(BENCH, &mut case_rng(7, 14));
        // Not a hard guarantee, but these streams diverge immediately.
        assert_ne!(a, other);
    }

    #[test]
    fn parallel_bench_sweep_matches_serial() {
        let serial = run_bench_chaos(BENCH, 40, 0xDECADE);
        for jobs in [2, 4] {
            let parallel = run_bench_chaos_jobs(BENCH, 40, 0xDECADE, jobs);
            assert_eq!(parallel.cases, serial.cases, "jobs={jobs}");
            assert_eq!(parallel.panics, serial.panics, "jobs={jobs}");
            // Parse-level classification never depends on scheduling.
            assert_eq!(parallel.typed_errors, serial.typed_errors, "jobs={jobs}");
            // Ok-vs-partial can flip only for wall-clock (timeout) budgets,
            // which are load-dependent even serially; the sum cannot.
            assert_eq!(
                parallel.ok + parallel.partial,
                serial.ok + serial.partial,
                "jobs={jobs}"
            );
        }
    }

    const SOC: &str =
        "soc chaos\ncore top i=8 o=5 b=0 s=0 t=2 children=a,b\ncore a i=4 o=3 b=0 s=20 t=100\ncore b i=2 o=2 b=0 s=10 t=50\n";

    #[test]
    fn parallel_soc_sweep_is_identical_to_serial() {
        // No wall-clock budgets in the `.soc` path: exact report equality.
        let serial = run_soc_chaos(SOC, 60, 0xFEED);
        for jobs in [0, 2, 4] {
            let parallel = run_soc_chaos_jobs(SOC, 60, 0xFEED, jobs);
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }
}
