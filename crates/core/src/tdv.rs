//! The paper's test data volume equations (Equations 1–8).
//!
//! Notation follows the paper: `I`/`O`/`B`/`S` are input/output/
//! bidirectional/scan-cell counts, `T` pattern counts. Volumes are split
//! into stimulus and response bits so that stimulus-only analyses (like
//! the worked example of Figures 1–2) fall out of the same code.

use modsoc_soc::{CoreId, Soc};

/// Whether a top-level core's own chip pins count toward its `ISOCOST`.
///
/// Equation 5 as printed includes `I_P + O_P + 2B_P` for every parent
/// `P`. The paper itself applies this inconsistently: Table 3 (p34392)
/// includes the chip pins of the top core, while Table 1/2 (SOC1/SOC2)
/// exclude them — chip pins are ATE-accessible and need no wrapper
/// cells there. Both conventions are legitimate; pick per analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChipPinPolicy {
    /// Count chip pins in the top-level core's `ISOCOST` (Equation 5
    /// verbatim; matches Table 3).
    #[default]
    Include,
    /// Do not charge wrapper bits for chip pins of top-level cores
    /// (matches Tables 1 and 2).
    Exclude,
}

/// Options shared by every TDV computation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TdvOptions {
    /// Chip-pin handling for top-level cores.
    pub chip_pin_policy: ChipPinPolicy,
    /// Fraction (`0.0..=1.0`) of wrapper terminals isolated by *reusing
    /// functional registers* instead of dedicated cells.
    ///
    /// The paper's analysis assumes dedicated cells on every core I/O
    /// and calls that "a pessimistic approach in terms of test data
    /// volume" (§3) — a functional register pressed into wrapper duty is
    /// already counted in the core's `2S` term, so it adds no extra
    /// bits. This knob models that relaxation: each core's `ISOCOST` is
    /// scaled by `1 − functional_reuse`. The paper's tables use `0.0`.
    pub functional_reuse: f64,
}

impl TdvOptions {
    /// Options matching Table 1/2 of the paper (chip pins excluded from
    /// the top core's `ISOCOST`).
    #[must_use]
    pub fn tables_1_2() -> TdvOptions {
        TdvOptions {
            chip_pin_policy: ChipPinPolicy::Exclude,
            functional_reuse: 0.0,
        }
    }

    /// Options matching Table 3/4 of the paper (Equation 5 verbatim).
    #[must_use]
    pub fn tables_3_4() -> TdvOptions {
        TdvOptions {
            chip_pin_policy: ChipPinPolicy::Include,
            functional_reuse: 0.0,
        }
    }

    /// Builder-style functional-register reuse fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_functional_reuse(mut self, fraction: f64) -> TdvOptions {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "reuse fraction must be in 0..=1"
        );
        self.functional_reuse = fraction;
        self
    }
}

/// A test data volume split into stimulus and response bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TdvVolume {
    /// Bits shifted/driven into the design.
    pub stimulus: u64,
    /// Bits captured/compared out of the design.
    pub response: u64,
}

impl TdvVolume {
    /// Total bits (the quantity the paper's tables report). Saturates at
    /// `u64::MAX` instead of overflowing.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.stimulus.saturating_add(self.response)
    }
}

impl std::ops::Add for TdvVolume {
    type Output = TdvVolume;
    fn add(self, rhs: TdvVolume) -> TdvVolume {
        TdvVolume {
            stimulus: self.stimulus.saturating_add(rhs.stimulus),
            response: self.response.saturating_add(rhs.response),
        }
    }
}

impl std::iter::Sum for TdvVolume {
    fn sum<I: Iterator<Item = TdvVolume>>(iter: I) -> TdvVolume {
        iter.fold(TdvVolume::default(), std::ops::Add::add)
    }
}

/// Per-pattern wrapper bit cost of testing core `id` (Equation 5),
/// split into (stimulus, response) parts.
///
/// Stimulus side: the parent's inputs and bidirs plus each direct
/// child's outputs and bidirs must be *controlled*; response side: the
/// parent's outputs and bidirs plus each child's inputs and bidirs must
/// be *observed*. Under [`ChipPinPolicy::Exclude`], a top-level core's
/// own pins are dropped from both sides.
///
/// # Panics
///
/// Panics if `id` does not belong to `soc`.
#[must_use]
pub fn isocost_split(soc: &Soc, id: CoreId, options: &TdvOptions) -> (u64, u64) {
    let core = soc.core(id);
    let is_top = soc.top_level_cores().contains(&id);
    let own = match (options.chip_pin_policy, is_top) {
        (ChipPinPolicy::Exclude, true) => (0, 0),
        _ => (
            core.inputs.saturating_add(core.bidirs),
            core.outputs.saturating_add(core.bidirs),
        ),
    };
    let children = core
        .children
        .iter()
        .map(|&ch| {
            let c = soc.core(ch);
            (
                c.outputs.saturating_add(c.bidirs),
                c.inputs.saturating_add(c.bidirs),
            )
        })
        .fold((0u64, 0u64), |(s, r), (cs, cr)| {
            (s.saturating_add(cs), r.saturating_add(cr))
        });
    let scale = |v: u64| -> u64 {
        if options.functional_reuse == 0.0 {
            v
        } else {
            ((1.0 - options.functional_reuse) * v as f64).round() as u64
        }
    };
    (
        scale(own.0.saturating_add(children.0)),
        scale(own.1.saturating_add(children.1)),
    )
}

/// Total per-pattern wrapper bit cost of testing core `id` — `ISOCOST`
/// of Equation 5.
///
/// # Panics
///
/// Panics if `id` does not belong to `soc`.
#[must_use]
pub fn isocost(soc: &Soc, id: CoreId, options: &TdvOptions) -> u64 {
    let (s, r) = isocost_split(soc, id, options);
    s.saturating_add(r)
}

/// Stand-alone test data volume of core `id` (one term of Equation 4):
/// `T · (2S + ISOCOST)`, split into stimulus and response.
///
/// # Panics
///
/// Panics if `id` does not belong to `soc`.
#[must_use]
pub fn core_tdv(soc: &Soc, id: CoreId, options: &TdvOptions) -> TdvVolume {
    let core = soc.core(id);
    let (iso_s, iso_r) = isocost_split(soc, id, options);
    TdvVolume {
        stimulus: core
            .patterns
            .saturating_mul(core.scan_cells.saturating_add(iso_s)),
        response: core
            .patterns
            .saturating_mul(core.scan_cells.saturating_add(iso_r)),
    }
}

/// [`core_tdv`] with overflow detection: `None` when any intermediate
/// product or sum exceeds `u64` — the typed "this core's numbers are
/// absurd" signal the guarded analysis layer turns into a per-core
/// diagnostic instead of a panic (or a silently saturated row).
///
/// # Panics
///
/// Panics if `id` does not belong to `soc`.
#[must_use]
pub fn core_tdv_checked(soc: &Soc, id: CoreId, options: &TdvOptions) -> Option<TdvVolume> {
    let core = soc.core(id);
    let (iso_s, iso_r) = isocost_split_checked(soc, id, options)?;
    Some(TdvVolume {
        stimulus: core
            .patterns
            .checked_mul(core.scan_cells.checked_add(iso_s)?)?,
        response: core
            .patterns
            .checked_mul(core.scan_cells.checked_add(iso_r)?)?,
    })
}

/// [`isocost_split`] with overflow detection (see [`core_tdv_checked`]).
///
/// # Panics
///
/// Panics if `id` does not belong to `soc`.
#[must_use]
pub fn isocost_split_checked(soc: &Soc, id: CoreId, options: &TdvOptions) -> Option<(u64, u64)> {
    let core = soc.core(id);
    let is_top = soc.top_level_cores().contains(&id);
    let own = match (options.chip_pin_policy, is_top) {
        (ChipPinPolicy::Exclude, true) => (0, 0),
        _ => (
            core.inputs.checked_add(core.bidirs)?,
            core.outputs.checked_add(core.bidirs)?,
        ),
    };
    let mut children = (0u64, 0u64);
    for &ch in &core.children {
        let c = soc.core(ch);
        children.0 = children.0.checked_add(c.outputs.checked_add(c.bidirs)?)?;
        children.1 = children.1.checked_add(c.inputs.checked_add(c.bidirs)?)?;
    }
    let scale = |v: u64| -> u64 {
        if options.functional_reuse == 0.0 {
            v
        } else {
            ((1.0 - options.functional_reuse) * v as f64).round() as u64
        }
    };
    Some((
        scale(own.0.checked_add(children.0)?),
        scale(own.1.checked_add(children.1)?),
    ))
}

/// Modular SOC test data volume (Equation 4): the sum of every core's
/// stand-alone volume.
#[must_use]
pub fn modular_tdv(soc: &Soc, options: &TdvOptions) -> TdvVolume {
    soc.iter().map(|(id, _)| core_tdv(soc, id, options)).sum()
}

/// Monolithic test data volume (Equation 1) for a given flattened-design
/// pattern count `t_mono`:
/// `(I_chip + O_chip + 2B_chip + 2S_chip) · T_mono`.
#[must_use]
pub fn monolithic_tdv(soc: &Soc, t_mono: u64) -> TdvVolume {
    let (i, o, b) = soc.chip_pins();
    let s = soc.total_scan_cells();
    TdvVolume {
        stimulus: t_mono.saturating_mul(i.saturating_add(b).saturating_add(s)),
        response: t_mono.saturating_mul(o.saturating_add(b).saturating_add(s)),
    }
}

/// Optimistic monolithic test data volume (Equation 3): Equation 1 with
/// the Equation 2 lower bound `T_mono = max_i T_i`.
#[must_use]
pub fn monolithic_tdv_optimistic(soc: &Soc) -> TdvVolume {
    monolithic_tdv(soc, soc.max_core_patterns())
}

/// Isolation penalty (Equation 7): wrapper bits summed over all cores,
/// `Σ T_A · ISOCOST_A`.
#[must_use]
pub fn penalty(soc: &Soc, options: &TdvOptions) -> u64 {
    soc.iter()
        .map(|(id, c)| c.patterns.saturating_mul(isocost(soc, id, options)))
        .fold(0u64, u64::saturating_add)
}

/// Benefit as printed in Equation 8: `Σ (T_mono − T_A) · 2 S_A`.
///
/// Note this omits the chip-pin term, so Equation 6 as printed is not an
/// exact identity; see [`benefit_exact`].
#[must_use]
pub fn benefit_eq8(soc: &Soc, t_mono: u64) -> u64 {
    soc.iter()
        .map(|(_, c)| {
            t_mono
                .saturating_sub(c.patterns)
                .saturating_mul(2)
                .saturating_mul(c.scan_cells)
        })
        .fold(0u64, u64::saturating_add)
}

/// Exact benefit: defined so Equation 6 balances identically,
/// `benefit = TDV_mono + penalty − TDV_modular`. Expanding the
/// definitions gives `Σ (T_mono − T_A)·2S_A + (I+O+2B)_chip · T_mono`
/// (under [`ChipPinPolicy::Include`]) — Equation 8 plus the chip-pin
/// term the printed equation drops. The paper's Table 4 "benefit" column
/// matches this exact form, not Equation 8.
#[must_use]
pub fn benefit_exact(soc: &Soc, t_mono: u64, options: &TdvOptions) -> u64 {
    let mono = monolithic_tdv(soc, t_mono).total() as i128;
    let pen = penalty(soc, options) as i128;
    let modular = modular_tdv(soc, options).total() as i128;
    let b = mono + pen - modular;
    u64::try_from(b.max(0)).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_soc::itc02;
    use modsoc_soc::CoreSpec;

    fn fig1_soc() -> Soc {
        let mut soc = Soc::new("fig1");
        for (name, ffs, t) in [("A", 20, 200), ("B", 10, 300), ("C", 20, 400)] {
            soc.add_core(CoreSpec::leaf(name, 0, 0, 0, ffs, t)).unwrap();
        }
        soc
    }

    #[test]
    fn figure_1_2_worked_example() {
        // §3: 400 patterns × 50 FFs = 20,000 monolithic stimulus bits;
        // modular: 600×20 + 300×10 = 15,000 bits (25% reduction).
        let soc = fig1_soc();
        let opts = TdvOptions::default();
        let mono = monolithic_tdv_optimistic(&soc);
        assert_eq!(mono.stimulus, 20_000);
        let modular = modular_tdv(&soc, &opts);
        assert_eq!(modular.stimulus, 15_000);
        let reduction = 1.0 - modular.stimulus as f64 / mono.stimulus as f64;
        assert!((reduction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table1_core_rows_exact() {
        // Table 1 per-core TDVs: 4,992 / 8,245 / 3×10,540 / 326.
        let soc = itc02::soc1();
        let opts = TdvOptions::tables_1_2();
        let expect = [4_992u64, 8_245, 10_540, 10_540, 10_540, 326];
        for ((id, _), want) in soc.iter().zip(expect) {
            assert_eq!(core_tdv(&soc, id, &opts).total(), want, "{id}");
        }
        assert_eq!(modular_tdv(&soc, &opts).total(), 45_183);
    }

    #[test]
    fn table1_monolithic_exact() {
        let soc = itc02::soc1();
        assert_eq!(
            monolithic_tdv(&soc, itc02::SOC1_MEASURED_TMONO).total(),
            129_816
        );
        assert_eq!(monolithic_tdv_optimistic(&soc).total(), 51_085);
    }

    #[test]
    fn table2_rows_exact() {
        // Table 2 per-core TDVs: 8,245 / 107,848 / 673,480 / 554,260 / 752.
        let soc = itc02::soc2();
        let opts = TdvOptions::tables_1_2();
        let expect = [8_245u64, 107_848, 673_480, 554_260, 752];
        for ((id, _), want) in soc.iter().zip(expect) {
            assert_eq!(core_tdv(&soc, id, &opts).total(), want, "{id}");
        }
        assert_eq!(modular_tdv(&soc, &opts).total(), 1_344_585);
        assert_eq!(
            monolithic_tdv(&soc, itc02::SOC2_MEASURED_TMONO).total(),
            2_986_200
        );
        assert_eq!(monolithic_tdv_optimistic(&soc).total(), 1_428_320);
    }

    #[test]
    fn table3_rows_exact() {
        // Table 3 per-core TDVs for p34392, bit-exact (looked up by name
        // since the Soc stores cores children-first).
        let soc = itc02::p34392();
        let opts = TdvOptions::tables_3_4();
        let expect: [u64; 20] = [
            39_069, 361_410, 9_521_850, 192_696, 389_340, 1_073_232, 37_335, 8_704, 625_590,
            16_872, 4_559_068, 287_835, 1_903, 71_680, 8_208, 133_200, 1_792, 14_934, 10_120_080,
            1_073_232,
        ];
        for (k, want) in expect.iter().enumerate() {
            let id = soc.find(&format!("core{k}")).expect("core exists");
            assert_eq!(core_tdv(&soc, id, &opts).total(), *want, "core{k}");
        }
        assert_eq!(modular_tdv(&soc, &opts).total(), itc02::P34392_TDV_MODULAR);
    }

    #[test]
    fn table4_p34392_aggregates() {
        let soc = itc02::p34392();
        let opts = TdvOptions::tables_3_4();
        let row = itc02::table4_row("p34392").unwrap();
        assert_eq!(monolithic_tdv_optimistic(&soc).total(), row.tdv_opt_mono);
        // The paper's penalty column for p34392 was evidently computed
        // with core 10's O=207 (the Table 3 typo); our self-consistent
        // O=107 lands 45,602 lower (0.9%). Benefit inherits the same
        // delta through Equation 6.
        let pen = penalty(&soc, &opts);
        assert!(
            ((pen as i64 - row.penalty as i64).unsigned_abs() as f64) / (row.penalty as f64) < 0.01,
            "penalty {pen} vs paper {}",
            row.penalty
        );
        let ben = benefit_exact(&soc, soc.max_core_patterns(), &opts);
        assert!(
            ((ben as i64 - row.benefit as i64).unsigned_abs() as f64) / (row.benefit as f64)
                < 0.001,
            "benefit {ben} vs paper {}",
            row.benefit
        );
    }

    #[test]
    fn eq6_exact_identity() {
        for soc in [itc02::soc1(), itc02::soc2(), itc02::p34392(), fig1_soc()] {
            for opts in [TdvOptions::tables_1_2(), TdvOptions::tables_3_4()] {
                let t_mono = soc.max_core_patterns();
                let lhs = modular_tdv(&soc, &opts).total() as i128;
                let rhs = monolithic_tdv(&soc, t_mono).total() as i128
                    + penalty(&soc, &opts) as i128
                    - benefit_exact(&soc, t_mono, &opts) as i128;
                assert_eq!(lhs, rhs, "{}", soc.name());
            }
        }
    }

    #[test]
    fn eq8_vs_exact_differ_by_chip_term() {
        let soc = itc02::p34392();
        let opts = TdvOptions::tables_3_4();
        let t = soc.max_core_patterns();
        let (i, o, b) = soc.chip_pins();
        let exact = benefit_exact(&soc, t, &opts);
        let eq8 = benefit_eq8(&soc, t);
        assert_eq!(exact, eq8 + (i + o + 2 * b) * t);
    }

    #[test]
    fn isocost_policies() {
        let soc = itc02::soc1();
        let top = soc.find("top").unwrap();
        // Exclude: only child terminals: Σ(I+O) = 58+39+3·22 = 163.
        assert_eq!(isocost(&soc, top, &TdvOptions::tables_1_2()), 163);
        // Include: + own pins 51+10.
        assert_eq!(isocost(&soc, top, &TdvOptions::tables_3_4()), 224);
        // Leaf cores unaffected by policy.
        let leaf = soc.find("core1_s713").unwrap();
        assert_eq!(isocost(&soc, leaf, &TdvOptions::tables_1_2()), 58);
        assert_eq!(isocost(&soc, leaf, &TdvOptions::tables_3_4()), 58);
    }

    #[test]
    fn volumes_add_and_sum() {
        let a = TdvVolume {
            stimulus: 1,
            response: 2,
        };
        let b = TdvVolume {
            stimulus: 10,
            response: 20,
        };
        assert_eq!((a + b).total(), 33);
        let s: TdvVolume = [a, b].into_iter().sum();
        assert_eq!(s.total(), 33);
    }

    #[test]
    fn functional_reuse_shrinks_penalty() {
        let soc = itc02::soc1();
        let t = itc02::SOC1_MEASURED_TMONO;
        let dedicated = TdvOptions::tables_1_2();
        let half = dedicated.with_functional_reuse(0.5);
        let full = dedicated.with_functional_reuse(1.0);
        assert!(penalty(&soc, &half) < penalty(&soc, &dedicated));
        assert_eq!(penalty(&soc, &full), 0, "full reuse erases the penalty");
        // With zero ISOCOST, modular TDV is the pure scan payload and the
        // exact benefit equals the monolithic surplus.
        let modular = modular_tdv(&soc, &full).total();
        let floor: u64 = soc.iter().map(|(_, c)| c.patterns * 2 * c.scan_cells).sum();
        assert_eq!(modular, floor);
        assert_eq!(
            benefit_exact(&soc, t, &full),
            monolithic_tdv(&soc, t).total() - modular
        );
    }

    #[test]
    fn reuse_zero_is_identity() {
        let soc = itc02::p34392();
        let a = TdvOptions::tables_3_4();
        let b = TdvOptions::tables_3_4().with_functional_reuse(0.0);
        assert_eq!(modular_tdv(&soc, &a), modular_tdv(&soc, &b));
    }

    #[test]
    #[should_panic(expected = "reuse fraction")]
    fn reuse_out_of_range_panics() {
        let _ = TdvOptions::tables_1_2().with_functional_reuse(1.5);
    }

    #[test]
    fn flattened_spec_reproduces_equation_1() {
        // Feeding the SOC's flattened single-core view through the
        // modular equation (chip pins included) is exactly Equation 1.
        for soc in [itc02::soc1(), itc02::soc2(), itc02::p34392()] {
            let t_mono = soc.max_core_patterns();
            let mut flat_soc = Soc::new("flat");
            flat_soc.add_core(soc.flattened_spec(t_mono)).unwrap();
            let via_modular = modular_tdv(&flat_soc, &TdvOptions::tables_3_4());
            let via_eq1 = monolithic_tdv(&soc, t_mono);
            assert_eq!(via_modular, via_eq1, "{}", soc.name());
        }
    }

    #[test]
    fn absurd_counts_saturate_instead_of_panicking() {
        // A corrupted .soc can carry counts near u64::MAX; the raw
        // equations must saturate (never overflow-panic in debug builds)
        // and the checked variants must flag the overflow.
        let mut soc = Soc::new("huge");
        soc.add_core(CoreSpec::leaf("x", 3, 2, 1, u64::MAX, u64::MAX))
            .unwrap();
        let opts = TdvOptions::tables_3_4();
        let id = soc.find("x").unwrap();
        assert_eq!(core_tdv(&soc, id, &opts).total(), u64::MAX);
        assert_eq!(modular_tdv(&soc, &opts).total(), u64::MAX);
        assert_eq!(monolithic_tdv(&soc, u64::MAX).total(), u64::MAX);
        assert_eq!(penalty(&soc, &opts), u64::MAX);
        let _ = benefit_eq8(&soc, u64::MAX);
        let _ = benefit_exact(&soc, u64::MAX, &opts);
        assert_eq!(core_tdv_checked(&soc, id, &opts), None);
    }

    #[test]
    fn checked_matches_raw_in_normal_range() {
        for soc in [itc02::soc1(), itc02::soc2(), itc02::p34392()] {
            for opts in [TdvOptions::tables_1_2(), TdvOptions::tables_3_4()] {
                for (id, _) in soc.iter() {
                    assert_eq!(
                        core_tdv_checked(&soc, id, &opts),
                        Some(core_tdv(&soc, id, &opts)),
                        "{} {id}",
                        soc.name()
                    );
                    assert_eq!(
                        isocost_split_checked(&soc, id, &opts),
                        Some(isocost_split(&soc, id, &opts))
                    );
                }
            }
        }
    }

    #[test]
    fn bidirs_count_twice() {
        let mut soc = Soc::new("b");
        soc.add_core(CoreSpec::leaf("c", 0, 0, 3, 0, 10)).unwrap();
        // Each bidir adds one stimulus and one response bit per pattern.
        let v = modular_tdv(&soc, &TdvOptions::tables_3_4());
        assert_eq!(v.stimulus, 30);
        assert_eq!(v.response, 30);
        let m = monolithic_tdv(&soc, 10);
        assert_eq!(m.total(), 60);
    }
}
