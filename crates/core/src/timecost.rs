//! Joint test-data-volume / test-time analysis.
//!
//! The paper's introduction lists test *time* reduction among modular
//! testing's benefits but scopes its analysis to data volume only. This
//! module bridges the two: for the same [`Soc`] parameters the TDV
//! equations consume, it computes modular and monolithic test
//! application time over a TAM of width `w` (via `modsoc-tam`), so both
//! dimensions of the trade can be reported side by side — e.g. for the
//! paper-cited observation (its refs 20 and 21) that modularity helps
//! time as well as data.

use modsoc_soc::Soc;
use modsoc_tam::schedule::schedule_rectangles;
use modsoc_tam::wrapper::{design_wrapper, WrapperCore};
use modsoc_tam::TamError;

use crate::analysis::SocTdvAnalysis;
use crate::error::AnalysisError;
use crate::tdv::TdvOptions;

/// Joint TDV + time comparison at one TAM width.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeCost {
    /// TAM width used for both sides.
    pub width: usize,
    /// Internal scan chains assumed per core (and for the flattened
    /// chip, scaled by width).
    pub chains_per_core: usize,
    /// Modular test time: all wrapped cores scheduled on the TAM.
    pub modular_time: u64,
    /// Monolithic test time: the flattened chip's scan cells in
    /// `width` balanced chains, `T_mono` loads.
    pub monolithic_time: u64,
    /// The TDV analysis the times accompany.
    pub tdv: SocTdvAnalysis,
}

impl TimeCost {
    /// Test-time reduction ratio of modular over monolithic (cf. the
    /// TDV [`SocTdvAnalysis::reduction_ratio`]).
    #[must_use]
    pub fn time_reduction_ratio(&self) -> f64 {
        if self.modular_time == 0 {
            return 1.0;
        }
        self.monolithic_time as f64 / self.modular_time as f64
    }
}

/// Compute the joint comparison at TAM width `width`, with each core's
/// scan cells split into `chains_per_core` internal chains.
///
/// The monolithic side models the paper's flattened design: all scan
/// cells in `width` balanced chains, loaded `T_mono` times (the
/// analysis' monolithic pattern count — measured if provided, else the
/// Equation 2 bound).
///
/// # Errors
///
/// Propagates SOC validation and scheduling errors.
pub fn time_cost(
    soc: &Soc,
    options: &TdvOptions,
    t_mono: Option<u64>,
    width: usize,
    chains_per_core: usize,
) -> Result<TimeCost, AnalysisError> {
    let tdv = match t_mono {
        Some(t) => SocTdvAnalysis::compute_with_measured_tmono(soc, options, t)?,
        None => SocTdvAnalysis::compute(soc, options)?,
    };

    // Modular: wrapped cores with nonzero pattern counts, flexibly
    // scheduled on the TAM.
    let cores: Vec<WrapperCore> = soc
        .iter()
        .filter(|(_, c)| c.patterns > 0)
        .map(|(_, c)| WrapperCore::from_core_spec(c, chains_per_core))
        .collect();
    let modular_time = if cores.is_empty() {
        0
    } else {
        schedule_rectangles(&cores, width)
            .map_err(tam_to_analysis)?
            .makespan()
    };

    // Monolithic: one flat design, scan split over `width` chains (one
    // chain per TAM wire — the paper's balanced-chain assumption).
    let (i, o, b) = soc.chip_pins();
    let flat = WrapperCore::from_core_spec(
        &modsoc_soc::CoreSpec::leaf("flat", i, o, b, soc.total_scan_cells(), tdv.t_mono()),
        width,
    );
    let monolithic_time = design_wrapper(&flat, width).test_time_self();

    Ok(TimeCost {
        width,
        chains_per_core,
        modular_time,
        monolithic_time,
        tdv,
    })
}

fn tam_to_analysis(e: TamError) -> AnalysisError {
    AnalysisError::Soc(modsoc_soc::SocError::Infeasible {
        message: format!("tam scheduling failed: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_soc::itc02;

    #[test]
    fn p34392_modular_time_wins() {
        let soc = itc02::p34392();
        let tc = time_cost(&soc, &TdvOptions::tables_3_4(), None, 16, 8).unwrap();
        assert!(tc.modular_time > 0);
        assert!(tc.monolithic_time > 0);
        // The paper's intro claim, quantified: modular scheduling beats
        // loading every scan cell with the max pattern count.
        assert!(
            tc.time_reduction_ratio() > 1.0,
            "ratio {}",
            tc.time_reduction_ratio()
        );
        // And the TDV side is the familiar one.
        assert_eq!(tc.tdv.modular().total(), itc02::P34392_TDV_MODULAR);
    }

    #[test]
    fn soc1_with_measured_tmono() {
        let soc = itc02::soc1();
        let tc = time_cost(
            &soc,
            &TdvOptions::tables_1_2(),
            Some(itc02::SOC1_MEASURED_TMONO),
            8,
            4,
        )
        .unwrap();
        assert_eq!(tc.tdv.t_mono(), 216);
        assert!(tc.time_reduction_ratio() > 1.0);
    }

    #[test]
    fn wider_tam_shrinks_both_times() {
        let soc = itc02::soc2();
        let narrow = time_cost(&soc, &TdvOptions::tables_1_2(), None, 2, 4).unwrap();
        let wide = time_cost(&soc, &TdvOptions::tables_1_2(), None, 16, 4).unwrap();
        assert!(wide.modular_time <= narrow.modular_time);
        assert!(wide.monolithic_time <= narrow.monolithic_time);
    }

    #[test]
    fn tdv_is_width_independent() {
        // Data volume is the paper's TAM-independent quantity; time is
        // not. Check the separation holds.
        let soc = itc02::soc1();
        let a = time_cost(&soc, &TdvOptions::tables_1_2(), None, 2, 4).unwrap();
        let b = time_cost(&soc, &TdvOptions::tables_1_2(), None, 32, 4).unwrap();
        assert_eq!(a.tdv.modular(), b.tdv.modular());
        assert_ne!(a.modular_time, b.modular_time);
    }
}
