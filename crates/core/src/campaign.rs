//! Resumable experiment campaigns: a list of SOC experiments driven
//! through the worker pool, with per-unit completion journaled to a
//! [`ResultStore`].
//!
//! A *campaign* is the batch form of `modsoc experiment`: a JSON spec
//! names a sequence of units — built-in SOCs (`mini`/`soc1`/`soc2` at a
//! seed) and/or chains of generated core profiles — and the runner
//! executes them in order, each through the full guarded
//! monolithic-vs-modular pipeline (so per-core parallelism, budgets and
//! panic isolation all apply per unit).
//!
//! **Resumption.** Each unit that runs to completion is recorded in a
//! store journal under its *content key* ([`unit_key`]: the unit spec +
//! every result-affecting experiment option). Re-invoking the campaign
//! skips journaled units — their report rows are rebuilt from the
//! journaled summary — and re-runs only what is missing: interrupted
//! units (budget trip, panic, kill) and units whose spec or options
//! changed since they completed. Combined with the engine-level result
//! cache, a resumed campaign costs little more than the unfinished
//! work.
//!
//! **Failure policy.** A failed unit (panic or typed error) aborts the
//! campaign by default; with `keep_going` it is reported as a
//! `FAILED` row and the remaining units still run — mirroring the
//! experiment pipeline's `--keep-going` core policy one level up.

use modsoc_atpg::options_fingerprint;
use modsoc_circuitgen::soc::{mini_soc, soc1, soc2};
use modsoc_circuitgen::{generate, CoreProfile, PortSource, SocNetlist};
use modsoc_metrics::json::{self, JsonValue};
use modsoc_metrics::{Counter, MetricsSink};
use modsoc_store::sha256::Sha256;
use modsoc_store::{ClaimOutcome, JournalEntry, ResultStore, StoreKey};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::error::AnalysisError;
use crate::experiment::{run_soc_experiment_guarded, ExperimentOptions, SocExperiment};
use crate::runctl::{guard_result, Completion, RunBudget};

/// Campaign spec schema version (the `"schema"` field of the JSON).
pub const CAMPAIGN_SCHEMA: u64 = 1;

/// Context tag hashed into every [`unit_key`]; bump when the key
/// derivation changes so old journals re-run instead of misleading.
pub const CAMPAIGN_CONTEXT: &str = "modsoc-campaign-unit-v1";

/// One synthetic core in a generated unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedCore {
    /// Core name (also the generated circuit's name).
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Scan cell (flip-flop) count.
    pub scan: usize,
    /// Generator seed.
    pub seed: u64,
}

/// What a campaign unit runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignTarget {
    /// The two-core demo SOC.
    Mini,
    /// The reconstructed ITC'02-parameter SOC1 (five ISCAS'89 cores).
    Soc1,
    /// The reconstructed SOC2 (four cores).
    Soc2,
    /// A chain of generated cores: core 0 takes the chip inputs, each
    /// later core is fed from its predecessor's outputs, and the last
    /// core drives the chip outputs.
    Generated(Vec<GeneratedCore>),
}

/// One unit of campaign work: a named SOC experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignUnit {
    /// Campaign-unique unit name (the journal key's first half).
    pub name: String,
    /// What to build and test.
    pub target: CampaignTarget,
    /// Seed for the built-in SOC generators (ignored for
    /// [`CampaignTarget::Generated`], whose cores carry their own).
    pub seed: u64,
    /// Skip this unit's flattened monolithic phase (Equation 2 bound
    /// instead) regardless of the experiment options.
    pub skip_monolithic: bool,
}

impl CampaignUnit {
    /// Parse one unit from its campaign-spec JSON row — the same parser
    /// the campaign runner uses, exposed so `modsoc serve` can accept
    /// unit-shaped request bodies and key them identically
    /// (see [`unit_key`]). `index` only labels error messages for rows
    /// with no `name`.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Campaign`] describing the malformed field.
    pub fn from_json(row: &JsonValue, index: usize) -> Result<CampaignUnit, AnalysisError> {
        parse_unit(row, index)
    }
}

/// A parsed campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name — also names the journal, so two campaigns sharing
    /// a store directory resume independently.
    pub name: String,
    /// Units, run in order.
    pub units: Vec<CampaignUnit>,
}

fn spec_err(message: impl Into<String>) -> AnalysisError {
    AnalysisError::Campaign {
        message: message.into(),
    }
}

impl CampaignSpec {
    /// Parse a campaign spec document:
    ///
    /// ```json
    /// {
    ///   "schema": 1,
    ///   "name": "nightly",
    ///   "units": [
    ///     {"name": "mini7", "soc": "mini", "seed": 7},
    ///     {"name": "table2", "soc": "soc2"},
    ///     {"name": "chain", "skip_monolithic": true, "cores": [
    ///       {"name": "g0", "inputs": 8, "outputs": 6, "scan": 10, "seed": 3},
    ///       {"name": "g1", "inputs": 6, "outputs": 4, "scan": 6}
    ///     ]}
    ///   ]
    /// }
    /// ```
    ///
    /// `seed` defaults to 1 everywhere; a unit has exactly one of
    /// `"soc"` (`"mini"`/`"soc1"`/`"soc2"`) or `"cores"` (non-empty).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Campaign`] on malformed JSON, an
    /// unsupported schema, duplicate/missing unit names, or an invalid
    /// unit description.
    pub fn from_json(src: &str) -> Result<CampaignSpec, AnalysisError> {
        let doc = json::parse(src).map_err(|e| spec_err(e.to_string()))?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| spec_err("missing numeric 'schema' field"))?;
        if schema != CAMPAIGN_SCHEMA {
            return Err(spec_err(format!(
                "unsupported schema {schema} (this build reads {CAMPAIGN_SCHEMA})"
            )));
        }
        let name = doc
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| spec_err("missing string 'name' field"))?
            .to_string();
        let rows = doc
            .get("units")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| spec_err("missing 'units' array"))?;
        if rows.is_empty() {
            return Err(spec_err("campaign has no units"));
        }
        let mut units = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            units.push(parse_unit(row, i)?);
        }
        for (i, unit) in units.iter().enumerate() {
            if units[..i].iter().any(|u| u.name == unit.name) {
                return Err(spec_err(format!("duplicate unit name '{}'", unit.name)));
            }
        }
        Ok(CampaignSpec { name, units })
    }
}

fn parse_unit(row: &JsonValue, index: usize) -> Result<CampaignUnit, AnalysisError> {
    let name = row
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| spec_err(format!("unit {index}: missing string 'name'")))?
        .to_string();
    let seed = match row.get("seed") {
        None => 1,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| spec_err(format!("unit '{name}': 'seed' must be a u64")))?,
    };
    let skip_monolithic = match row.get("skip_monolithic") {
        None => false,
        Some(JsonValue::Bool(b)) => *b,
        Some(_) => {
            return Err(spec_err(format!(
                "unit '{name}': 'skip_monolithic' must be a boolean"
            )))
        }
    };
    let target = match (row.get("soc"), row.get("cores")) {
        (Some(_), Some(_)) => {
            return Err(spec_err(format!(
                "unit '{name}': give either 'soc' or 'cores', not both"
            )))
        }
        (Some(soc), None) => match soc.as_str() {
            Some("mini") => CampaignTarget::Mini,
            Some("soc1") => CampaignTarget::Soc1,
            Some("soc2") => CampaignTarget::Soc2,
            Some(other) => {
                return Err(spec_err(format!(
                    "unit '{name}': unknown soc '{other}' (mini|soc1|soc2)"
                )))
            }
            None => return Err(spec_err(format!("unit '{name}': 'soc' must be a string"))),
        },
        (None, Some(cores)) => {
            let rows = cores
                .as_array()
                .ok_or_else(|| spec_err(format!("unit '{name}': 'cores' must be an array")))?;
            if rows.is_empty() {
                return Err(spec_err(format!("unit '{name}': 'cores' is empty")));
            }
            let mut parsed = Vec::with_capacity(rows.len());
            for (j, core) in rows.iter().enumerate() {
                parsed.push(parse_core(core, &name, j)?);
            }
            CampaignTarget::Generated(parsed)
        }
        (None, None) => {
            return Err(spec_err(format!(
                "unit '{name}': needs 'soc' (mini|soc1|soc2) or 'cores'"
            )))
        }
    };
    Ok(CampaignUnit {
        name,
        target,
        seed,
        skip_monolithic,
    })
}

fn parse_core(row: &JsonValue, unit: &str, index: usize) -> Result<GeneratedCore, AnalysisError> {
    let field = |key: &str| -> Result<usize, AnalysisError> {
        row.get(key)
            .and_then(JsonValue::as_u64)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| {
                spec_err(format!(
                    "unit '{unit}' core {index}: missing numeric '{key}'"
                ))
            })
    };
    let name = row
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| spec_err(format!("unit '{unit}' core {index}: missing string 'name'")))?
        .to_string();
    let (inputs, outputs, scan) = (field("inputs")?, field("outputs")?, field("scan")?);
    if inputs == 0 || outputs == 0 {
        return Err(spec_err(format!(
            "unit '{unit}' core '{name}': inputs and outputs must be positive"
        )));
    }
    let seed = match row.get("seed") {
        None => 1,
        Some(v) => v.as_u64().ok_or_else(|| {
            spec_err(format!("unit '{unit}' core '{name}': 'seed' must be a u64"))
        })?,
    };
    Ok(GeneratedCore {
        name,
        inputs,
        outputs,
        scan,
        seed,
    })
}

/// Canonical JSON form of one unit — the spec half of [`unit_key`].
/// Field order is fixed here (not inherited from the source document),
/// so reformatting or reordering a spec file does not re-key its units.
fn unit_json(unit: &CampaignUnit) -> JsonValue {
    let mut fields = vec![("name".to_string(), JsonValue::String(unit.name.clone()))];
    match &unit.target {
        CampaignTarget::Mini => fields.push(("soc".to_string(), JsonValue::String("mini".into()))),
        CampaignTarget::Soc1 => fields.push(("soc".to_string(), JsonValue::String("soc1".into()))),
        CampaignTarget::Soc2 => fields.push(("soc".to_string(), JsonValue::String("soc2".into()))),
        CampaignTarget::Generated(cores) => fields.push((
            "cores".to_string(),
            JsonValue::Array(
                cores
                    .iter()
                    .map(|c| {
                        JsonValue::Object(vec![
                            ("name".to_string(), JsonValue::String(c.name.clone())),
                            ("inputs".to_string(), JsonValue::Number(c.inputs as f64)),
                            ("outputs".to_string(), JsonValue::Number(c.outputs as f64)),
                            ("scan".to_string(), JsonValue::Number(c.scan as f64)),
                            ("seed".to_string(), JsonValue::Number(c.seed as f64)),
                        ])
                    })
                    .collect(),
            ),
        )),
    }
    fields.push(("seed".to_string(), JsonValue::Number(unit.seed as f64)));
    fields.push((
        "skip_monolithic".to_string(),
        JsonValue::Bool(unit.skip_monolithic),
    ));
    JsonValue::Object(fields)
}

/// Content key of one unit: the canonical unit spec plus every
/// experiment option that affects its results (engine fingerprint, TDV
/// accounting, glue patterns, effective monolithic flag). `jobs`,
/// `fail_fast` and the store configuration are excluded — they change
/// scheduling, not results.
#[must_use]
pub fn unit_key(unit: &CampaignUnit, options: &ExperimentOptions) -> StoreKey {
    let mut h = Sha256::new();
    h.update(CAMPAIGN_CONTEXT.as_bytes());
    h.update(unit_json(unit).to_compact().as_bytes());
    h.update(b"|");
    h.update(options_fingerprint(&options.atpg).as_bytes());
    h.update(b"|");
    // TdvOptions is a plain config struct; its Debug form is a stable
    // canonical rendering of every accounting switch.
    h.update(format!("{:?}", options.tdv).as_bytes());
    h.update(b"|");
    h.update(&options.glue_patterns.to_le_bytes());
    h.update(&[u8::from(options.monolithic && !unit.skip_monolithic)]);
    StoreKey(h.finalize())
}

/// Build the structural SOC a unit describes.
///
/// # Errors
///
/// Propagates generator/stitching failures as [`AnalysisError`].
pub fn build_unit_netlist(unit: &CampaignUnit) -> Result<SocNetlist, AnalysisError> {
    match &unit.target {
        CampaignTarget::Mini => mini_soc(unit.seed).map_err(AnalysisError::from),
        CampaignTarget::Soc1 => soc1(unit.seed).map_err(AnalysisError::from),
        CampaignTarget::Soc2 => soc2(unit.seed).map_err(AnalysisError::from),
        CampaignTarget::Generated(cores) => {
            let chip_inputs = cores[0].inputs;
            let mut b = SocNetlist::builder(unit.name.clone(), chip_inputs);
            let mut prev: Option<(usize, usize)> = None; // (core index, outputs)
            for spec in cores {
                let profile =
                    CoreProfile::new(spec.name.clone(), spec.inputs, spec.outputs, spec.scan)
                        .with_seed(spec.seed);
                let circuit = generate(&profile)?;
                let id = b.add_core(circuit);
                match prev {
                    // First core in the chain eats the chip inputs.
                    None => b.wire_chip_range(id, 0, 0, spec.inputs)?,
                    // Later cores are fed from the predecessor's
                    // outputs, wrapping when the widths disagree.
                    Some((prev_id, prev_outputs)) => {
                        for port in 0..spec.inputs {
                            b.wire(
                                id,
                                port,
                                PortSource::CoreOutput {
                                    core: prev_id,
                                    output: port % prev_outputs,
                                },
                            )?;
                        }
                    }
                }
                prev = Some((id, spec.outputs));
            }
            let (last, outputs) = prev.expect("parser rejects empty core lists");
            b.chip_output_range(last, 0, outputs)?;
            b.build().map_err(AnalysisError::from)
        }
    }
}

/// How one unit ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitStatus {
    /// Already journaled with a matching key — not re-run.
    Skipped,
    /// Ran to completion this invocation (and was journaled).
    Complete,
    /// Ran but tripped the budget; will re-run on resume.
    Partial,
    /// Panicked or errored; will re-run on resume.
    Failed,
}

impl UnitStatus {
    /// Fixed-width table label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            UnitStatus::Skipped => "skipped",
            UnitStatus::Complete => "ok",
            UnitStatus::Partial => "partial",
            UnitStatus::Failed => "FAILED",
        }
    }
}

/// One row of the campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitReport {
    /// Unit name.
    pub unit: String,
    /// How the unit ended this invocation.
    pub status: UnitStatus,
    /// Measured (or journaled) monolithic pattern count.
    pub t_mono: Option<u64>,
    /// Modular TDV total (bits).
    pub tdv_modular: Option<u64>,
    /// Monolithic TDV total (bits).
    pub tdv_monolithic: Option<u64>,
    /// Monolithic-to-modular TDV reduction ratio.
    pub reduction_ratio: Option<f64>,
    /// Failure or exhaustion detail (empty for clean completions).
    pub note: String,
}

/// The outcome of one campaign invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name (from the spec).
    pub name: String,
    /// One row per unit, in spec order.
    pub units: Vec<UnitReport>,
}

impl CampaignReport {
    /// Whether every unit is done (complete now or journaled earlier).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.units
            .iter()
            .all(|u| matches!(u.status, UnitStatus::Skipped | UnitStatus::Complete))
    }

    /// Count of units with the given status.
    #[must_use]
    pub fn count(&self, status: &UnitStatus) -> usize {
        self.units.iter().filter(|u| u.status == *status).count()
    }
}

/// Journal summary of a completed unit — everything a skipped row needs.
fn summarize(completion: &Completion<SocExperiment>) -> JsonValue {
    let exp = &completion.result;
    JsonValue::Object(vec![
        ("t_mono".to_string(), JsonValue::Number(exp.t_mono as f64)),
        (
            "tdv_modular".to_string(),
            JsonValue::Number(exp.analysis.modular().total() as f64),
        ),
        (
            "tdv_monolithic".to_string(),
            JsonValue::Number(exp.analysis.monolithic().total() as f64),
        ),
        (
            "reduction_ratio".to_string(),
            JsonValue::Number(exp.analysis.reduction_ratio()),
        ),
    ])
}

fn report_from_summary(unit: &str, summary: &JsonValue) -> UnitReport {
    UnitReport {
        unit: unit.to_string(),
        status: UnitStatus::Skipped,
        t_mono: summary.get("t_mono").and_then(JsonValue::as_u64),
        tdv_modular: summary.get("tdv_modular").and_then(JsonValue::as_u64),
        tdv_monolithic: summary.get("tdv_monolithic").and_then(JsonValue::as_u64),
        reduction_ratio: summary.get("reduction_ratio").and_then(JsonValue::as_f64),
        note: String::new(),
    }
}

fn report_from_completion(unit: &str, completion: &Completion<SocExperiment>) -> UnitReport {
    let exp = &completion.result;
    let (status, note) = if let Some(e) = &completion.exhausted {
        (UnitStatus::Partial, e.to_string())
    } else if completion.failed_cores().is_empty() {
        (UnitStatus::Complete, String::new())
    } else {
        let cores: Vec<&str> = completion
            .failed_cores()
            .iter()
            .map(|o| o.core.as_str())
            .collect();
        (
            UnitStatus::Failed,
            format!("failed cores: {}", cores.join(", ")),
        )
    };
    UnitReport {
        unit: unit.to_string(),
        status,
        t_mono: Some(exp.t_mono),
        tdv_modular: Some(exp.analysis.modular().total()),
        tdv_monolithic: Some(exp.analysis.monolithic().total()),
        reduction_ratio: Some(exp.analysis.reduction_ratio()),
        note,
    }
}

/// Run a campaign: every unit through the guarded experiment pipeline,
/// journaling completions to `store` and skipping units the journal
/// already covers. See the module docs for the resume semantics.
///
/// # Errors
///
/// Returns an error for spec-level problems (a unit that cannot even be
/// built) and, when `keep_going` is `false`, for the first failed unit.
/// Budget exhaustion is never an error — affected units are reported
/// [`UnitStatus::Partial`] and re-run on resume.
pub fn run_campaign(
    spec: &CampaignSpec,
    options: &ExperimentOptions,
    budget: &RunBudget,
    store: &ResultStore,
    keep_going: bool,
    sink: &dyn MetricsSink,
) -> Result<CampaignReport, AnalysisError> {
    run_campaign_with(
        spec,
        options,
        store,
        keep_going,
        sink,
        |_, netlist, unit_options| run_soc_experiment_guarded(netlist, unit_options, budget),
    )
}

/// [`run_campaign`] with a caller-supplied per-unit runner — the
/// chaos/fault-injection seam. `run_unit(i, netlist, options)` replaces
/// [`run_soc_experiment_guarded`]; panics it raises are contained to a
/// `FAILED` row for that unit (or abort the campaign without
/// `keep_going`), which is how the tests simulate a campaign killed
/// mid-run and verify that resumption skips the journaled prefix.
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_with<F>(
    spec: &CampaignSpec,
    options: &ExperimentOptions,
    store: &ResultStore,
    keep_going: bool,
    sink: &dyn MetricsSink,
    mut run_unit: F,
) -> Result<CampaignReport, AnalysisError>
where
    F: FnMut(
        usize,
        &SocNetlist,
        &ExperimentOptions,
    ) -> Result<Completion<SocExperiment>, AnalysisError>,
{
    let mut journal = store.open_journal(&format!("campaign-{}", spec.name), sink);
    let mut rows = Vec::with_capacity(spec.units.len());
    for (i, unit) in spec.units.iter().enumerate() {
        let key = unit_key(unit, options);
        if let Some(entry) = journal.find(&unit.name, &key.hex()) {
            rows.push(report_from_summary(&unit.name, &entry.summary));
            continue;
        }
        // Spec-level build failures are hard errors even with
        // keep_going: re-running a unit that cannot be built will never
        // help, and silently dropping it would corrupt the campaign.
        let netlist = build_unit_netlist(unit)?;
        let mut unit_options = options.clone();
        if unit.skip_monolithic {
            unit_options.monolithic = false;
        }
        match guard_result(|| run_unit(i, &netlist, &unit_options)) {
            Ok(completion) => {
                let row = report_from_completion(&unit.name, &completion);
                if row.status == UnitStatus::Complete {
                    let entry = JournalEntry {
                        unit: unit.name.clone(),
                        key: key.hex(),
                        summary: summarize(&completion),
                    };
                    if let Err(e) = journal.record(entry, sink) {
                        eprintln!("store: journal write failed for '{}': {e}", unit.name);
                    }
                }
                let failed = row.status == UnitStatus::Failed;
                let note = row.note.clone();
                rows.push(row);
                if failed && !keep_going {
                    return Err(spec_err(format!(
                        "unit '{}' failed ({note}); re-run with --keep-going to continue past it",
                        unit.name
                    )));
                }
            }
            Err(failure) => {
                rows.push(UnitReport {
                    unit: unit.name.clone(),
                    status: UnitStatus::Failed,
                    t_mono: None,
                    tdv_modular: None,
                    tdv_monolithic: None,
                    reduction_ratio: None,
                    note: failure.to_string(),
                });
                if !keep_going {
                    return Err(spec_err(format!(
                        "unit '{}' failed ({failure}); re-run with --keep-going to continue past it",
                        unit.name
                    )));
                }
            }
        }
    }
    Ok(CampaignReport {
        name: spec.name.clone(),
        units: rows,
    })
}

/// Claim-loop configuration for [`run_campaign_claimed`]: how a worker
/// identifies itself, how long its unit leases live, and how long it
/// waits out units held by other workers before reporting them partial.
#[derive(Debug, Clone)]
pub struct ClaimOptions {
    /// Claim owner tag — must be unique per concurrent worker (the
    /// default embeds the process id).
    pub owner: String,
    /// Claim lease: a worker that dies mid-unit stops renewing, and
    /// after this long its claim is stale and any peer may break it.
    pub lease: Duration,
    /// How long to keep sweeping for units held by other workers before
    /// giving up and reporting them [`UnitStatus::Partial`]. Zero means
    /// one sweep: claim what is free, never wait.
    pub wait: Duration,
}

impl ClaimOptions {
    /// Options for a worker tagged `owner` with a 30 s lease and a
    /// 10-minute patience for peers' units.
    #[must_use]
    pub fn new(owner: impl Into<String>) -> ClaimOptions {
        ClaimOptions {
            owner: owner.into(),
            lease: Duration::from_secs(30),
            wait: Duration::from_secs(600),
        }
    }

    /// A per-process default owner tag.
    #[must_use]
    pub fn default_owner() -> String {
        format!("worker-{}", std::process::id())
    }

    /// Replace the lease duration.
    #[must_use]
    pub fn with_lease(mut self, lease: Duration) -> ClaimOptions {
        self.lease = lease;
        self
    }

    /// Replace the held-unit patience.
    #[must_use]
    pub fn with_wait(mut self, wait: Duration) -> ClaimOptions {
        self.wait = wait;
        self
    }
}

/// [`run_campaign`] for concurrent workers sharing one store: units are
/// claimed through the store's compare-and-swap lease protocol before
/// they run, so N workers over the same spec partition the units with
/// each unit's engine work executed exactly once.
///
/// The sweep loop per worker:
///
/// 1. Refresh the shared journal; journaled units become `skipped`
///    rows exactly as in a single-process resume.
/// 2. Try to claim each unresolved unit. A claim held by a live peer
///    defers the unit to a later sweep; a stale claim (the holder died
///    and stopped renewing for longer than the lease) is broken and
///    re-offered. While a claimed unit runs, a background thread renews
///    the lease at `lease / 4` cadence so long units stay owned.
/// 3. When every unit is resolved, or `claims.wait` has elapsed, stop.
///    Units still held by peers at the deadline are reported
///    [`UnitStatus::Partial`] — a rerun resumes them from the journal.
///
/// # Errors
///
/// As [`run_campaign`], plus claim-protocol transport failures
/// (e.g. the remote store daemon is unreachable).
pub fn run_campaign_claimed(
    spec: &CampaignSpec,
    options: &ExperimentOptions,
    budget: &RunBudget,
    store: &ResultStore,
    keep_going: bool,
    claims: &ClaimOptions,
    sink: &dyn MetricsSink,
) -> Result<CampaignReport, AnalysisError> {
    let journal_name = format!("campaign-{}", spec.name);
    let mut journal = store.open_journal(&journal_name, sink);
    let mut rows: Vec<Option<UnitReport>> = vec![None; spec.units.len()];
    let started = Instant::now();
    loop {
        let mut progressed = false;
        for (i, unit) in spec.units.iter().enumerate() {
            if rows[i].is_some() {
                continue;
            }
            let key = unit_key(unit, options);
            if let Some(entry) = journal.find(&unit.name, &key.hex()) {
                rows[i] = Some(report_from_summary(&unit.name, &entry.summary));
                progressed = true;
                continue;
            }
            match store.claim_unit(
                &journal_name,
                &unit.name,
                &key.hex(),
                &claims.owner,
                claims.lease,
            ) {
                Err(e) => {
                    return Err(spec_err(format!(
                        "claiming unit '{}' failed: {e}",
                        unit.name
                    )))
                }
                Ok(ClaimOutcome::Held { owner }) => {
                    sink.add(Counter::StoreClaimsHeld, 1);
                    let _ = owner; // defer to a later sweep
                    continue;
                }
                Ok(ClaimOutcome::Acquired { broke_stale }) => {
                    sink.add(Counter::StoreClaimsAcquired, 1);
                    if broke_stale {
                        sink.add(Counter::StoreClaimsExpired, 1);
                    }
                }
                Ok(other) => {
                    return Err(spec_err(format!(
                        "claiming unit '{}': unexpected outcome {other:?}",
                        unit.name
                    )))
                }
            }
            // Claim held. Re-check the journal under the claim: a peer
            // may have completed this unit after our sweep-start
            // refresh but before its claim lapsed.
            journal.refresh();
            if let Some(entry) = journal.find(&unit.name, &key.hex()) {
                let _ = store.release_claim(&journal_name, &unit.name, &claims.owner);
                rows[i] = Some(report_from_summary(&unit.name, &entry.summary));
                progressed = true;
                continue;
            }
            let built = build_unit_netlist(unit);
            let netlist = match built {
                Ok(n) => n,
                Err(e) => {
                    // Spec-level hard error: release so peers are not
                    // stuck waiting out the lease on a doomed unit.
                    let _ = store.release_claim(&journal_name, &unit.name, &claims.owner);
                    return Err(e);
                }
            };
            let mut unit_options = options.clone();
            if unit.skip_monolithic {
                unit_options.monolithic = false;
            }
            // Run the unit with a renewal heartbeat so the lease
            // outlives slow engine work; a killed worker stops
            // renewing, which is exactly what lets peers take over.
            let stop = AtomicBool::new(false);
            let outcome = std::thread::scope(|scope| {
                scope.spawn(|| {
                    let tick = Duration::from_millis(25);
                    let cadence = (claims.lease / 4).max(tick);
                    let mut since = Duration::ZERO;
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        since += tick;
                        if since >= cadence {
                            since = Duration::ZERO;
                            let _ = store.renew_claim(&journal_name, &unit.name, &claims.owner);
                        }
                    }
                });
                let outcome =
                    guard_result(|| run_soc_experiment_guarded(&netlist, &unit_options, budget));
                stop.store(true, Ordering::Relaxed);
                outcome
            });
            progressed = true;
            match outcome {
                Ok(completion) => {
                    let row = report_from_completion(&unit.name, &completion);
                    if row.status == UnitStatus::Complete {
                        let entry = JournalEntry {
                            unit: unit.name.clone(),
                            key: key.hex(),
                            summary: summarize(&completion),
                        };
                        if let Err(e) = journal.record(entry, sink) {
                            eprintln!("store: journal write failed for '{}': {e}", unit.name);
                        }
                    }
                    let _ = store.release_claim(&journal_name, &unit.name, &claims.owner);
                    let failed = row.status == UnitStatus::Failed;
                    let note = row.note.clone();
                    rows[i] = Some(row);
                    if failed && !keep_going {
                        return Err(spec_err(format!(
                            "unit '{}' failed ({note}); re-run with --keep-going to continue past it",
                            unit.name
                        )));
                    }
                }
                Err(failure) => {
                    let _ = store.release_claim(&journal_name, &unit.name, &claims.owner);
                    rows[i] = Some(UnitReport {
                        unit: unit.name.clone(),
                        status: UnitStatus::Failed,
                        t_mono: None,
                        tdv_modular: None,
                        tdv_monolithic: None,
                        reduction_ratio: None,
                        note: failure.to_string(),
                    });
                    if !keep_going {
                        return Err(spec_err(format!(
                            "unit '{}' failed ({failure}); re-run with --keep-going to continue past it",
                            unit.name
                        )));
                    }
                }
            }
        }
        if rows.iter().all(Option::is_some) {
            break;
        }
        if started.elapsed() >= claims.wait {
            for (i, unit) in spec.units.iter().enumerate() {
                if rows[i].is_none() {
                    rows[i] = Some(UnitReport {
                        unit: unit.name.clone(),
                        status: UnitStatus::Partial,
                        t_mono: None,
                        tdv_modular: None,
                        tdv_monolithic: None,
                        reduction_ratio: None,
                        note: "held by another worker at deadline".to_string(),
                    });
                }
            }
            break;
        }
        if !progressed {
            // Everything left is held by peers: back off for a slice
            // of the lease before the next sweep.
            let nap = (claims.lease / 4).min(Duration::from_millis(500));
            std::thread::sleep(nap.max(Duration::from_millis(10)));
        }
        journal.refresh();
    }
    Ok(CampaignReport {
        name: spec.name.clone(),
        units: rows.into_iter().map(|r| r.expect("all resolved")).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_metrics::NullSink;
    use std::path::PathBuf;
    use std::sync::Arc;

    const SPEC: &str = r#"{
        "schema": 1,
        "name": "test-campaign",
        "units": [
            {"name": "mini-a", "soc": "mini", "seed": 7},
            {"name": "mini-b", "soc": "mini", "seed": 9},
            {"name": "chain", "skip_monolithic": true, "cores": [
                {"name": "g0", "inputs": 8, "outputs": 6, "scan": 8, "seed": 3},
                {"name": "g1", "inputs": 6, "outputs": 4, "scan": 5, "seed": 4}
            ]}
        ]
    }"#;

    fn temp_store(tag: &str) -> (PathBuf, ResultStore) {
        let dir =
            std::env::temp_dir().join(format!("modsoc_campaign_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn spec_parses() {
        let spec = CampaignSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.name, "test-campaign");
        assert_eq!(spec.units.len(), 3);
        assert_eq!(spec.units[0].seed, 7);
        assert!(spec.units[2].skip_monolithic);
        match &spec.units[2].target {
            CampaignTarget::Generated(cores) => {
                assert_eq!(cores.len(), 2);
                assert_eq!(cores[1].seed, 4);
            }
            other => panic!("expected generated target, got {other:?}"),
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (src, needle) in [
            ("{", "JSON"),
            (r#"{"name":"x","units":[]}"#, "schema"),
            (r#"{"schema":2,"name":"x","units":[]}"#, "unsupported"),
            (r#"{"schema":1,"units":[]}"#, "name"),
            (r#"{"schema":1,"name":"x","units":[]}"#, "no units"),
            (
                r#"{"schema":1,"name":"x","units":[{"name":"u"}]}"#,
                "needs 'soc'",
            ),
            (
                r#"{"schema":1,"name":"x","units":[{"name":"u","soc":"huge"}]}"#,
                "unknown soc",
            ),
            (
                r#"{"schema":1,"name":"x","units":[{"name":"u","soc":"mini"},{"name":"u","soc":"mini"}]}"#,
                "duplicate",
            ),
            (
                r#"{"schema":1,"name":"x","units":[{"name":"u","cores":[]}]}"#,
                "empty",
            ),
            (
                r#"{"schema":1,"name":"x","units":[{"name":"u","cores":[{"name":"c","inputs":0,"outputs":2,"scan":1}]}]}"#,
                "positive",
            ),
        ] {
            let err = CampaignSpec::from_json(src).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{src}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn unit_key_tracks_spec_and_options() {
        let spec = CampaignSpec::from_json(SPEC).unwrap();
        let options = ExperimentOptions::paper_tables_1_2();
        let k0 = unit_key(&spec.units[0], &options);
        assert_eq!(k0, unit_key(&spec.units[0], &options), "stable");
        assert_ne!(k0, unit_key(&spec.units[1], &options), "seed differs");
        let mut tweaked = options.clone();
        tweaked.atpg.seed ^= 1;
        assert_ne!(k0, unit_key(&spec.units[0], &tweaked), "engine seed");
        // jobs and store config must NOT re-key units.
        let jobs = options.clone().with_jobs(8).with_store_read(false);
        assert_eq!(k0, unit_key(&spec.units[0], &jobs));
    }

    #[test]
    fn generated_chain_builds() {
        let spec = CampaignSpec::from_json(SPEC).unwrap();
        let netlist = build_unit_netlist(&spec.units[2]).unwrap();
        assert_eq!(netlist.cores().len(), 2);
        assert_eq!(netlist.chip_input_count(), 8);
        assert_eq!(netlist.chip_output_count(), 4);
    }

    #[test]
    fn campaign_runs_and_resumes_without_recompute() {
        let (dir, store) = temp_store("resume");
        let spec = CampaignSpec::from_json(SPEC).unwrap();
        let options = ExperimentOptions::paper_tables_1_2();
        let budget = RunBudget::unlimited();
        let first = run_campaign(&spec, &options, &budget, &store, false, &NullSink).unwrap();
        assert!(first.is_complete());
        assert_eq!(first.count(&UnitStatus::Complete), 3);

        // Second invocation: everything journaled, nothing re-run.
        let mut invocations = 0usize;
        let second = run_campaign_with(&spec, &options, &store, false, &NullSink, |_, _, _| {
            invocations += 1;
            panic!("no unit may re-run");
        })
        .unwrap();
        assert_eq!(invocations, 0);
        assert!(second.is_complete());
        assert_eq!(second.count(&UnitStatus::Skipped), 3);
        // Skipped rows carry the journaled numbers.
        for (a, b) in first.units.iter().zip(&second.units) {
            assert_eq!(a.t_mono, b.t_mono, "{}", a.unit);
            assert_eq!(a.tdv_modular, b.tdv_modular);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_campaign_resumes_from_the_journal() {
        let (dir, store) = temp_store("killed");
        let spec = CampaignSpec::from_json(SPEC).unwrap();
        let options = ExperimentOptions::paper_tables_1_2();
        let budget = RunBudget::unlimited();

        // First invocation dies on the second unit (simulated kill).
        let aborted = run_campaign_with(
            &spec,
            &options,
            &store,
            false,
            &NullSink,
            |i, netlist, unit_options| {
                if i == 1 {
                    panic!("injected mid-campaign kill");
                }
                run_soc_experiment_guarded(netlist, unit_options, &budget)
            },
        );
        assert!(aborted.is_err());

        // Resume: unit 0 skipped, units 1 and 2 run, campaign completes.
        let mut ran = Vec::new();
        let resumed = run_campaign_with(
            &spec,
            &options,
            &store,
            false,
            &NullSink,
            |i, netlist, unit_options| {
                ran.push(i);
                run_soc_experiment_guarded(netlist, unit_options, &budget)
            },
        )
        .unwrap();
        assert_eq!(ran, vec![1, 2], "unit 0 must come from the journal");
        assert!(resumed.is_complete());
        assert_eq!(resumed.units[0].status, UnitStatus::Skipped);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_going_reports_failure_and_continues() {
        let (dir, store) = temp_store("keepgoing");
        let spec = CampaignSpec::from_json(SPEC).unwrap();
        let options = ExperimentOptions::paper_tables_1_2();
        let budget = RunBudget::unlimited();
        let report = run_campaign_with(
            &spec,
            &options,
            &store,
            true,
            &NullSink,
            |i, netlist, unit_options| {
                if i == 0 {
                    panic!("injected unit failure");
                }
                run_soc_experiment_guarded(netlist, unit_options, &budget)
            },
        )
        .unwrap();
        assert!(!report.is_complete());
        assert_eq!(report.units[0].status, UnitStatus::Failed);
        assert!(report.units[0].note.contains("injected unit failure"));
        assert_eq!(report.count(&UnitStatus::Complete), 2);

        // The failed unit is NOT journaled: a plain resume re-runs it.
        let resumed = run_campaign(&spec, &options, &budget, &store, false, &NullSink).unwrap();
        assert_eq!(resumed.units[0].status, UnitStatus::Complete);
        assert_eq!(resumed.count(&UnitStatus::Skipped), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_trip_is_partial_and_not_journaled() {
        let (dir, store) = temp_store("budget");
        let spec = CampaignSpec::from_json(SPEC).unwrap();
        let options = ExperimentOptions::paper_tables_1_2();
        // A budget that trips immediately: every unit goes partial.
        let budget = RunBudget::unlimited().with_max_patterns(0);
        let report = run_campaign(&spec, &options, &budget, &store, false, &NullSink).unwrap();
        assert!(!report.is_complete());
        assert_eq!(report.count(&UnitStatus::Partial), 3);
        // Nothing journaled; a healthy resume runs all three.
        let healthy = RunBudget::unlimited();
        let resumed = run_campaign(&spec, &options, &healthy, &store, false, &NullSink).unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.count(&UnitStatus::Complete), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_composes_with_the_result_store_cache() {
        let (dir, store) = temp_store("cache");
        let store = Arc::new(store);
        let spec = CampaignSpec::from_json(
            r#"{"schema":1,"name":"c","units":[{"name":"m","soc":"mini","seed":7}]}"#,
        )
        .unwrap();
        let options = ExperimentOptions::paper_tables_1_2().with_store(Arc::clone(&store));
        let budget = RunBudget::unlimited();
        run_campaign(&spec, &options, &budget, &store, false, &NullSink).unwrap();
        assert_eq!(store.hits(), 0);
        let writes = store.writes();
        assert!(writes >= 3, "2 cores + monolithic cached");

        // Wipe the journal but keep the objects: the unit re-runs, but
        // every engine result comes from the cache.
        std::fs::remove_dir_all(dir.join("journals")).unwrap();
        std::fs::create_dir_all(dir.join("journals")).unwrap();
        let report = run_campaign(&spec, &options, &budget, &store, false, &NullSink).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.units[0].status, UnitStatus::Complete);
        assert_eq!(store.hits(), 3, "all engine runs served from cache");
        assert_eq!(store.writes(), writes, "nothing recomputed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
